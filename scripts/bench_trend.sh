#!/usr/bin/env bash
# Prints how every benchmark metric moved across the BENCH_pr*.json
# snapshots, in PR order. Each snapshot is the flat `"metric": value`
# JSON that `whisper_rand::bench` merges into WHISPER_BENCH_JSON.
#
# For every metric that appears in at least two snapshots the script
# prints the first and last recorded values, the overall delta, and the
# file-by-file trail. Pass a substring to filter metrics:
#
#   scripts/bench_trend.sh                 # every metric
#   scripts/bench_trend.sh nodes_per_sec   # just the throughput rows
#
# No jq in the container; the files are machine-written one-pair-per-line
# JSON, so awk is sufficient and keeps the script hermetic.
set -euo pipefail
cd "$(dirname "$0")/.."

filter="${1:-}"

files=$(ls BENCH_pr*.json 2>/dev/null | sort -t r -k 2 -n)
if [ -z "$files" ]; then
  echo "bench_trend: no BENCH_pr*.json snapshots found" >&2
  exit 1
fi

# shellcheck disable=SC2086  # word-splitting of $files is intentional
awk -v filter="$filter" '
  FNR == 1 { nfiles++; fname[nfiles] = FILENAME }
  # Lines look like:   "scaling/pss_n100000_s1_nodes_per_sec": 380427.8,
  /^[[:space:]]*"[^"]+":[[:space:]]*-?[0-9]/ {
    line = $0
    sub(/^[[:space:]]*"/, "", line)
    key = line
    sub(/".*/, "", key)
    if (filter != "" && index(key, filter) == 0) next
    val = line
    sub(/^[^:]*":[[:space:]]*/, "", val)
    sub(/,[[:space:]]*$/, "", val)
    if (!(key in first)) { order[++nkeys] = key; first[key] = nfiles }
    seen[key, nfiles] = val
    last[key] = nfiles
  }
  END {
    if (nkeys == 0) { print "bench_trend: no metrics matched"; exit 0 }
    for (i = 1; i <= nkeys; i++) {
      key = order[i]
      if (first[key] == last[key]) continue  # single snapshot: no trend
      a = seen[key, first[key]]; b = seen[key, last[key]]
      pct = (a + 0 != 0) ? sprintf("%+.1f%%", 100 * (b - a) / a) : "n/a"
      printf "%-55s %14s -> %14s  (%s)\n", key, a, b, pct
      trail = ""
      for (f = 1; f <= nfiles; f++)
        if ((key, f) in seen)
          trail = trail sprintf("  %s=%s", substr(fname[f], 7, length(fname[f]) - 11), seen[key, f])
      printf "    %s\n", trail
    }
  }
' $files
