#!/usr/bin/env bash
# Tier-1 verification for the WHISPER reproduction.
#
# Hermetic by construction: every step runs with `--offline`, so it works
# from a clean checkout with an empty cargo registry and no network. The
# workspace has zero external dependencies (see crates/whisper-rand for
# the in-tree randomness/test/bench substrate that makes this possible).
#
# Each step is wall-clock timed so regressions in verify latency are
# visible in the step-by-step log (`[t+...s]` prefixes).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

VERIFY_T0=$SECONDS
STEP_T0=$SECONDS
step() {
  local now=$SECONDS
  if [ "$now" -ne "$VERIFY_T0" ]; then
    echo "    [step took $((now - STEP_T0))s, t+$((now - VERIFY_T0))s total]"
  fi
  STEP_T0=$now
  echo "==> $1"
}

step "offline release build (lib, bins, tests, benches, examples)"
cargo build --release --offline --workspace --all-targets

step "offline test suite (whole workspace)"
cargo test -q --offline --workspace

step "clippy clean (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "rustdoc builds clean (no warnings; whisper-net denies missing docs)"
# whisper-net carries #![deny(missing_docs)], so an undocumented public
# item fails the build steps above; -D warnings catches the remaining
# rustdoc lint classes (broken intra-doc links etc.) workspace-wide.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

step "scheduler/shard-matrix determinism (release: byte-identical traces, heap vs wheel x 1/2/4 shards, pool on+off, profiler on)"
cargo test -q --release --offline -p whisper-net --test determinism

step "chaos acceptance suite (384 + 1k-node/4-shard, release, fixed seed matrix)"
for s in 7 11 13; do
  echo "    seed $s"
  WHISPER_CHAOS_SEED=$s cargo test -q --release --offline --test chaos -- --ignored
done

step "group-lifecycle bench (1k nodes / 4 shards; propagation + recovery metrics -> BENCH_pr9.json)"
WHISPER_BENCH_JSON=BENCH_pr9.json cargo run -q --release --offline -p whisper-bench --bin group_lifecycle

step "engine scale-out smoke (nodes-per-second, quick sweep)"
cargo run -q --release --offline -p whisper-bench --bin fig5_biased_pss -- --scale --quick | grep '^scaling:'

step "allocation-regression gate (10k-node pooled cell must stay <= 0.2 allocs/send)"
# Steady-state allocs/send with the payload pool is ~0.1 (DESIGN.md §13/§16);
# the 0.2 gate catches any change that silently re-introduces per-send heap
# allocation on the hot path without flaking on startup-phase noise.
cargo run -q --release --offline -p whisper-bench --bin fig5_biased_pss -- --scale --quick --nodes 10000 --shards 1 --max-allocs-per-send 0.2 | grep '^scaling:'

step "100k-node smoke (release, single cell, pooled hot path)"
cargo run -q --release --offline -p whisper-bench --bin fig5_biased_pss -- --scale --quick --nodes 100000 --shards 4 | grep '^scaling:'

step "1M-node smoke (release, single cell, calendar-wheel scheduler, short window)"
cargo run -q --release --offline -p whisper-bench --bin fig5_biased_pss -- --scale --nodes 1000000 --shards 4 --sched wheel | grep '^scaling:'

step "done"
echo "verify: OK (total $((SECONDS - VERIFY_T0))s)"
