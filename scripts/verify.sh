#!/usr/bin/env bash
# Tier-1 verification for the WHISPER reproduction.
#
# Hermetic by construction: every step runs with `--offline`, so it works
# from a clean checkout with an empty cargo registry and no network. The
# workspace has zero external dependencies (see crates/whisper-rand for
# the in-tree randomness/test/bench substrate that makes this possible).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> offline release build (lib, bins, tests, benches, examples)"
cargo build --release --offline --workspace --all-targets

echo "==> offline test suite (whole workspace)"
cargo test -q --offline --workspace

echo "==> clippy clean (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> rustdoc builds clean (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

echo "==> chaos acceptance suite (384 nodes, release, fixed seed matrix)"
for s in 7 11 13; do
  echo "    seed $s"
  WHISPER_CHAOS_SEED=$s cargo test -q --release --offline --test chaos -- --ignored
done

echo "verify: OK"
