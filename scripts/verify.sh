#!/usr/bin/env bash
# Tier-1 verification for the WHISPER reproduction.
#
# Hermetic by construction: every step runs with `--offline`, so it works
# from a clean checkout with an empty cargo registry and no network. The
# workspace has zero external dependencies (see crates/whisper-rand for
# the in-tree randomness/test/bench substrate that makes this possible).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> offline release build (lib, bins, tests, benches, examples)"
cargo build --release --offline --workspace --all-targets

echo "==> offline test suite (whole workspace)"
cargo test -q --offline --workspace

echo "==> clippy clean (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> rustdoc builds clean (no warnings; whisper-net denies missing docs)"
# whisper-net carries #![deny(missing_docs)], so an undocumented public
# item fails the build steps above; -D warnings catches the remaining
# rustdoc lint classes (broken intra-doc links etc.) workspace-wide.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

echo "==> shard-matrix determinism (release: byte-identical traces at 1/2/4 shards)"
cargo test -q --release --offline -p whisper-net --test determinism

echo "==> chaos acceptance suite (384 + 1k-node/4-shard, release, fixed seed matrix)"
for s in 7 11 13; do
  echo "    seed $s"
  WHISPER_CHAOS_SEED=$s cargo test -q --release --offline --test chaos -- --ignored
done

echo "==> engine scale-out smoke (nodes-per-second, quick sweep)"
cargo run -q --release --offline -p whisper-bench --bin fig5_biased_pss -- --scale --quick | grep '^scaling:'

echo "verify: OK"
