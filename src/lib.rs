#![warn(missing_docs)]
//! # WHISPER — confidential group communication middleware
//!
//! A from-scratch Rust reproduction of *"WHISPER: Middleware for
//! Confidential Communication in Large-Scale Networks"* (Schiavoni,
//! Rivière, Felber — ICDCS 2011).
//!
//! This umbrella crate re-exports the whole stack:
//!
//! * [`crypto`] — bignum/RSA/AES/SHA-256 primitives and the onion
//!   construction (crate `whisper-crypto`),
//! * [`net`] — the deterministic discrete-event network simulator with NAT
//!   emulation, latency profiles and churn scripting (crate `whisper-net`),
//! * [`pss`] — the Nylon NAT-resilient peer sampling service, its
//!   P-node-biased variant and the public key sampling service (crate
//!   `whisper-pss`),
//! * [`core`] — the WHISPER communication layer (WCL) and the private
//!   peer sampling service (PPSS) — the paper's contribution (crate
//!   `whisper-core`),
//! * [`apps`] — gossip aggregation, T-Man, Chord and T-Chord, used both as
//!   building blocks (leader election) and as the paper's demo application
//!   (crate `whisper-apps`),
//! * [`rand`] — the in-tree deterministic randomness substrate: the
//!   xoshiro256++ [`rand::StdRng`], per-node stream splitting, the
//!   property-test helper and the bench harness (crate `whisper-rand`).
//!   The workspace has **zero external dependencies** and never reads OS
//!   entropy — every random draw is rooted in an explicit seed.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured comparison.

pub use whisper_apps as apps;
pub use whisper_core as core;
pub use whisper_crypto as crypto;
pub use whisper_net as net;
pub use whisper_pss as pss;
pub use whisper_rand as rand;
