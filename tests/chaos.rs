//! End-to-end chaos suite: every scripted fault scenario must keep the
//! stack's recovery invariants (ISSUE: fault model, DESIGN.md §11):
//!
//! * **Attribution** — every sim-level send is delivered, counted under a
//!   named drop counter, or still in flight: `unattributed == 0`.
//! * **Delivery** — tracked request/response traffic reaches ≥ 90% (full
//!   runs) once the heal window has passed.
//! * **Convergence** — no live node ends with an empty Nylon view.
//!
//! The quick `smoke_*` tests run in debug CI. The `full_*` tests are the
//! acceptance runs (384 nodes) and are `#[ignore]`d here; `scripts/
//! verify.sh` runs them in release mode across a fixed seed matrix, with
//! the seed supplied through `WHISPER_CHAOS_SEED`.

use whisper_bench::chaos::{run_scenario, ChaosOutcome, ChaosParams, Scenario};

/// Seed for the full acceptance runs (verify.sh sets the env var).
fn acceptance_seed() -> u64 {
    std::env::var("WHISPER_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn assert_invariants(scenario: Scenario, out: &ChaosOutcome, min_delivery: f64) {
    assert_eq!(
        out.unattributed, 0,
        "{}: {} message(s) vanished without a named drop counter\ncounters: {:?}",
        scenario.name(),
        out.unattributed,
        out.counters
    );
    assert!(
        out.sent > 0,
        "{}: workload issued no tracked requests",
        scenario.name()
    );
    assert!(
        out.delivery_ratio() >= min_delivery,
        "{}: delivery {:.1}% < {:.0}% ({} acked / {} sent, {} skipped)\ncounters: {:?}",
        scenario.name(),
        out.delivery_ratio() * 100.0,
        min_delivery * 100.0,
        out.acked,
        out.sent,
        out.skipped,
        out.counters
    );
    assert_eq!(
        out.empty_views, 0,
        "{}: {}/{} live node(s) ended with an empty view",
        scenario.name(),
        out.empty_views,
        out.live_nodes
    );
}

// ---------------------------------------------------------------- smoke

fn smoke(scenario: Scenario, min_delivery: f64) {
    let out = run_scenario(scenario, &ChaosParams::smoke(7));
    assert_invariants(scenario, &out, min_delivery);
}

#[test]
fn smoke_partition_heals() {
    smoke(Scenario::Partition, 0.85);
}

#[test]
fn smoke_burst_loss_recovers() {
    smoke(Scenario::BurstLoss, 0.85);
}

#[test]
fn smoke_latency_spike_rides_out() {
    smoke(Scenario::LatencySpike, 0.85);
}

#[test]
fn smoke_crash_restart_rejoins() {
    let scenario = Scenario::CrashRestart;
    let out = run_scenario(scenario, &ChaosParams::smoke(7));
    assert_invariants(scenario, &out, 0.85);
    // Crashes really happened and state-loss recovery really ran.
    let counter = |name: &str| {
        out.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("net.fault_crash") > 0, "no crash was injected");
    assert_eq!(
        counter("net.fault_crash"),
        counter("net.fault_restart"),
        "every crashed node must restart"
    );
}

#[test]
fn smoke_nat_rebind_recovers() {
    smoke(Scenario::NatRebind, 0.85);
}

// ----------------------------------------------------- acceptance (384)

fn full(scenario: Scenario) {
    let out = run_scenario(scenario, &ChaosParams::full(acceptance_seed()));
    assert_invariants(scenario, &out, 0.90);
}

#[test]
#[ignore = "384-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_partition_heals() {
    full(Scenario::Partition);
}

#[test]
#[ignore = "384-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_burst_loss_recovers() {
    full(Scenario::BurstLoss);
}

#[test]
#[ignore = "384-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_latency_spike_rides_out() {
    full(Scenario::LatencySpike);
}

#[test]
#[ignore = "384-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_crash_restart_rejoins() {
    full(Scenario::CrashRestart);
}

#[test]
#[ignore = "384-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_nat_rebind_recovers() {
    full(Scenario::NatRebind);
}

// ------------------------------------------------- scale-out (1k nodes)

/// 1000-node crash/restart chaos on the 4-shard engine: the sharded
/// event loop, shard-local fault application and the tagged metrics
/// merge all hold the same recovery invariants at ~3× the acceptance
/// population (DESIGN.md §12).
#[test]
#[ignore = "1k-node scale-out run; executed in release mode by scripts/verify.sh"]
fn full_crash_restart_1k_nodes_on_4_shards() {
    let scenario = Scenario::CrashRestart;
    let params = ChaosParams {
        nodes: 1000,
        groups: 10,
        shards: 4,
        // A 1k population needs the paper-scale convergence times
        // (Table I uses 250 s of PSS warm-up at 1,000 nodes); the
        // 384-node acceptance timings leave the overlay too thin and
        // delivery lands just under the floor on some seeds.
        warmup: 250,
        settle: 90,
        ..ChaosParams::full(acceptance_seed())
    };
    let out = run_scenario(scenario, &params);
    assert_invariants(scenario, &out, 0.90);
}

// ------------------------------------------- group lifecycle (tentpole)

use whisper_bench::chaos::{run_group_lifecycle, LifecycleOutcome};

fn assert_lifecycle_invariants(out: &LifecycleOutcome, min_delivery: f64, max_prop_p95_s: f64) {
    assert_eq!(
        out.echo.unattributed, 0,
        "lifecycle: message(s) vanished without a named drop counter\ncounters: {:?}",
        out.echo.counters
    );
    assert_eq!(
        out.resurrections, 0,
        "lifecycle: {} node(s) still hold a deleted group",
        out.resurrections
    );
    assert!(!out.deleted.is_empty(), "lifecycle: no group was deleted");
    assert!(
        out.echo.delivery_ratio() >= min_delivery,
        "lifecycle: delivery {:.1}% < {:.0}% ({} acked / {} sent, {} skipped)",
        out.echo.delivery_ratio() * 100.0,
        min_delivery * 100.0,
        out.echo.acked,
        out.echo.sent,
        out.echo.skipped,
    );
    assert!(
        out.desc_prop_samples > 0,
        "lifecycle: no descriptor propagation latency was sampled"
    );
    assert!(
        out.desc_prop_p95_s <= max_prop_p95_s,
        "lifecycle: descriptor propagation p95 {:.1}s exceeds {:.0}s",
        out.desc_prop_p95_s,
        max_prop_p95_s
    );
    assert!(
        out.late_members >= 3,
        "lifecycle: late group only reached {} members",
        out.late_members
    );
    assert!(out.migrated_ok, "lifecycle: migrated member lost its new group");
    assert!(
        out.journal_replays > 0 && out.journal_restored > 0,
        "lifecycle: no crash-restart replayed the journal (replays={}, restored={})",
        out.journal_replays,
        out.journal_restored
    );
}

#[test]
fn smoke_group_lifecycle() {
    let out = run_group_lifecycle(&ChaosParams::smoke(7));
    eprintln!(
        "lifecycle smoke: delivery={:.3} sent={} prop_samples={} prop_p95={:.1}s late={} replays={} restored={} deleted={}",
        out.echo.delivery_ratio(),
        out.echo.sent,
        out.desc_prop_samples,
        out.desc_prop_p95_s,
        out.late_members,
        out.journal_replays,
        out.journal_restored,
        out.deleted.len(),
    );
    assert_lifecycle_invariants(&out, 0.85, 150.0);
}

/// The tentpole determinism clause: the lifecycle scenario — group
/// creation, joins, migration, deletion tombstones, journal replays,
/// descriptor gossip — produces byte-identical observable traces
/// whether the engine runs 1, 2 or 4 shards.
#[test]
fn group_lifecycle_is_shard_invariant() {
    let base = run_group_lifecycle(&ChaosParams::smoke(7));
    for shards in [2usize, 4] {
        let out = run_group_lifecycle(&ChaosParams { shards, ..ChaosParams::smoke(7) });
        assert!(
            base.trace == out.trace,
            "{shards}-shard lifecycle trace diverged from 1-shard"
        );
    }
}

/// 1000-node group-lifecycle acceptance on the 4-shard engine: groups
/// created, joined, migrated and deleted while a partition and a wave of
/// crash/restarts play out. Run by scripts/verify.sh in release mode
/// across the fixed seed matrix (7, 11, 13).
#[test]
#[ignore = "1k-node acceptance run; executed in release mode by scripts/verify.sh"]
fn full_group_lifecycle_1k_nodes_on_4_shards() {
    let params = ChaosParams {
        nodes: 1000,
        groups: 10,
        shards: 4,
        warmup: 250,
        settle: 90,
        ..ChaosParams::full(acceptance_seed())
    };
    let out = run_group_lifecycle(&params);
    assert_lifecycle_invariants(&out, 0.90, 150.0);
    // Scale-out extras: several groups deleted, several crash-restarts
    // replayed their journals.
    assert!(out.deleted.len() >= 2, "only {} group(s) deleted", out.deleted.len());
    assert!(
        out.journal_restored >= 10,
        "only {} group states restored from journals",
        out.journal_restored
    );
}
