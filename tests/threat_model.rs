//! Threat-model tests (paper §II-A): the guarantees WHISPER makes against
//! honest-but-curious observers, checked end-to-end over the full stack.
//!
//! * **Content privacy** — no relay or link observer sees plaintext.
//! * **Membership privacy** — no third party can tell that two nodes
//!   belong to the same group, and non-members cannot elicit any reaction
//!   that would reveal membership.
//! * **Relationship anonymity** — a mix knows its predecessor and
//!   successor but never source and destination together.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::onion::{build_onion, peel, PeelResult};
use whisper::crypto::rsa::{KeyPair, RsaKeySize};
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::NodeId;

fn build_net(n: usize, seed: u64) -> (Sim, Vec<NodeId>) {
    let cfg = WhisperConfig::default();
    let mut key_rng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(SimConfig::cluster(seed));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..n as u64 {
        let mut node =
            WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, &mut key_rng));
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|x| x.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.run_for_secs(250);
    (sim, ids)
}

fn form_group(sim: &mut Sim, leader: NodeId, members: &[NodeId], name: &str) -> GroupId {
    let mut group = GroupId::from_name(name);
    sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        group = node.create_group(ctx, name);
    });
    for &m in members {
        let inv = sim
            .node::<WhisperNode>(leader)
            .unwrap()
            .invite(group, m)
            .unwrap();
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| node.join_group(ctx, inv));
    }
    group
}

/// Content privacy at the cryptographic layer: a secret payload sent over
/// a WCL-style onion never appears in any byte a relay or observer sees.
#[test]
fn content_never_visible_to_relays_or_links() {
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<KeyPair> =
        (0..3).map(|_| KeyPair::generate(RsaKeySize::Sim384, &mut rng)).collect();
    let secret = b"WHISPER-SECRET: coordinates 47.0N 6.9E, meet at dawn";
    let path: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.public().clone(), vec![i as u8; 9]))
        .collect();
    let packet = build_onion(&path, secret, &mut rng).unwrap();

    // Observer of the S→A link sees header+body: no plaintext window.
    let leaks = |bytes: &[u8]| {
        bytes
            .windows(12)
            .any(|w| secret.windows(12).any(|s| s == w))
    };
    assert!(!leaks(&packet.header) && !leaks(&packet.body), "link S→A leaks");

    // Mix A peels one layer: what it forwards still reveals nothing.
    let PeelResult::Relay { header, .. } = peel(&keys[0], &packet.header).unwrap() else {
        panic!("A relays");
    };
    assert!(!leaks(&header) && !leaks(&packet.body), "link A→B leaks");

    // Mix B likewise.
    let PeelResult::Relay { header, .. } = peel(&keys[1], &header).unwrap() else {
        panic!("B relays");
    };
    assert!(!leaks(&header) && !leaks(&packet.body), "link B→D leaks");
}

/// Relationship anonymity: a mix learns only its successor; the bytes it
/// forwards differ from the bytes it received, so even an observer of
/// both its links cannot match them by content.
#[test]
fn mix_cannot_link_source_and_destination() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
    let b = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
    let d = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
    let path = vec![
        (a.public().clone(), b"AAAAAAAA\0".to_vec()),
        (b.public().clone(), b"BBBBBBBB\0".to_vec()),
        (d.public().clone(), b"DDDDDDDD\0".to_vec()),
    ];
    let packet = build_onion(&path, b"payload", &mut rng).unwrap();

    // A sees the next hop (B) but cannot peel further to find D.
    let PeelResult::Relay { next_hop, header, .. } = peel(&a, &packet.header).unwrap() else {
        panic!()
    };
    assert_eq!(next_hop, b"BBBBBBBB\0");
    assert!(
        peel(&a, &header).is_err(),
        "A must not be able to open B's layer and discover D"
    );
    // What A received and what A forwards share no ciphertext bytes at
    // any 16-byte window (headers are re-encrypted per hop).
    assert!(!header
        .windows(16)
        .any(|w| packet.header.windows(16).any(|o| o == w)));
}

/// Relationship anonymity on the *steady-state* circuit path: once a
/// circuit is cached, packets carry only `(cid, nonce, body)`. Every one
/// of those three fields changes across each hop — circuit ids are
/// per-hop local, the nonce advances through a hash chain, and the body
/// loses one CTR layer — so an observer of two links (or a compromised
/// mix watching both its sides) cannot match an incoming circuit packet
/// to an outgoing one by content, same as for the RSA onion it replaces.
#[test]
fn circuit_packets_unlinkable_across_hops() {
    use whisper::crypto::aes::CtrNonce;
    use whisper::crypto::circuit::{self, HopSetup};

    let mut rng = StdRng::seed_from_u64(6);
    let (source, setups) = circuit::establish(3, &mut rng);
    let payload = vec![0u8; 512]; // worst case: all-zero plaintext
    let nonce0 = CtrNonce::random(&mut rng);
    let sealed = circuit::seal_layers(&source.keys, &nonce0, &payload);

    // Reconstruct what each link carries: (cid, nonce, body) per hop.
    let mut links = Vec::new();
    let mut nonce = nonce0;
    let mut body = sealed;
    for setup in &setups {
        links.push((setup.cid_in, nonce, body.clone()));
        body = circuit::peel_layer(&setup.key, &nonce, &body);
        nonce = circuit::next_nonce(&nonce);
    }
    assert_eq!(body, payload, "destination recovers the plaintext");

    for pair in links.windows(2) {
        let ((cid_a, nonce_a, body_a), (cid_b, nonce_b, body_b)) = (&pair[0], &pair[1]);
        // All three visible fields change between adjacent links.
        assert_ne!(cid_a, cid_b, "circuit ids are per-hop local");
        assert_ne!(nonce_a.0, nonce_b.0, "the nonce chain advances");
        assert!(
            !body_a
                .windows(16)
                .any(|w| body_b.windows(16).any(|o| o == w)),
            "bodies share ciphertext across a hop"
        );
        // And the whole packets share no window either (cid ‖ nonce ‖ body
        // as it would sit in a datagram).
        let flat = |cid: &circuit::CircuitId, n: &CtrNonce, b: &[u8]| {
            let mut v = cid.0.to_vec();
            v.extend_from_slice(&n.0);
            v.extend_from_slice(b);
            v
        };
        let wire_a = flat(cid_a, nonce_a, body_a);
        let wire_b = flat(cid_b, nonce_b, body_b);
        assert!(
            !wire_a
                .windows(8)
                .any(|w| wire_b.windows(8).any(|o| o == w)),
            "adjacent links share an 8-byte window"
        );
    }

    // A mix also learns nothing about the far end from its setup record:
    // the relay encoding carries only local ids and its own link key.
    for setup in &setups[..2] {
        let enc = setup.encode();
        assert_eq!(enc.len(), circuit::RELAY_SETUP_LEN);
        assert_eq!(HopSetup::decode(&enc).unwrap().cid_in, setup.cid_in);
    }
}

/// Membership privacy, active probe: a non-member replays bytes it could
/// plausibly forge; members never react, so the prober cannot distinguish
/// a member from a non-member.
#[test]
fn membership_invisible_to_active_prober() {
    let (mut sim, ids) = build_net(30, 3);
    let leader = ids[4];
    let members: Vec<NodeId> = ids[5..11].to_vec();
    let group = form_group(&mut sim, leader, &members, "invisible");
    sim.run_for_secs(300);

    let prober = ids[20];
    let member_target = members[0];
    let nonmember_target = ids[21];

    // The prober fabricates a group id guess and a bogus passport and
    // probes both a member and a non-member through ordinary payloads.
    use whisper::core::ppss::messages::PpssMsg;
    use whisper::core::Passport;
    use whisper::net::wire::WireEncode;
    let forged = PpssMsg::AppData {
        group,
        passport: Passport { node: prober, signature: vec![0u8; 48] },
        data: b"are you in the group?".to_vec(),
        reply_entry: None,
    }
    .to_wire();

    let up_before: Vec<u64> = [member_target, nonmember_target]
        .iter()
        .map(|t| sim.metrics().traffic(*t).up_msgs)
        .collect();
    // Deliver the forged payload as a plain Nylon app message to each
    // target (the prober can do this: both are reachable peers).
    for target in [member_target, nonmember_target] {
        sim.with_node_ctx::<WhisperNode>(prober, |node, ctx| {
            node.with_api(|api, _| {
                let hint: Vec<NodeId> = vec![];
                api.nylon.send_app(ctx, target, true, &hint, forged.clone());
            });
        });
    }
    // Quiesce background gossip comparison: measure over a tiny window.
    sim.run_for_secs(2);
    let up_after: Vec<u64> = [member_target, nonmember_target]
        .iter()
        .map(|t| sim.metrics().traffic(*t).up_msgs)
        .collect();
    // Neither target reacted to the probe itself (any messages they sent
    // in the window are their own gossip; the member sent no *more* than
    // the non-member as a consequence of the probe).
    let member_delta = up_after[0] - up_before[0];
    let nonmember_delta = up_after[1] - up_before[1];
    assert!(
        member_delta <= nonmember_delta + 2,
        "member visibly reacted to probe: {member_delta} vs {nonmember_delta}"
    );
    // And the prober of course gained no group state.
    assert!(sim
        .node::<WhisperNode>(prober)
        .unwrap()
        .ppss()
        .group(group)
        .is_none());
}

/// A passive observer classifying nodes by traffic volume cannot separate
/// group members from non-members among NATted nodes (membership privacy
/// against traffic counting, within a small factor: members do strictly
/// more work, but relays/mixes smear the signal across non-members too).
#[test]
fn members_not_trivially_identifiable_by_message_counts() {
    let (mut sim, ids) = build_net(40, 4);
    let leader = ids[4];
    let members: Vec<NodeId> = ids[5..17].to_vec();
    let _group = form_group(&mut sim, leader, &members, "quiet");
    sim.run_for_secs(600);

    let in_group: Vec<NodeId> = std::iter::once(leader).chain(members.iter().copied()).collect();
    let outside: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|id| !in_group.contains(id) && id.0 >= 2)
        .collect();
    let avg = |set: &[NodeId]| -> f64 {
        set.iter()
            .map(|id| sim.metrics().traffic(*id).up_msgs as f64)
            .sum::<f64>()
            / set.len() as f64
    };
    let members_avg = avg(&in_group);
    let outside_avg = avg(&outside);
    // Outsiders carry relay/mix/gateway traffic for the group, so the
    // volume gap stays small — no clean separation by counting messages.
    assert!(
        members_avg / outside_avg < 3.0,
        "members stand out by traffic volume: {members_avg:.0} vs {outside_avg:.0}"
    );
    // Sanity: the group did communicate.
    assert!(sim.metrics().counter("wcl.delivered") > 50);
}

/// End-to-end content privacy over the live stack: a secret string sent
/// between group members never crosses any *other* node in plaintext —
/// checked by inspecting every byte every third node ever received.
#[test]
fn live_stack_payloads_opaque_to_third_parties() {
    // This uses a tapped protocol wrapper to capture every delivered
    // datagram at every node.
    use std::sync::{Arc, Mutex};
    use whisper::net::sim::{Ctx, Protocol};
    use whisper::net::Endpoint;

    // Arc<Mutex<…>> rather than Rc<RefCell<…>>: `Protocol` requires
    // `Send` since the engine grew sharded (threaded) execution.
    type WireLog = Arc<Mutex<Vec<(NodeId, Vec<u8>)>>>;

    struct Tap {
        inner: WhisperNode,
        log: WireLog,
    }
    impl Protocol for Tap {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.inner.on_start(ctx);
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_>,
            from: NodeId,
            ep: Endpoint,
            data: &whisper::net::Payload,
        ) {
            self.log.lock().unwrap().push((ctx.id(), data.to_vec()));
            self.inner.on_message(ctx, from, ep, data);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.inner.on_timer(ctx, token);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let cfg = WhisperConfig::default();
    let log: WireLog = Arc::new(Mutex::new(Vec::new()));
    let mut key_rng = StdRng::seed_from_u64(5);
    let mut sim = Sim::new(SimConfig::cluster(5));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..25u64 {
        let mut node =
            WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, &mut key_rng));
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|x| x.0 != i).collect());
        ids.push(sim.add_node(Box::new(Tap { inner: node, log: log.clone() }), nat));
    }
    sim.run_for_secs(250);

    let leader = ids[3];
    let mut group = GroupId::from_name("tapped");
    sim.with_node_ctx::<Tap>(leader, |tap, ctx| {
        group = tap.inner.create_group(ctx, "tapped");
    });
    for &m in &ids[4..10] {
        let inv = sim.node::<Tap>(leader).unwrap().inner.invite(group, m).unwrap();
        sim.with_node_ctx::<Tap>(m, |tap, ctx| tap.inner.join_group(ctx, inv));
    }
    sim.run_for_secs(300);

    let secret = b"THE-VERY-SECRET-PAYLOAD-0xTAPPED";
    let mut recipient = None;
    sim.with_node_ctx::<Tap>(leader, |tap, ctx| {
        tap.inner.with_api(|api, _| {
            if let Some(peer) = api.private_view(group).first().map(|e| e.node) {
                api.send_private(ctx, group, peer, secret.to_vec(), false);
                recipient = Some(peer);
            }
        });
    });
    let recipient = recipient.expect("leader has a private view");
    sim.run_for_secs(20);

    // Scan everything every node received: the secret may appear in the
    // clear nowhere. (It reaches the recipient only *after* onion
    // decryption, which the tap — sitting on the wire — never sees.)
    let log = log.lock().unwrap();
    assert!(!log.is_empty());
    for (node, bytes) in log.iter() {
        let leaked = bytes
            .windows(16)
            .any(|w| secret.windows(16).any(|s| s == w));
        assert!(!leaked, "plaintext visible on the wire at {node} (recipient {recipient})");
    }
}
