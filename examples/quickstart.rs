//! Quickstart: bring up a small WHISPER network, create a private group,
//! invite members, and exchange a confidential message.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::rsa::KeyPair;
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::NodeId;

fn main() {
    // 1. A simulated network: 40 nodes, 70% behind NAT devices, cluster
    //    latency profile, fully deterministic under this seed.
    let mut key_rng = StdRng::seed_from_u64(42);
    let mut sim = Sim::new(SimConfig::cluster(42));
    let cfg = WhisperConfig::default();
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..40u64 {
        let mut node =
            WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, &mut key_rng));
        // The first two nodes act as public bootstrap nodes.
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|n| n.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }

    // 2. Let the NAT-resilient peer sampling service converge.
    println!("warming up the Nylon PSS (250 simulated seconds)...");
    sim.run_for_secs(250);
    let punches = sim.metrics().counter("pss.open_punch_ok");
    let relays = sim.metrics().counter("pss.relayed_delivered");
    println!("  gossip through NATs: {punches} hole punches, {relays} relayed deliveries");

    // 3. Node 5 creates a private group and invites nodes 6..=15.
    let alice = ids[5];
    let mut group = GroupId::from_name("reading-club");
    sim.with_node_ctx::<WhisperNode>(alice, |node, ctx| {
        group = node.create_group(ctx, "reading-club");
    });
    println!("node {alice} created private group {group:?}");
    for &member in &ids[6..=15] {
        let invitation = sim
            .node::<WhisperNode>(alice)
            .expect("alice is alive")
            .invite(group, member)
            .expect("alice leads the group");
        sim.with_node_ctx::<WhisperNode>(member, |node, ctx| {
            node.join_group(ctx, invitation);
        });
    }

    // 4. Let join handshakes and a few private gossip cycles run; all of
    //    this traffic travels over onion routes.
    println!("running 6 PPSS cycles (360 simulated seconds)...");
    sim.run_for_secs(360);
    let members: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|id| {
            sim.node::<WhisperNode>(*id)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    println!("group members: {}/{}", members.len(), 11);
    for &m in &members {
        let node: &WhisperNode = sim.node(m).expect("live");
        let view = node.ppss().group(group).expect("member").view();
        println!("  {m} sees {} fellow members", view.len());
    }

    // 5. Alice sends a confidential message to a member of her private
    //    view: the payload is onion-encrypted end to end and no relay
    //    learns that Alice and the recipient are communicating.
    let mut sent_to = None;
    sim.with_node_ctx::<WhisperNode>(alice, |node, ctx| {
        node.with_api(|api, _| {
            if let Some(peer) = api.private_view(group).first().map(|e| e.node) {
                api.send_private(ctx, group, peer, b"chapter 7 tonight?".to_vec(), false);
                sent_to = Some(peer);
            }
        });
    });
    sim.run_for_secs(10);
    match sent_to {
        Some(peer) => println!("alice confidentially messaged {peer}"),
        None => println!("alice's private view was empty"),
    }
    println!(
        "confidential deliveries so far: {}",
        sim.metrics().counter("wcl.delivered")
    );
    println!("done — same seed, same output, every run.");
}
