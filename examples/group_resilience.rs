//! Group resilience: watch a private group survive the death of its
//! leader. Heartbeats stop flowing, members run the gossip-based leader
//! election (max-aggregation over hashed identifiers, paper §IV-A), the
//! winner generates a new group key and announces it signed with its
//! identity, and the group keeps admitting new members afterwards.
//!
//! ```sh
//! cargo run --release --example group_resilience
//! ```

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::rsa::KeyPair;
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::{NodeId, SimDuration};

fn main() {
    let mut cfg = WhisperConfig::default();
    // Faster PPSS cycles so the demo runs in seconds of wall time.
    cfg.ppss.cycle = SimDuration::from_secs(20);
    cfg.ppss.hb_miss_threshold = 3;
    cfg.ppss.election_cycles = 2;

    let mut key_rng = StdRng::seed_from_u64(99);
    let mut sim = Sim::new(SimConfig::cluster(99));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..30u64 {
        let mut node =
            WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, &mut key_rng));
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|n| n.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.run_for_secs(250);

    let leader = ids[3];
    let group = GroupId::from_name("resilient");
    sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        node.create_group(ctx, "resilient");
    });
    for &m in &ids[4..12] {
        let inv = sim.node::<WhisperNode>(leader).unwrap().invite(group, m).unwrap();
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| node.join_group(ctx, inv));
    }
    sim.run_for_secs(200);
    let members: Vec<NodeId> = ids[4..12]
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    println!("group formed: leader {leader} + {} members, epoch 0", members.len());

    println!("\n*** killing the leader ***\n");
    sim.remove_node(leader);
    sim.run_for_secs(800);

    let wins = sim.metrics().counter("ppss.elections_won");
    let adoptions = sim.metrics().counter("ppss.new_key_accepted");
    println!("elections won: {wins}; new-key adoptions gossiped: {adoptions}");
    let mut new_leader = None;
    for &m in &members {
        let Some(node) = sim.node::<WhisperNode>(m) else { continue };
        let state = node.ppss().group(group).unwrap();
        println!(
            "  {m}: epoch {}, {} keys in history, leader={}",
            state.epoch(),
            state.key_history().len(),
            state.is_leader()
        );
        if state.is_leader() {
            new_leader = Some(m);
        }
    }

    // The new leader can admit members using the new group key; old
    // passports stay valid through the key history.
    if let Some(new_leader) = new_leader {
        let newcomer = ids[15];
        let inv = sim
            .node::<WhisperNode>(new_leader)
            .unwrap()
            .invite(group, newcomer)
            .expect("new leader holds the group key");
        sim.with_node_ctx::<WhisperNode>(newcomer, |node, ctx| node.join_group(ctx, inv));
        sim.run_for_secs(120);
        let joined = sim
            .node::<WhisperNode>(newcomer)
            .is_some_and(|n| n.ppss().group(group).is_some());
        println!("\nnew member admitted by elected leader {new_leader}: {joined}");
    } else {
        println!("\n(no single leader visible yet — the announcement is still gossiping)");
    }
}
