//! Private chat room — the application class the paper's introduction
//! opens with. Members of a private group exchange chat lines through
//! gossip broadcast; every line travels over onion routes, and outsiders
//! can neither read a word nor tell who is in the room.
//!
//! ```sh
//! cargo run --release --example private_chat
//! ```

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::apps::broadcast::{BroadcastApp, BroadcastConfig};
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::rsa::KeyPair;
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::NodeId;

fn main() {
    let room = GroupId::from_name("the-back-room");
    let cfg = WhisperConfig::default();
    let mut key_rng = StdRng::seed_from_u64(23);
    let mut sim = Sim::new(SimConfig::cluster(23));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..35u64 {
        let app = Box::new(BroadcastApp::new(room, BroadcastConfig::default()));
        let mut node = WhisperNode::with_app(
            cfg.clone(),
            KeyPair::generate(cfg.nylon.rsa, &mut key_rng),
            app,
        );
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|n| n.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.run_for_secs(250);

    // Ten nodes join the room.
    let host = ids[4];
    sim.with_node_ctx::<WhisperNode>(host, |node, ctx| {
        node.create_group(ctx, "the-back-room");
    });
    let guests: Vec<NodeId> = ids[5..14].to_vec();
    for &g in &guests {
        let inv = sim.node::<WhisperNode>(host).unwrap().invite(room, g).unwrap();
        sim.with_node_ctx::<WhisperNode>(g, |node, ctx| node.join_group(ctx, inv));
    }
    sim.run_for_secs(250);

    // Everyone says something.
    let lines = [
        "did anyone read chapter 4?",
        "yes - the ending is wild",
        "careful, walls have ears",
        "not these walls :)",
        "meeting moved to thursday",
        "who brings the samizdat?",
        "i will",
        "same time?",
        "same time.",
        "ok. vanishing now",
    ];
    let mut speakers: Vec<NodeId> = vec![host];
    speakers.extend(&guests);
    for (i, &speaker) in speakers.iter().enumerate() {
        let line = lines[i % lines.len()].as_bytes().to_vec();
        sim.with_node_ctx::<WhisperNode>(speaker, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut BroadcastApp = app.as_any_mut().downcast_mut().unwrap();
                app.publish(ctx, api, line);
            });
        });
        sim.run_for_secs(5);
    }
    // Let the gossip rounds spread everything.
    sim.run_for_secs(120);

    println!("room transcript as seen by each member:");
    let mut complete = 0;
    for &m in &speakers {
        let node: &WhisperNode = sim.node(m).unwrap();
        let app: &BroadcastApp = node.app().unwrap();
        let n = app.delivered().len();
        println!("  {m}: {n}/{} lines", speakers.len());
        if n == speakers.len() {
            complete += 1;
        }
    }
    println!("members with the complete transcript: {complete}/{}", speakers.len());

    // Show one member's view of the room.
    let app: &BroadcastApp = sim.node::<WhisperNode>(guests[0]).unwrap().app().unwrap();
    println!("\ntranscript at {}:", guests[0]);
    for event in app.delivered() {
        println!("  <{}> {}", event.id.origin, String::from_utf8_lossy(&event.payload));
    }
    println!(
        "\nconfidential deliveries: {}; every line crossed ≥2 mixes encrypted",
        sim.metrics().counter("wcl.delivered")
    );
}
