//! Private index (paper §V-G motivation): a group of nodes operates a
//! Chord DHT *inside* a WHISPER private group — e.g. to share the
//! location of sensitive data — so that outsiders can neither read the
//! index traffic nor learn who participates.
//!
//! ```sh
//! cargo run --release --example private_index
//! ```

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::apps::chord::{ChordKey, IdealRing};
use whisper::apps::tchord::{TChordApp, TChordConfig};
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::rsa::KeyPair;
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::NodeId;

fn main() {
    let group = GroupId::from_name("private-index");
    let cfg = WhisperConfig::default();
    let mut key_rng = StdRng::seed_from_u64(7);
    let mut sim = Sim::new(SimConfig::cluster(7));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..80u64 {
        let app = Box::new(TChordApp::new(group, TChordConfig::default()));
        let mut node = WhisperNode::with_app(
            cfg.clone(),
            KeyPair::generate(cfg.nylon.rsa, &mut key_rng),
            app,
        );
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|n| n.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }
    println!("warming up the system-wide PSS...");
    sim.run_for_secs(250);

    // 20 of the 80 nodes form the private index.
    let leader = ids[4];
    sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        node.create_group(ctx, "private-index");
    });
    let members: Vec<NodeId> = ids[5..24].to_vec();
    for &m in &members {
        let inv = sim
            .node::<WhisperNode>(leader)
            .unwrap()
            .invite(group, m)
            .unwrap();
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| node.join_group(ctx, inv));
    }
    println!("letting T-Chord build the ring over the PPSS (15 simulated minutes)...");
    sim.run_for_secs(900);

    let joined: Vec<NodeId> = std::iter::once(leader)
        .chain(members.iter().copied())
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    let ring = IdealRing::new(&joined);
    let converged = joined
        .iter()
        .filter(|m| {
            let app: &TChordApp = sim.node::<WhisperNode>(**m).unwrap().app().unwrap();
            app.neighbors().successors.first().copied() == ring.successor_of(**m)
        })
        .count();
    println!("ring: {}/{} members know their true successor", converged, joined.len());

    // Store-and-find emulation: every member looks up the owner of a few
    // document keys; replies come back over single WCL paths.
    let documents = ["design.pdf", "ledger.db", "sources.txt", "keys.asc"];
    for (i, &m) in joined.iter().enumerate().take(8) {
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut TChordApp = app.as_any_mut().downcast_mut().unwrap();
                let doc = documents[i % documents.len()];
                let key = ChordKey::of_data(doc.as_bytes());
                app.lookup(ctx, api, key);
            });
        });
    }
    sim.run_for_secs(90);

    let mut completed = 0;
    let mut correct = 0;
    for &m in &joined {
        let app: &TChordApp = sim.node::<WhisperNode>(m).unwrap().app().unwrap();
        for r in app.completed() {
            completed += 1;
            if ring.owner(r.key).1 == r.owner {
                correct += 1;
            }
            println!(
                "  lookup {:?} -> owner {} in {} hops, {:.0} ms",
                r.key,
                r.owner,
                r.hops,
                r.delay.as_secs_f64() * 1000.0
            );
        }
    }
    println!("lookups completed: {completed} (correct owner: {correct})");
    println!(
        "all of it confidential: {} onion deliveries, 0 plaintext bytes on any link",
        sim.metrics().counter("wcl.delivered")
    );
}
