//! Sorted private directory with range queries, built on GosSkip — the
//! skip-list overlay the paper lists among the protocols that run
//! unchanged over the PPSS. Where the private T-Chord index answers
//! "who stores X?", GosSkip answers "who holds anything between A and
//! B?" — e.g. a confidential employee directory sharded by timestamp or
//! name, invisible to outsiders.
//!
//! ```sh
//! cargo run --release --example sorted_directory
//! ```

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper::apps::gosskip::{GosSkipApp, GosSkipConfig};
use whisper::core::{GroupId, WhisperConfig, WhisperNode};
use whisper::crypto::rsa::KeyPair;
use whisper::net::nat::{NatDistribution, NatType};
use whisper::net::sim::{Sim, SimConfig};
use whisper::net::NodeId;

fn main() {
    let group = GroupId::from_name("sorted-directory");
    let cfg = WhisperConfig::default();
    let mut key_rng = StdRng::seed_from_u64(31);
    let mut sim = Sim::new(SimConfig::cluster(31));
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..40u64 {
        // Each member's application key: its "record shard" position.
        let app = Box::new(GosSkipApp::new(group, i * 100, GosSkipConfig::default()));
        let mut node = WhisperNode::with_app(
            cfg.clone(),
            KeyPair::generate(cfg.nylon.rsa, &mut key_rng),
            app,
        );
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        node.nylon_mut()
            .set_bootstrap(vec![NodeId(0), NodeId(1)].into_iter().filter(|n| n.0 != i).collect());
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.run_for_secs(250);

    let host = ids[4];
    sim.with_node_ctx::<WhisperNode>(host, |node, ctx| {
        node.create_group(ctx, "sorted-directory");
    });
    let members: Vec<NodeId> = ids[5..18].to_vec();
    for &m in &members {
        let inv = sim.node::<WhisperNode>(host).unwrap().invite(group, m).unwrap();
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| node.join_group(ctx, inv));
    }
    println!("letting GosSkip sort {} members by shard key...", members.len() + 1);
    sim.run_for_secs(700);

    let joined: Vec<NodeId> = std::iter::once(host)
        .chain(members.iter().copied())
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    let mut keys: Vec<u64> = joined.iter().map(|m| m.0 * 100).collect();
    keys.sort_unstable();
    println!("members sorted by shard: {keys:?}");

    // Point search: who owns shard position 777?
    sim.with_node_ctx::<WhisperNode>(host, |node, ctx| {
        node.with_api(|api, app| {
            let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
            app.search(ctx, api, 777);
        });
    });
    // Range query: every shard in [500, 1200].
    sim.with_node_ctx::<WhisperNode>(host, |node, ctx| {
        node.with_api(|api, app| {
            let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
            app.range(ctx, api, 500, 1200);
        });
    });
    sim.run_for_secs(60);

    let app: &GosSkipApp = sim.node::<WhisperNode>(host).unwrap().app().unwrap();
    for s in app.searches() {
        println!(
            "point search {} -> owner {} (key {}) in {} hops, {:.0} ms",
            s.target,
            s.owner,
            s.owner_key,
            s.hops,
            s.delay.as_secs_f64() * 1000.0
        );
    }
    for r in app.ranges() {
        let mut found = r.keys.clone();
        found.sort_unstable();
        println!(
            "range [500, 1200] -> shards {found:?} in {:.0} ms",
            r.delay.as_secs_f64() * 1000.0
        );
    }
    println!(
        "all confidential: {} onion deliveries",
        sim.metrics().counter("wcl.delivered")
    );
}
