//! Full-stack integration tests: Nylon → WCL → PPSS running over the
//! simulated NATted network. These exercise the paper's core claims:
//! private groups form, private views converge, message content and
//! membership stay hidden from non-members, dead members are pruned, and
//! leadership survives leader failure.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper_core::ppss::messages::PpssMsg;
use whisper_core::{GroupId, WhisperConfig, WhisperNode};
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::{NatDistribution, NatType};
use whisper_net::sim::{Sim, SimConfig};
use whisper_net::wire::WireEncode;
use whisper_net::NodeId;

struct Net {
    sim: Sim,
    ids: Vec<NodeId>,
}

/// Builds `n` WHISPER nodes (first two are public bootstraps) and warms
/// the system-wide PSS up for `warmup` seconds.
fn build(n: usize, cfg: &WhisperConfig, sim_cfg: SimConfig, warmup: u64) -> Net {
    let mut keyrng = StdRng::seed_from_u64(0xD0D0);
    let mut sim = Sim::new(sim_cfg);
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..n {
        let mut node =
            WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, &mut keyrng));
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        if i >= 2 {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        }
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.with_node_ctx::<WhisperNode>(ids[0], |node, _| {
        node.nylon_mut().set_bootstrap(vec![NodeId(1)]);
    });
    sim.with_node_ctx::<WhisperNode>(ids[1], |node, _| {
        node.nylon_mut().set_bootstrap(vec![NodeId(0)]);
    });
    sim.run_for_secs(warmup);
    Net { sim, ids }
}

/// Makes `leader` create a group and invites `members` into it.
fn form_group(net: &mut Net, leader: NodeId, members: &[NodeId], name: &str) -> GroupId {
    let mut group = GroupId::from_name(name);
    net.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        group = node.create_group(ctx, name);
    });
    for &m in members {
        let inv = net
            .sim
            .node::<WhisperNode>(leader)
            .expect("leader alive")
            .invite(group, m)
            .expect("leader can invite");
        net.sim.with_node_ctx::<WhisperNode>(m, |node, ctx| {
            node.join_group(ctx, inv);
        });
    }
    group
}

fn members_of(net: &Net, group: GroupId, ids: &[NodeId]) -> Vec<NodeId> {
    ids.iter()
        .copied()
        .filter(|id| {
            net.sim
                .node::<WhisperNode>(*id)
                .map(|n| n.ppss().group(group).is_some())
                .unwrap_or(false)
        })
        .collect()
}

#[test]
fn group_forms_and_private_views_converge() {
    let cfg = WhisperConfig::default();
    let mut net = build(40, &cfg, SimConfig::cluster(10), 250);
    let leader = net.ids[5];
    let members: Vec<NodeId> = net.ids[6..20].to_vec();
    let group = form_group(&mut net, leader, &members, "private-chat");
    net.sim.run_for_secs(600); // 10 PPSS cycles

    let joined = members_of(&net, group, &net.ids);
    assert!(
        joined.len() >= 13,
        "{} of {} members joined",
        joined.len(),
        members.len() + 1
    );

    // Private views are populated and contain only actual members.
    let mut populated = 0;
    for &m in &joined {
        let node: &WhisperNode = net.sim.node(m).unwrap();
        let state = node.ppss().group(group).unwrap();
        if state.view().len() >= 3 {
            populated += 1;
        }
        for entry in state.view() {
            assert!(
                joined.contains(&entry.node),
                "non-member {:?} in private view of {m:?}",
                entry.node
            );
        }
    }
    assert!(populated >= joined.len() * 3 / 4, "{populated}/{} populated", joined.len());

    // Non-members never acquired group state (checked by construction
    // above) and exchanges really flowed through onion routes.
    assert!(net.sim.metrics().counter("wcl.delivered") > 0);
    assert!(net.sim.metrics().counter("ppss.exchanges_completed") > 0);
}

#[test]
fn forged_passport_is_silently_ignored() {
    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(11), 250);
    let leader = net.ids[4];
    let members: Vec<NodeId> = net.ids[5..12].to_vec();
    let group = form_group(&mut net, leader, &members, "sealed");
    net.sim.run_for_secs(300);

    // A non-member steals a member's contact entry (as a network observer
    // might) and sends a forged exchange with a garbage passport.
    let outsider = net.ids[20];
    let victim_entry = {
        let node: &WhisperNode = net.sim.node(leader).unwrap();
        node.ppss().group(group).unwrap().view().first().cloned()
    };
    let Some(victim_entry) = victim_entry else {
        panic!("leader has an empty private view");
    };
    let forged = PpssMsg::Exchange {
        group,
        passport: whisper_core::Passport { node: outsider, signature: vec![0xAB; 48] },
        from_entry: Box::new(victim_entry.clone()),
        entries: vec![],
        exchange_id: 1,
        is_response: false,
        hb: Default::default(),
        election: None,
        new_key: None,
        member_adds: vec![],
        member_removes: vec![],
    }
    .to_wire();
    let before = net.sim.metrics().counter("ppss.dropped_bad_passport");
    net.sim.with_node_ctx::<WhisperNode>(outsider, |node, ctx| {
        node.with_api(|api, _| {
            let dest = victim_entry.dest_info();
            api.wcl.send_untracked(ctx, api.nylon, &dest, &forged);
        });
    });
    net.sim.run_for_secs(30);
    let after = net.sim.metrics().counter("ppss.dropped_bad_passport");
    assert!(after > before, "forged message must be dropped on passport check");
    // And the outsider still has no group state.
    let node: &WhisperNode = net.sim.node(outsider).unwrap();
    assert!(node.ppss().group(group).is_none());
}

#[test]
fn dead_members_are_pruned_from_private_views() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = whisper_net::SimDuration::from_secs(30);
    let mut net = build(30, &cfg, SimConfig::cluster(12), 250);
    let leader = net.ids[3];
    let members: Vec<NodeId> = net.ids[4..14].to_vec();
    let group = form_group(&mut net, leader, &members, "churny");
    net.sim.run_for_secs(300);

    let victim = members[0];
    assert!(members_of(&net, group, &net.ids).contains(&victim));
    net.sim.remove_node(victim);
    // Pruning is epidemic: a holder drops the dead entry only after
    // itself exhausting WCL retries against it, and fresh copies keep
    // circulating until every holder has; give it a realistic horizon.
    net.sim.run_for_secs(900);

    for &m in &members_of(&net, group, &net.ids) {
        let node: &WhisperNode = net.sim.node(m).unwrap();
        let state = node.ppss().group(group).unwrap();
        assert!(
            !state.view().iter().any(|e| e.node == victim),
            "{m:?} still lists the dead member"
        );
    }
    assert!(net.sim.metrics().counter("wcl.route_exhausted") > 0
        || net.sim.metrics().counter("wcl.route_no_alt") > 0);
}

#[test]
fn leader_election_after_leader_death() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = whisper_net::SimDuration::from_secs(20);
    cfg.ppss.hb_miss_threshold = 3;
    cfg.ppss.election_cycles = 2;
    let mut net = build(25, &cfg, SimConfig::cluster(13), 250);
    let leader = net.ids[3];
    let members: Vec<NodeId> = net.ids[4..12].to_vec();
    let group = form_group(&mut net, leader, &members, "survivable");
    net.sim.run_for_secs(200);
    let joined: Vec<NodeId> = members_of(&net, group, &net.ids);
    assert!(joined.len() >= 6, "{} joined", joined.len());

    net.sim.remove_node(leader);
    net.sim.run_for_secs(800);

    assert!(
        net.sim.metrics().counter("ppss.elections_won") >= 1,
        "someone must win the election"
    );
    // At least one surviving member is now a leader with a bumped epoch,
    // and the new key disseminated to others.
    let survivors = members_of(&net, group, &net.ids);
    let new_leaders: Vec<NodeId> = survivors
        .iter()
        .copied()
        .filter(|id| {
            net.sim
                .node::<WhisperNode>(*id)
                .unwrap()
                .ppss()
                .group(group)
                .unwrap()
                .is_leader()
        })
        .collect();
    assert!(!new_leaders.is_empty(), "no new leader emerged");
    let adopted = survivors
        .iter()
        .filter(|id| {
            net.sim
                .node::<WhisperNode>(**id)
                .unwrap()
                .ppss()
                .group(group)
                .unwrap()
                .epoch()
                >= 1
        })
        .count();
    assert!(
        adopted * 2 >= survivors.len(),
        "{adopted}/{} adopted the new epoch",
        survivors.len()
    );
}

#[test]
fn persistent_paths_survive_view_turnover() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = whisper_net::SimDuration::from_secs(30);
    cfg.ppss.pcp_refresh = whisper_net::SimDuration::from_secs(60);
    let mut net = build(30, &cfg, SimConfig::cluster(14), 250);
    let leader = net.ids[3];
    let members: Vec<NodeId> = net.ids[4..14].to_vec();
    let group = form_group(&mut net, leader, &members, "pcp");
    net.sim.run_for_secs(300);

    // Leader pins its first private-view member.
    let mut pinned = None;
    net.sim.with_node_ctx::<WhisperNode>(leader, |node, _| {
        node.with_api(|api, _| {
            let first = api.private_view(group).first().map(|e| e.node);
            if let Some(n) = first {
                api.ppss.make_persistent(group, n);
                pinned = Some(n);
            }
        });
    });
    let pinned = pinned.expect("leader had a view entry to pin");
    net.sim.run_for_secs(600);

    let node: &WhisperNode = net.sim.node(leader).unwrap();
    let state = node.ppss().group(group).unwrap();
    assert!(state.pcp().contains_key(&pinned), "PCP entry evicted");
    assert!(net.sim.metrics().counter("ppss.pcp_refreshes") > 0);

    // The pinned member can still be messaged even if it left the view.
    let mut sent = false;
    net.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        node.with_api(|api, _| {
            sent = api.send_private(ctx, group, pinned, b"still there?".to_vec(), false);
        });
    });
    assert!(sent, "send over the persistent path failed");
}

#[test]
fn multi_group_memberships_stay_separate() {
    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(15), 250);
    let leader_a = net.ids[3];
    let leader_b = net.ids[4];
    let shared: Vec<NodeId> = net.ids[5..10].to_vec();
    let only_a: Vec<NodeId> = net.ids[10..14].to_vec();
    let mut members_a = shared.clone();
    members_a.extend(&only_a);
    let ga = form_group(&mut net, leader_a, &members_a, "group-a");
    let gb = form_group(&mut net, leader_b, &shared, "group-b");
    net.sim.run_for_secs(600);

    // Nodes only in A must never appear in any B view.
    for &id in &net.ids {
        let Some(node) = net.sim.node::<WhisperNode>(id) else { continue };
        if let Some(state) = node.ppss().group(gb) {
            for e in state.view() {
                assert!(
                    !only_a.contains(&e.node),
                    "group-A-only member {:?} leaked into a group-B view",
                    e.node
                );
            }
        }
    }
    // Shared members hold both groups independently.
    let both = shared
        .iter()
        .filter(|id| {
            let n = net.sim.node::<WhisperNode>(**id).unwrap();
            n.ppss().group(ga).is_some() && n.ppss().group(gb).is_some()
        })
        .count();
    assert!(both >= shared.len() - 1, "{both}/{} hold both", shared.len());
}

// ---------------------------------------------------------------------
// Durable group lifecycle: journal replay, corruption salvage, deletion
// tombstones and descriptor-carried membership (PR 9).
// ---------------------------------------------------------------------

#[test]
fn descriptors_propagate_membership_to_all_members() {
    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(21), 250);
    let leader = net.ids[4];
    let members: Vec<NodeId> = net.ids[5..13].to_vec();
    let group = form_group(&mut net, leader, &members, "descr-prop");
    net.sim.run_for_secs(600);

    let joined = members_of(&net, group, &net.ids);
    assert!(joined.len() >= 8, "{} joined", joined.len());

    // Every member eventually adopts a signed descriptor, and the OR-set
    // converges: exchanges carry old admission dots to late joiners, so
    // each member's membership covers (nearly) the whole group.
    let mut adopted = 0;
    let mut converged = 0;
    for &m in &joined {
        let node: &WhisperNode = net.sim.node(m).unwrap();
        let state = node.ppss().group(group).unwrap();
        if state.latest_descriptor().is_some() {
            adopted += 1;
        }
        if state.membership().members().len() >= joined.len() - 1 {
            converged += 1;
        }
    }
    assert!(
        adopted >= joined.len() - 1,
        "{adopted}/{} members adopted a descriptor",
        joined.len()
    );
    assert!(
        converged >= joined.len() - 1,
        "{converged}/{} memberships converged",
        joined.len()
    );
    let metrics = net.sim.metrics();
    assert!(metrics.counter("ppss.desc_published") > 0, "leader published");
    assert!(metrics.counter("ppss.desc_adopted") > 0, "members adopted");
    assert!(metrics.counter("pss.desc_merged") > 0, "relays carried blobs");
    assert!(
        !metrics.samples("ppss.desc_prop_s").is_empty(),
        "propagation latency sampled"
    );
}

#[test]
fn groups_survive_crash_restart_via_journal_replay() {
    use whisper_net::fault::FaultPlan;
    use whisper_net::SimDuration;

    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(22), 250);
    let leader = net.ids[4];
    let members: Vec<NodeId> = net.ids[5..13].to_vec();
    let group = form_group(&mut net, leader, &members, "durable");
    net.sim.run_for_secs(400);
    let joined = members_of(&net, group, &net.ids);
    let victim = *joined.iter().find(|id| **id != leader).expect("a member joined");

    let now = net.sim.now();
    let plan = FaultPlan::new().crash_restart(
        victim,
        now + SimDuration::from_secs(5),
        now + SimDuration::from_secs(60),
    );
    net.sim.install_fault_plan(plan);
    net.sim.run_for_secs(70);

    // Immediately after restart the group state is back — rebuilt from
    // journal replay alone, not from any surviving in-memory state.
    assert!(net.sim.metrics().counter("ppss.journal_replayed") > 0, "journal replayed");
    assert!(
        net.sim.metrics().counter("ppss.journal_groups_restored") >= 1,
        "group restored from journal"
    );
    {
        let node: &WhisperNode = net.sim.node(victim).unwrap();
        assert!(node.ppss().group(group).is_some(), "group survived the crash");
    }

    // ... and the member re-converges: its private view repopulates from
    // the journaled contacts within a few PPSS cycles.
    net.sim.run_for_secs(300);
    let node: &WhisperNode = net.sim.node(victim).unwrap();
    let state = node.ppss().group(group).expect("still a member");
    assert!(
        state.view().len() >= 2,
        "view repopulated after restart ({} entries)",
        state.view().len()
    );
}

#[test]
fn damaged_journals_salvage_their_valid_prefix_on_restart() {
    use whisper_net::fault::FaultPlan;
    use whisper_net::SimDuration;

    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(23), 250);
    let leader = net.ids[4];
    let members: Vec<NodeId> = net.ids[5..13].to_vec();
    let group = form_group(&mut net, leader, &members, "salvage");
    net.sim.run_for_secs(400);
    let joined = members_of(&net, group, &net.ids);
    let mut non_leaders = joined.iter().copied().filter(|id| *id != leader);
    let flip_victim = non_leaders.next().expect("member one");
    let cut_victim = non_leaders.next().expect("member two");

    // Damage the journals *in place*: flip a bit inside the last record
    // of one, shear the tail off the other — the torn-write and
    // bit-rot failure modes a real disk produces.
    net.sim.with_node_ctx::<WhisperNode>(flip_victim, |node, _| {
        let raw = node.ppss_mut().journal_mut().raw_mut();
        let len = raw.len();
        raw[len - 3] ^= 0x10;
    });
    net.sim.with_node_ctx::<WhisperNode>(cut_victim, |node, _| {
        let raw = node.ppss_mut().journal_mut().raw_mut();
        let len = raw.len();
        raw.truncate(len - 7);
    });

    let now = net.sim.now();
    let plan = FaultPlan::new()
        .crash_restart(
            flip_victim,
            now + SimDuration::from_secs(2),
            now + SimDuration::from_secs(40),
        )
        .crash_restart(
            cut_victim,
            now + SimDuration::from_secs(2),
            now + SimDuration::from_secs(40),
        );
    net.sim.install_fault_plan(plan);
    net.sim.run_for_secs(60);

    // The damage is *attributed* (named counters, never silent) and the
    // valid prefix still restores the group: earlier snapshots of the
    // same group precede the damaged tail.
    let attributed = net.sim.metrics().counter("ppss.journal_corrupt")
        + net.sim.metrics().counter("ppss.journal_truncated");
    assert!(attributed >= 1, "journal damage attributed to a named counter");
    for victim in [flip_victim, cut_victim] {
        let node: &WhisperNode = net.sim.node(victim).unwrap();
        assert!(
            node.ppss().group(group).is_some(),
            "{victim:?} salvaged its group from the valid journal prefix"
        );
    }
}

#[test]
fn deleted_groups_never_resurrect() {
    let cfg = WhisperConfig::default();
    let mut net = build(30, &cfg, SimConfig::cluster(24), 250);
    let leader = net.ids[4];
    let members: Vec<NodeId> = net.ids[5..13].to_vec();
    let group = form_group(&mut net, leader, &members, "doomed");
    net.sim.run_for_secs(400);
    let joined = members_of(&net, group, &net.ids);
    assert!(joined.len() >= 8, "{} joined before deletion", joined.len());

    // Save an invitation from before the deletion: the resurrection
    // attempt below presents otherwise-valid credentials.
    let stale_invite = net
        .sim
        .node::<WhisperNode>(leader)
        .unwrap()
        .invite(group, net.ids[20])
        .expect("leader can invite");

    net.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        assert!(node.delete_group(ctx, group), "leader deletes its group");
    });
    // Tombstone descriptors ride the relay gossip to every member.
    net.sim.run_for_secs(600);

    let survivors = members_of(&net, group, &net.ids);
    assert!(
        survivors.is_empty(),
        "{} nodes still hold the deleted group: {survivors:?}",
        survivors.len()
    );
    assert!(
        net.sim.metrics().counter("ppss.groups_deleted") as usize >= joined.len(),
        "every member tore the group down"
    );

    // A node presenting a pre-deletion invitation cannot rejoin: the
    // tombstone is sticky ("tombstones are forever").
    net.sim.with_node_ctx::<WhisperNode>(net.ids[20], |node, ctx| {
        node.join_group(ctx, stale_invite);
    });
    net.sim.run_for_secs(120);
    assert!(
        net.sim
            .node::<WhisperNode>(net.ids[20])
            .unwrap()
            .ppss()
            .group(group)
            .is_none(),
        "stale invitation must not resurrect a deleted group"
    );
    assert!(
        net.sim.metrics().counter("ppss.resurrection_blocked") > 0,
        "the blocked attempt is attributed"
    );
}
