//! Circuit amortization lifecycle tests: cache hit on the second send,
//! TTL expiry, and miss-and-rebuild after a relay loses its state. These
//! pin the behavior DESIGN.md § "Circuit amortization" promises, on the
//! same minimal controlled topology as `wcl_paths.rs`.

use whisper_core::{DestInfo, WhisperConfig, WhisperNode};
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::NatType;
use whisper_net::sim::{Sim, SimConfig};
use whisper_net::{NodeId, SimDuration};
use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;

struct Rig {
    sim: Sim,
    source: NodeId,
    dest: NodeId,
    publics: Vec<NodeId>,
}

/// Same shape as the `wcl_paths.rs` rig: two bootstraps, a few P-nodes,
/// NATted source and destination, PSS warmed up.
fn rig(cfg: WhisperConfig, extra_publics: usize, seed: u64) -> Rig {
    let mut keyrng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(SimConfig::cluster(seed));
    let mk = |boot: bool, keyrng: &mut StdRng| {
        let mut node = WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, keyrng));
        if !boot {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        }
        node
    };
    let b0 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    let b1 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    sim.with_node_ctx::<WhisperNode>(b0, |n, _| n.nylon_mut().set_bootstrap(vec![b1]));
    sim.with_node_ctx::<WhisperNode>(b1, |n, _| n.nylon_mut().set_bootstrap(vec![b0]));
    let mut publics = vec![b0, b1];
    publics.extend(
        (0..extra_publics).map(|_| sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::Public)),
    );
    let source = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::RestrictedCone);
    let dest = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::PortRestrictedCone);
    sim.run_for_secs(250);
    Rig { sim, source, dest, publics }
}

fn dest_info_of(sim: &mut Sim, dest: NodeId) -> DestInfo {
    let mut info = None;
    sim.with_node_ctx::<WhisperNode>(dest, |node, _| {
        node.with_api(|api, _| {
            info = Some(api.my_entry().dest_info());
        });
    });
    info.expect("dest alive")
}

fn send_untracked(sim: &mut Sim, source: NodeId, dest_info: &DestInfo, payload: &[u8]) -> bool {
    let mut sent = false;
    sim.with_node_ctx::<WhisperNode>(source, |node, ctx| {
        node.with_api(|api, _| {
            sent = api.wcl.send_untracked(ctx, api.nylon, dest_info, payload);
        });
    });
    sent
}

#[test]
fn second_send_rides_the_cached_circuit() {
    let mut r = rig(WhisperConfig::default(), 6, 201);
    let dest_info = dest_info_of(&mut r.sim, r.dest);

    // First send: full RSA onion, establishing the circuit along the way.
    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"first"));
    r.sim.run_for_secs(5);
    let m = r.sim.metrics();
    assert_eq!(m.counter("wcl.circuit_established"), 1);
    assert_eq!(m.counter("wcl.circuit_hit"), 0);
    assert_eq!(m.counter("wcl.delivered"), 1);
    // All 3 hops (A, B, D) installed the circuit state from their layer.
    assert_eq!(m.counter("wcl.circuit_installed"), 3);

    // Second send: no RSA at all — pure circuit forwarding.
    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"second"));
    r.sim.run_for_secs(5);
    let m = r.sim.metrics();
    assert_eq!(m.counter("wcl.circuit_established"), 1, "no re-establishment");
    assert_eq!(m.counter("wcl.circuit_hit"), 1);
    assert_eq!(m.counter("wcl.circuit_forwarded"), 2, "A and B each stripped a layer");
    assert_eq!(m.counter("wcl.circuit_delivered"), 1);
    assert_eq!(m.counter("wcl.delivered"), 2);
    // The relay-count invariant holds across both packet formats.
    assert_eq!(m.counter("wcl.relayed"), 2 * m.counter("wcl.delivered"));
    assert_eq!(m.counter("wcl.circuit_miss_drop"), 0);
}

#[test]
fn circuit_ttl_expires_and_reestablishes() {
    let mut cfg = WhisperConfig::default();
    cfg.wcl.circuit_ttl = SimDuration::from_secs(10);
    let mut r = rig(cfg, 6, 202);
    let dest_info = dest_info_of(&mut r.sim, r.dest);

    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"establish"));
    r.sim.run_for_secs(30); // source cache (ttl/2 = 5 s) and relay ttl both lapse

    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"after expiry"));
    r.sim.run_for_secs(5);
    let m = r.sim.metrics();
    assert_eq!(
        m.counter("wcl.circuit_established"),
        2,
        "expired route must be re-established, not reused"
    );
    assert_eq!(m.counter("wcl.circuit_hit"), 0);
    assert_eq!(m.counter("wcl.delivered"), 2);
    assert_eq!(m.counter("wcl.circuit_miss_drop"), 0, "the source never races relay expiry");
}

#[test]
fn relay_state_loss_drops_then_retry_rebuilds() {
    let mut r = rig(WhisperConfig::default(), 6, 203);
    let dest_info = dest_info_of(&mut r.sim, r.dest);

    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"establish"));
    r.sim.run_for_secs(5);
    assert_eq!(r.sim.metrics().counter("wcl.delivered"), 1);

    // Every node except the source loses its circuit state (churn /
    // restart). The source's cached route is now a dangling pointer.
    let victims: Vec<NodeId> = r.publics.iter().copied().chain([r.dest]).collect();
    for node in victims {
        r.sim.with_node_ctx::<WhisperNode>(node, |n, _| {
            n.with_api(|api, _| api.wcl.flush_circuits());
        });
    }

    // An untracked send rides the stale circuit and dies at the first
    // relay — fire-and-forget means nobody notices.
    assert!(send_untracked(&mut r.sim, r.source, &dest_info, b"into the void"));
    r.sim.run_for_secs(5);
    let m = r.sim.metrics();
    assert_eq!(m.counter("wcl.circuit_hit"), 1);
    assert_eq!(m.counter("wcl.circuit_miss_drop"), 1);
    assert_eq!(m.counter("wcl.delivered"), 1, "the dropped packet never arrives");

    // A *tracked* send recovers: the first attempt also dies on the stale
    // circuit, the retry timer tears the route down and rebuilds over a
    // fresh RSA onion.
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            let id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"must arrive".to_vec(), id);
        });
    });
    assert!(sent);
    r.sim.run_for_secs(30);
    let m = r.sim.metrics();
    assert!(m.counter("wcl.circuit_teardown") >= 1, "stale route torn down");
    assert!(m.counter("wcl.route_retry") >= 1, "retry machinery engaged");
    assert!(
        m.counter("wcl.circuit_established") >= 2,
        "rebuild goes through a fresh RSA establishment"
    );
    assert!(m.counter("wcl.delivered") >= 2, "the tracked payload arrives after rebuild");
}
