//! Focused WCL route-construction tests on a minimal, fully controlled
//! topology: one source, a handful of backlog candidates, one NATted
//! destination with explicit gateways. These pin down the §III-A path
//! rules that the larger integration tests only exercise statistically.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper_core::{DestInfo, WhisperConfig, WhisperNode};
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::NatType;
use whisper_net::sim::{Sim, SimConfig};
use whisper_net::NodeId;

struct Rig {
    sim: Sim,
    source: NodeId,
    dest: NodeId,
    publics: Vec<NodeId>,
}

/// Builds: two bootstraps, `extra_publics` P-nodes, one NATted source and
/// one NATted destination, and lets the PSS warm up so CBs fill and keys
/// spread.
fn rig(extra_publics: usize, seed: u64) -> Rig {
    let cfg = WhisperConfig::default();
    let mut keyrng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(SimConfig::cluster(seed));
    let mk = |boot: bool, keyrng: &mut StdRng| {
        let mut node = WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, keyrng));
        if !boot {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        }
        node
    };
    let b0 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    let b1 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    sim.with_node_ctx::<WhisperNode>(b0, |n, _| n.nylon_mut().set_bootstrap(vec![b1]));
    sim.with_node_ctx::<WhisperNode>(b1, |n, _| n.nylon_mut().set_bootstrap(vec![b0]));
    let publics: Vec<NodeId> = (0..extra_publics)
        .map(|_| sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::Public))
        .collect();
    let source = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::RestrictedCone);
    let dest = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::PortRestrictedCone);
    sim.run_for_secs(250);
    Rig { sim, source, dest, publics }
}

/// The destination's own advertised contact info, as PPSS would ship it.
fn dest_info_of(sim: &mut Sim, dest: NodeId) -> DestInfo {
    let mut info = None;
    sim.with_node_ctx::<WhisperNode>(dest, |node, _| {
        node.with_api(|api, _| {
            info = Some(api.my_entry().dest_info());
        });
    });
    info.expect("dest alive")
}

#[test]
fn tracked_send_to_natted_dest_succeeds_and_notifies() {
    let mut r = rig(6, 101);
    let dest_info = dest_info_of(&mut r.sim, r.dest);
    assert!(!dest_info.public);
    assert!(
        dest_info.gateways.len() >= 2,
        "dest advertises Π gateways (got {})",
        dest_info.gateways.len()
    );
    // Source sends a tracked payload (a raw PPSS-opaque blob).
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            let id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"probe".to_vec(), id);
        });
    });
    assert!(sent, "path must be constructible after warm-up");
    r.sim.run_for_secs(30);
    // Nothing answers a raw blob, so the tracked send retries over
    // alternative paths; every copy that arrives crossed exactly two
    // mixes (the 4-node path S → A → B → D).
    let delivered = r.sim.metrics().counter("wcl.delivered");
    let relayed = r.sim.metrics().counter("wcl.relayed");
    assert!(delivered >= 1, "at least the first copy arrives");
    assert_eq!(relayed, 2 * delivered, "every delivery crossed exactly 2 mixes");
}

#[test]
fn send_fails_cleanly_when_natted_dest_has_no_gateways() {
    let mut r = rig(6, 102);
    let mut dest_info = dest_info_of(&mut r.sim, r.dest);
    dest_info.gateways.clear();
    let mut sent = true;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            let id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"probe".to_vec(), id);
        });
    });
    assert!(!sent, "no gateway ⇒ no path to a NATted destination");
    assert_eq!(r.sim.metrics().counter("wcl.route_no_alt"), 1);
}

#[test]
fn public_dest_uses_cb_publics_as_gateway() {
    let mut r = rig(6, 103);
    // Target one of the extra publics; ship NO gateways at all (the
    // source must fall back to its own CB publics, paper §IV-B).
    let target = r.publics[0];
    let mut dest_info = dest_info_of(&mut r.sim, target);
    assert!(dest_info.public);
    dest_info.gateways.clear();
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            sent = api.wcl.send_untracked(ctx, api.nylon, &dest_info, b"to public");
        });
    });
    assert!(sent);
    r.sim.run_for_secs(5);
    assert_eq!(r.sim.metrics().counter("wcl.delivered"), 1);
}

#[test]
fn longer_paths_use_more_relays() {
    let mut cfg = WhisperConfig::default();
    cfg.wcl.mixes = 4;
    let mut keyrng = StdRng::seed_from_u64(104);
    let mut sim = Sim::new(SimConfig::cluster(104));
    let mk = |boot: bool, keyrng: &mut StdRng| {
        let mut node = WhisperNode::new(cfg.clone(), KeyPair::generate(cfg.nylon.rsa, keyrng));
        if !boot {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        }
        node
    };
    let b0 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    let b1 = sim.add_node(Box::new(mk(true, &mut keyrng)), NatType::Public);
    sim.with_node_ctx::<WhisperNode>(b0, |n, _| n.nylon_mut().set_bootstrap(vec![b1]));
    sim.with_node_ctx::<WhisperNode>(b1, |n, _| n.nylon_mut().set_bootstrap(vec![b0]));
    for _ in 0..8 {
        sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::Public);
    }
    let source = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::RestrictedCone);
    let dest = sim.add_node(Box::new(mk(false, &mut keyrng)), NatType::FullCone);
    sim.run_for_secs(250);

    let dest_info = dest_info_of(&mut sim, dest);
    let mut sent = false;
    sim.with_node_ctx::<WhisperNode>(source, |node, ctx| {
        node.with_api(|api, _| {
            sent = api.wcl.send_untracked(ctx, api.nylon, &dest_info, b"long path");
        });
    });
    assert!(sent);
    sim.run_for_secs(5);
    assert_eq!(sim.metrics().counter("wcl.delivered"), 1);
    // 4 mixes ⇒ 4 relay peels before the destination.
    assert_eq!(sim.metrics().counter("wcl.relayed"), 4);
}

#[test]
fn retries_avoid_previously_used_mixes() {
    let mut r = rig(6, 105);
    let dest_info = dest_info_of(&mut r.sim, r.dest);
    // Kill the destination so every attempt times out and the retry
    // machinery walks through alternative gateways.
    r.sim.remove_node(r.dest);
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            let id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"doomed".to_vec(), id);
        });
    });
    assert!(sent, "first path still constructible (gateways are alive)");
    r.sim.run_for_secs(30);
    let m = r.sim.metrics();
    let retries = m.counter("wcl.route_retry");
    assert!(retries >= 1, "alternative paths must be attempted");
    // Each retry used a different gateway, so attempts are bounded by the
    // advertised gateway count.
    assert!(
        retries <= dest_info.gateways.len() as u64,
        "{} retries for {} gateways",
        retries,
        dest_info.gateways.len()
    );
    // The send eventually failed one way or the other.
    assert!(m.counter("wcl.route_no_alt") + m.counter("wcl.route_exhausted") >= 1);
    assert_eq!(m.counter("wcl.route_first_success"), 0);
}

/// Exhausted-retries branch of `on_retry_timer`: alternatives keep
/// existing (a public destination falls back to the source's CB publics,
/// of which there are plenty), but `max_retries` is hit first. The
/// failure is `wcl.route_exhausted` with `no_alternative: false`, and
/// both the pending entry and any cached circuit route are gone.
#[test]
fn route_failed_exhausted_clears_pending_and_cached_route() {
    let mut r = rig(10, 106);
    let target = r.publics[0];
    let dest_info = dest_info_of(&mut r.sim, target);
    r.sim.remove_node(target);
    let mut msg_id = 0;
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            msg_id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"doomed".to_vec(), msg_id);
        });
    });
    assert!(sent, "plenty of live relays to build the first path");
    // Adaptive RTO backoff: ~2 + 4 + 8 + 16 s plus jitter.
    r.sim.run_for_secs(90);
    let m = r.sim.metrics();
    assert_eq!(m.counter("wcl.route_exhausted"), 1, "retries must run dry");
    assert_eq!(m.counter("wcl.route_no_alt"), 0, "alternatives never ran out");
    assert_eq!(m.counter("wcl.route_retry"), 3, "max_retries alternative paths tried");
    let node = r.sim.node::<WhisperNode>(r.source).unwrap();
    assert!(!node.wcl().is_pending(msg_id), "pending entry must be dropped");
    assert!(
        !node.wcl().has_cached_route(target),
        "cached circuit route must be torn down"
    );
}

/// No-alternative branch of `on_retry_timer`: a NATted destination
/// advertises exactly Π gateways, and once each has been tried the next
/// timer finds no unused path. The failure is `wcl.route_no_alt` with
/// `no_alternative: true`, again leaving no pending entry or cached
/// route behind.
#[test]
fn route_failed_no_alternative_clears_pending_and_cached_route() {
    let mut r = rig(6, 107);
    let dest_info = dest_info_of(&mut r.sim, r.dest);
    let gateways = dest_info.gateways.len();
    assert!(gateways >= 2, "dest advertises Π gateways");
    r.sim.remove_node(r.dest);
    let mut msg_id = 0;
    let mut sent = false;
    r.sim.with_node_ctx::<WhisperNode>(r.source, |node, ctx| {
        node.with_api(|api, _| {
            msg_id = api.wcl.alloc_msg_id();
            sent = api.wcl.send(ctx, api.nylon, &dest_info, b"doomed".to_vec(), msg_id);
        });
    });
    assert!(sent);
    r.sim.run_for_secs(60);
    let m = r.sim.metrics();
    assert_eq!(m.counter("wcl.route_no_alt"), 1, "gateway list must run out");
    assert_eq!(m.counter("wcl.route_exhausted"), 0, "max_retries never reached");
    assert_eq!(
        m.counter("wcl.route_retry"),
        gateways as u64 - 1,
        "one retry per remaining gateway"
    );
    let node = r.sim.node::<WhisperNode>(r.source).unwrap();
    assert!(!node.wcl().is_pending(msg_id), "pending entry must be dropped");
    assert!(
        !node.wcl().has_cached_route(r.dest),
        "cached circuit route must be torn down"
    );
}
