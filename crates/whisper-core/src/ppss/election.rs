//! Leader liveness tracking and gossip-based leader election
//! (paper §IV-A).
//!
//! Leaders emit heartbeats through the exchange gossip. When a member
//! sees no heartbeat progress for a configurable number of PPSS cycles it
//! proposes a value (the hash of its identifier) and the group runs a
//! gossip max-aggregation; after a few cycles each node knows the highest
//! proposal, and the proposer of that value becomes the new leader,
//! generates a new group key pair and announces the public half signed by
//! its identity.

use crate::ppss::messages::{ElectionBallot, Heartbeat};
use whisper_crypto::sha256::Sha256;
use whisper_net::NodeId;

/// The proposal value for a node: a hash of its identifier (paper: "a
/// value based on the hash of its identifier").
pub fn proposal_value(node: NodeId) -> u64 {
    let digest = Sha256::digest(&node.to_bytes());
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
}

/// Outcome of one election tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElectionOutcome {
    /// Nothing to do.
    Idle,
    /// The local node decided it won the round.
    Won {
        /// The epoch the winner now leads.
        epoch: u64,
    },
}

#[derive(Clone, Debug)]
struct Election {
    round: u64,
    best: ElectionBallot,
    cycles: u64,
}

/// Tracks leader liveness and any in-flight election for one group.
#[derive(Clone, Debug)]
pub struct LeaderTracker {
    /// Current leadership epoch.
    pub epoch: u64,
    last_seq: u64,
    cycles_since_progress: u64,
    election: Option<Election>,
}

impl LeaderTracker {
    /// Fresh tracker at epoch 0.
    pub fn new() -> Self {
        LeaderTracker { epoch: 0, last_seq: 0, cycles_since_progress: 0, election: None }
    }

    /// Heartbeat the group currently believes in.
    pub fn heartbeat(&self) -> Heartbeat {
        Heartbeat { epoch: self.epoch, seq: self.last_seq }
    }

    /// Cycles since the last heartbeat progress (diagnostics).
    pub fn staleness(&self) -> u64 {
        self.cycles_since_progress
    }

    /// Whether an election is running.
    pub fn electing(&self) -> bool {
        self.election.is_some()
    }

    /// The ballot to piggyback on outgoing exchanges, if an election is
    /// running.
    pub fn ballot(&self) -> Option<ElectionBallot> {
        self.election.as_ref().map(|e| e.best.clone())
    }

    /// Ingests a heartbeat seen in an exchange.
    pub fn observe_heartbeat(&mut self, hb: Heartbeat) {
        if (hb.epoch, hb.seq) > (self.epoch, self.last_seq) {
            self.epoch = hb.epoch;
            self.last_seq = hb.seq;
            self.cycles_since_progress = 0;
            // A live(r) leader cancels any stale election for an older
            // round.
            if self
                .election
                .as_ref()
                .is_some_and(|e| e.round <= self.epoch)
            {
                self.election = None;
            }
        }
    }

    /// Ingests an election ballot seen in an exchange; keeps the maximum
    /// (gossip max-aggregation).
    pub fn observe_ballot(&mut self, ballot: ElectionBallot) {
        if ballot.round <= self.epoch {
            return; // stale round
        }
        match &mut self.election {
            Some(e) if e.round == ballot.round => {
                if (ballot.value, ballot.node) > (e.best.value, e.best.node) {
                    e.best = ballot;
                }
            }
            Some(e) if e.round > ballot.round => {}
            _ => {
                self.election = Some(Election { round: ballot.round, best: ballot, cycles: 0 });
            }
        }
    }

    /// Called by a *leader* each PPSS cycle to advance its heartbeat.
    pub fn beat(&mut self) {
        self.last_seq += 1;
        self.cycles_since_progress = 0;
    }

    /// Called by a member each PPSS cycle.
    ///
    /// * `me` / `my_key` — used to propose when an election must start;
    /// * `miss_threshold` — cycles without heartbeat progress before
    ///   proposing;
    /// * `decide_after` — cycles of aggregation before declaring the
    ///   winner.
    pub fn on_cycle(
        &mut self,
        me: NodeId,
        my_key: Vec<u8>,
        miss_threshold: u64,
        decide_after: u64,
    ) -> ElectionOutcome {
        self.cycles_since_progress += 1;
        if let Some(e) = &mut self.election {
            e.cycles += 1;
            if e.cycles >= decide_after {
                let won = e.best.node == me;
                let round = e.round;
                if won {
                    self.election = None;
                    self.epoch = round;
                    self.last_seq = 0;
                    self.cycles_since_progress = 0;
                    return ElectionOutcome::Won { epoch: round };
                }
                // Losers wait for the winner's announcement; if none comes
                // (winner died mid-election) staleness keeps growing and a
                // new round starts below.
                if e.cycles >= decide_after + miss_threshold {
                    self.election = None;
                }
            }
            return ElectionOutcome::Idle;
        }
        if self.cycles_since_progress > miss_threshold {
            let ballot = ElectionBallot {
                round: self.epoch + 1,
                value: proposal_value(me),
                node: me,
                key: my_key,
            };
            self.election =
                Some(Election { round: self.epoch + 1, best: ballot, cycles: 0 });
        }
        ElectionOutcome::Idle
    }

    /// Acknowledges an externally verified new-key announcement for
    /// `epoch`; resets liveness tracking.
    pub fn accept_new_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.last_seq = 0;
            self.cycles_since_progress = 0;
            self.election = None;
        }
    }
}

impl Default for LeaderTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ballot(round: u64, node: u64) -> ElectionBallot {
        ElectionBallot { round, value: proposal_value(NodeId(node)), node: NodeId(node), key: vec![] }
    }

    #[test]
    fn heartbeat_progress_resets_staleness() {
        let mut t = LeaderTracker::new();
        t.on_cycle(NodeId(1), vec![], 5, 3);
        t.on_cycle(NodeId(1), vec![], 5, 3);
        assert_eq!(t.staleness(), 2);
        t.observe_heartbeat(Heartbeat { epoch: 0, seq: 1 });
        assert_eq!(t.staleness(), 0);
        t.observe_heartbeat(Heartbeat { epoch: 0, seq: 1 }); // no progress
        t.on_cycle(NodeId(1), vec![], 5, 3);
        assert_eq!(t.staleness(), 1);
    }

    #[test]
    fn election_starts_after_threshold() {
        let mut t = LeaderTracker::new();
        for _ in 0..=5 {
            assert_eq!(t.on_cycle(NodeId(1), vec![], 5, 3), ElectionOutcome::Idle);
        }
        assert!(t.electing());
        assert_eq!(t.ballot().unwrap().node, NodeId(1));
    }

    #[test]
    fn max_aggregation_keeps_best_ballot() {
        let mut t = LeaderTracker::new();
        t.observe_ballot(ballot(1, 10));
        t.observe_ballot(ballot(1, 20));
        let best = [10u64, 20]
            .into_iter()
            .max_by_key(|n| (proposal_value(NodeId(*n)), NodeId(*n)))
            .unwrap();
        assert_eq!(t.ballot().unwrap().node, NodeId(best));
    }

    #[test]
    fn winner_detects_victory() {
        let me = NodeId(42);
        let mut t = LeaderTracker::new();
        // I start proposing after the threshold...
        for _ in 0..=6 {
            t.on_cycle(me, vec![], 5, 3);
        }
        assert!(t.electing());
        // ...nobody outbids me, so after `decide_after` cycles I win.
        let mut outcome = ElectionOutcome::Idle;
        for _ in 0..4 {
            outcome = t.on_cycle(me, vec![], 5, 3);
            if outcome != ElectionOutcome::Idle {
                break;
            }
        }
        assert_eq!(outcome, ElectionOutcome::Won { epoch: 1 });
        assert_eq!(t.epoch, 1);
        assert!(!t.electing());
    }

    #[test]
    fn loser_defers_to_higher_ballot() {
        let me = NodeId(1);
        let rival = NodeId(2);
        let (low, high) = if proposal_value(me) < proposal_value(rival) {
            (me, rival)
        } else {
            (rival, me)
        };
        let mut t = LeaderTracker::new();
        for _ in 0..=6 {
            t.on_cycle(low, vec![], 5, 3);
        }
        t.observe_ballot(ballot(1, high.0));
        for _ in 0..5 {
            assert_eq!(t.on_cycle(low, vec![], 5, 3), ElectionOutcome::Idle);
        }
        let _ = low;
    }

    #[test]
    fn fresh_heartbeat_cancels_election() {
        let mut t = LeaderTracker::new();
        t.observe_ballot(ballot(1, 9));
        assert!(t.electing());
        t.observe_heartbeat(Heartbeat { epoch: 1, seq: 1 });
        assert!(!t.electing(), "epoch-1 leader is alive; round-1 election moot");
    }

    #[test]
    fn stale_ballots_ignored() {
        let mut t = LeaderTracker::new();
        t.accept_new_epoch(3);
        t.observe_ballot(ballot(2, 9));
        assert!(!t.electing());
    }

    #[test]
    fn accept_new_epoch_monotone() {
        let mut t = LeaderTracker::new();
        t.accept_new_epoch(2);
        assert_eq!(t.epoch, 2);
        t.accept_new_epoch(1);
        assert_eq!(t.epoch, 2, "older epochs ignored");
    }

    #[test]
    fn leader_beat_advances_heartbeat() {
        let mut t = LeaderTracker::new();
        t.beat();
        t.beat();
        assert_eq!(t.heartbeat(), Heartbeat { epoch: 0, seq: 2 });
    }
}
