//! Append-only group journal: the node's "disk".
//!
//! The simulator keeps protocol objects alive across a crash-restart (the
//! object *is* the machine; `on_crash_restart` models the reboot), so
//! durable state is whatever a protocol deliberately carries across that
//! call. This module makes the durable/volatile split honest for PPSS
//! group state: every group change is appended here as a length-prefixed,
//! checksummed record, and [`crate::ppss::Ppss::on_restart`] rebuilds its
//! group table **only** from a journal replay — in-memory state that was
//! never journaled is lost, exactly like a process that forgot to fsync.
//!
//! ## Record framing
//!
//! ```text
//! [u32 len (BE)] [8-byte checksum = Sha256(payload)[..8]] [payload; len bytes]
//! ```
//!
//! Payload contents are opaque to the journal (the PPSS layer encodes
//! [`crate::ppss::journal`]-level records with the wire codec).
//!
//! ## Crash recovery
//!
//! A crash can leave the tail half-written (truncation) and stray writes
//! can damage any byte (corruption). [`Journal::replay`] scans from the
//! start and salvages the longest valid prefix:
//!
//! * a header or body extending past the end of the buffer stops the scan
//!   and counts as **truncated** (this also covers a corrupted length
//!   field that inflates `len` past the buffer — indistinguishable from
//!   truncation without trusting the very field that is in doubt),
//! * a checksum mismatch stops the scan and counts as **corrupt**
//!   (framing after a damaged record cannot be trusted, so nothing past
//!   it is salvaged).
//!
//! Both outcomes are deterministic functions of the byte buffer, so
//! replicas recovering from identical "disks" converge byte-identically.

/// Size of the `[len][checksum]` record header.
const HEADER: usize = 4 + 8;

/// An append-only, checksummed record log in a plain byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    buf: Vec<u8>,
}

/// Outcome of a [`Journal::replay`]: the salvaged records plus an exact
/// attribution of everything that was *not* salvaged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Payloads of the valid prefix, in append order.
    pub records: Vec<Vec<u8>>,
    /// 1 if the scan stopped on a truncated tail (header or body running
    /// past the end of the buffer), else 0.
    pub truncated: u64,
    /// 1 if the scan stopped on a checksum mismatch, else 0.
    pub corrupt: u64,
    /// Bytes of the valid prefix (offset where the scan stopped).
    pub salvaged_bytes: usize,
}

fn checksum(payload: &[u8]) -> [u8; 8] {
    let digest = whisper_crypto::sha256::Sha256::digest(payload);
    digest[..8].try_into().expect("8 bytes")
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Adopts raw bytes as the journal contents (models mounting a disk
    /// image of unknown integrity; [`replay`](Self::replay) decides what
    /// survives).
    pub fn from_raw(buf: Vec<u8>) -> Journal {
        Journal { buf }
    }

    /// The raw on-"disk" bytes.
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable access to the raw bytes — exists so fault-injection tests
    /// can flip bits and cut tails the way real storage does.
    pub fn raw_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Bytes currently in the journal.
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Whether the journal holds no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one record.
    pub fn append(&mut self, payload: &[u8]) {
        self.buf.reserve(HEADER + payload.len());
        self.buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(&checksum(payload));
        self.buf.extend_from_slice(payload);
    }

    /// Drops everything and re-appends `records` — compaction, used once
    /// a replayer has folded the log into its latest state.
    pub fn reset_with<'a>(&mut self, records: impl IntoIterator<Item = &'a [u8]>) {
        self.buf.clear();
        for r in records {
            self.append(r);
        }
    }

    /// Scans the journal from the start, salvaging the longest valid
    /// prefix (see the module docs for the exact truncation/corruption
    /// attribution rules).
    pub fn replay(&self) -> Recovery {
        let mut out = Recovery::default();
        let mut pos = 0usize;
        while pos < self.buf.len() {
            if pos + HEADER > self.buf.len() {
                out.truncated = 1;
                break;
            }
            let len = u32::from_be_bytes(self.buf[pos..pos + 4].try_into().expect("4 bytes"))
                as usize;
            let body = pos + HEADER;
            if len > self.buf.len() - body {
                out.truncated = 1;
                break;
            }
            let payload = &self.buf[body..body + len];
            if checksum(payload) != self.buf[pos + 4..pos + HEADER] {
                out.corrupt = 1;
                break;
            }
            out.records.push(payload.to_vec());
            pos = body + len;
        }
        out.salvaged_bytes = pos.min(self.buf.len());
        // `pos` stopped either at the end (clean) or at the first bad
        // record; in the clean case salvaged == len_bytes.
        if out.truncated == 0 && out.corrupt == 0 {
            debug_assert_eq!(out.salvaged_bytes, self.buf.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::check::check;
    use whisper_rand::Rng;

    fn journal_of(records: &[&[u8]]) -> Journal {
        let mut j = Journal::new();
        for r in records {
            j.append(r);
        }
        j
    }

    #[test]
    fn empty_journal_replays_clean() {
        let r = Journal::new().replay();
        assert_eq!(r, Recovery::default());
    }

    #[test]
    fn append_replay_round_trip() {
        let j = journal_of(&[b"alpha", b"", b"gamma-longer-record"]);
        let r = j.replay();
        assert_eq!(r.records, vec![b"alpha".to_vec(), vec![], b"gamma-longer-record".to_vec()]);
        assert_eq!((r.truncated, r.corrupt), (0, 0));
        assert_eq!(r.salvaged_bytes, j.len_bytes());
    }

    #[test]
    fn truncated_header_salvages_prefix() {
        let mut j = journal_of(&[b"keep", b"lost"]);
        let keep_len = HEADER + 4;
        j.raw_mut().truncate(keep_len + 5); // mid-header of record 2
        let r = j.replay();
        assert_eq!(r.records, vec![b"keep".to_vec()]);
        assert_eq!((r.truncated, r.corrupt), (1, 0));
        assert_eq!(r.salvaged_bytes, keep_len);
    }

    #[test]
    fn truncated_body_salvages_prefix() {
        let mut j = journal_of(&[b"keep", b"lost"]);
        let total = j.len_bytes();
        j.raw_mut().truncate(total - 2); // mid-body of record 2
        let r = j.replay();
        assert_eq!(r.records, vec![b"keep".to_vec()]);
        assert_eq!((r.truncated, r.corrupt), (1, 0));
    }

    #[test]
    fn bit_flip_in_body_is_corrupt_and_stops_the_scan() {
        let mut j = journal_of(&[b"keep", b"damaged", b"unreachable"]);
        let flip_at = (HEADER + 4) + HEADER + 2; // byte inside record 2's body
        j.raw_mut()[flip_at] ^= 0x40;
        let r = j.replay();
        assert_eq!(r.records, vec![b"keep".to_vec()]);
        assert_eq!((r.truncated, r.corrupt), (0, 1));
        assert_eq!(r.salvaged_bytes, HEADER + 4);
    }

    #[test]
    fn bit_flip_in_checksum_is_corrupt() {
        let mut j = journal_of(&[b"only"]);
        j.raw_mut()[5] ^= 0x01; // checksum byte
        let r = j.replay();
        assert!(r.records.is_empty());
        assert_eq!((r.truncated, r.corrupt), (0, 1));
    }

    #[test]
    fn inflated_length_field_reads_as_truncation() {
        let mut j = journal_of(&[b"keep", b"x"]);
        let len_at = HEADER + 4; // record 2's length field
        j.raw_mut()[len_at] = 0xFF; // len explodes past the buffer
        let r = j.replay();
        assert_eq!(r.records, vec![b"keep".to_vec()]);
        assert_eq!((r.truncated, r.corrupt), (1, 0));
    }

    #[test]
    fn reset_with_compacts() {
        let mut j = journal_of(&[b"a", b"b", b"c"]);
        let before = j.len_bytes();
        j.reset_with([b"merged".as_slice()]);
        assert!(j.len_bytes() < before);
        assert_eq!(j.replay().records, vec![b"merged".to_vec()]);
    }

    /// The verify.sh journal-corruption property test: random record
    /// streams under random truncation always salvage a prefix of what
    /// was written, deterministically.
    #[test]
    fn journal_truncation_salvages_a_valid_prefix() {
        check(200, "journal_truncation_salvages_a_valid_prefix", |g| {
            let n = g.gen_range(0..8usize);
            let records: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(40)).collect();
            let mut j = Journal::new();
            for r in &records {
                j.append(r);
            }
            let cut = g.gen_range(0..=j.len_bytes());
            j.raw_mut().truncate(cut);
            let r = j.replay();
            assert!(
                r.records.len() <= records.len()
                    && r.records[..] == records[..r.records.len()],
                "salvage must be a prefix of what was written"
            );
            assert!(r.corrupt == 0, "a pure cut is truncation, never corruption");
            assert_eq!(r.truncated, u64::from(r.salvaged_bytes != j.len_bytes()));
            // Determinism: replaying the same bytes twice is identical.
            assert_eq!(j.replay(), r);
        });
    }

    /// Companion property: random single-bit flips never let a damaged
    /// record through — the salvage is still a prefix of the original
    /// records and the damage is attributed (truncated or corrupt).
    #[test]
    fn journal_bit_flips_never_leak_damaged_records() {
        check(200, "journal_bit_flips_never_leak_damaged_records", |g| {
            let n = g.gen_range(1..8usize);
            let records: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(40)).collect();
            let mut j = Journal::new();
            for r in &records {
                j.append(r);
            }
            let flip_at = g.gen_range(0..j.len_bytes());
            let bit = 1u8 << g.gen_range(0..8u32);
            j.raw_mut()[flip_at] ^= bit;
            let r = j.replay();
            assert!(
                r.records.len() <= records.len()
                    && r.records[..] == records[..r.records.len()],
                "every salvaged record must be an original record, in order"
            );
            assert_eq!(
                r.truncated + r.corrupt,
                1,
                "a flipped bit always stops the scan with attribution"
            );
            assert_eq!(j.replay(), r, "recovery is deterministic");
        });
    }
}
