//! PPSS wire messages. All of them travel *inside* WCL onion payloads:
//! relays and observers only ever see ciphertext.

use crate::ppss::descriptor::MemberDot;
use crate::ppss::group::{GroupId, Passport};
use crate::wcl::{DestInfo, GatewayInfo};
use whisper_crypto::rsa::PublicKey;
use whisper_net::wire::{
    bytes_len, opt_len, seq_len, WireDecode, WireEncode, WireError, WireReader, WireWriter,
};
use whisper_net::NodeId;

/// One entry of a private view (paper §IV-B): the member's identity and
/// everything needed to open a confidential WCL route to it.
#[derive(Clone, Debug, PartialEq)]
pub struct PrivateEntry {
    /// The member.
    pub node: NodeId,
    /// Entry freshness (same semantics as the system-wide PSS).
    pub age: u16,
    /// Whether the member is a P-node.
    pub public: bool,
    /// The member's own public key.
    pub key: PublicKey,
    /// Π P-nodes that can reach the member (empty for P-nodes).
    pub gateways: Vec<GatewayInfo>,
}

impl PrivateEntry {
    /// Converts to the WCL's destination descriptor.
    pub fn dest_info(&self) -> DestInfo {
        DestInfo {
            node: self.node,
            public: self.public,
            key: self.key.clone(),
            gateways: self.gateways.clone(),
        }
    }
}

impl WireEncode for PrivateEntry {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        w.put_u16(self.age);
        w.put(&self.public);
        // Cached canonical blob: no per-send key re-serialization.
        w.put_bytes(self.key.wire_bytes());
        w.put_seq(&self.gateways);
    }

    fn encoded_len(&self) -> usize {
        8 + 2 + 1 + bytes_len(self.key.wire_bytes()) + seq_len(&self.gateways)
    }
}

impl WireDecode for PrivateEntry {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PrivateEntry {
            node: r.take()?,
            age: r.take_u16()?,
            public: r.take()?,
            key: PublicKey::from_bytes(r.take_bytes()?)
                .ok_or(WireError::new("bad entry key"))?,
            gateways: r.take_seq()?,
        })
    }
}

/// Leader liveness information piggybacked on exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Leadership epoch (bumped by each election).
    pub epoch: u64,
    /// Monotone sequence number within the epoch.
    pub seq: u64,
}

impl WireEncode for Heartbeat {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.epoch);
        w.put_u64(self.seq);
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl WireDecode for Heartbeat {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Heartbeat { epoch: r.take_u64()?, seq: r.take_u64()? })
    }
}

/// A leader-election proposal: the gossip-aggregated maximum wins
/// (paper §IV-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionBallot {
    /// The epoch being elected (`current epoch + 1`).
    pub round: u64,
    /// The proposed value (hash of the proposer's identifier).
    pub value: u64,
    /// The proposer.
    pub node: NodeId,
    /// The proposer's serialized public key (to verify the eventual new
    /// group key announcement).
    pub key: Vec<u8>,
}

impl WireEncode for ElectionBallot {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.round);
        w.put_u64(self.value);
        w.put(&self.node);
        w.put_bytes(&self.key);
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + bytes_len(&self.key)
    }
}

impl WireDecode for ElectionBallot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ElectionBallot {
            round: r.take_u64()?,
            value: r.take_u64()?,
            node: r.take()?,
            key: r.take_bytes()?.to_vec(),
        })
    }
}

/// Announcement of a freshly elected leader's new group public key,
/// "signed by their identity" (paper §IV-A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewKeyAnnouncement {
    /// The new leadership epoch.
    pub epoch: u64,
    /// The new group public key, serialized.
    pub group_key: Vec<u8>,
    /// The elected leader.
    pub signer: NodeId,
    /// The leader's serialized identity key.
    pub signer_key: Vec<u8>,
    /// Signature by the leader's identity key over `epoch ‖ group_key`.
    pub signature: Vec<u8>,
}

impl NewKeyAnnouncement {
    /// The signed message.
    pub fn message(epoch: u64, group_key: &[u8]) -> Vec<u8> {
        let mut m = b"whisper-newkey".to_vec();
        m.extend_from_slice(&epoch.to_be_bytes());
        m.extend_from_slice(group_key);
        m
    }

    /// Verifies the announcement's signature and well-formedness.
    pub fn verify(&self) -> Option<PublicKey> {
        let signer_key = PublicKey::from_bytes(&self.signer_key)?;
        let group_key = PublicKey::from_bytes(&self.group_key)?;
        signer_key
            .verify(&Self::message(self.epoch, &self.group_key), &self.signature)
            .ok()?;
        Some(group_key)
    }
}

impl WireEncode for NewKeyAnnouncement {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.epoch);
        w.put_bytes(&self.group_key);
        w.put(&self.signer);
        w.put_bytes(&self.signer_key);
        w.put_bytes(&self.signature);
    }

    fn encoded_len(&self) -> usize {
        8 + bytes_len(&self.group_key) + 8 + bytes_len(&self.signer_key) + bytes_len(&self.signature)
    }
}

impl WireDecode for NewKeyAnnouncement {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NewKeyAnnouncement {
            epoch: r.take_u64()?,
            group_key: r.take_bytes()?.to_vec(),
            signer: r.take()?,
            signer_key: r.take_bytes()?.to_vec(),
            signature: r.take_bytes()?.to_vec(),
        })
    }
}

/// A PPSS message (always inside a WCL payload).
#[derive(Clone, Debug, PartialEq)]
pub enum PpssMsg {
    /// Join request presented to a leader.
    JoinReq {
        /// Target group.
        group: GroupId,
        /// Signed accreditation.
        accreditation: Vec<u8>,
        /// The applicant's own entry (so the leader can answer over WCL).
        entry: PrivateEntry,
    },
    /// Leader's acceptance.
    JoinAck {
        /// Target group.
        group: GroupId,
        /// The new member's passport.
        passport: Passport,
        /// Serialized group key history, oldest first (last = current).
        key_history: Vec<Vec<u8>>,
        /// Bootstrap entries for the private view.
        entries: Vec<PrivateEntry>,
    },
    /// Private view exchange (request or response).
    Exchange {
        /// Target group.
        group: GroupId,
        /// Sender's passport.
        passport: Passport,
        /// Sender's fresh entry (also the reply address for requests).
        /// Boxed to keep the enum's in-memory footprint close to the
        /// other variants (clippy: `large_enum_variant`); the wire
        /// format is unchanged.
        from_entry: Box<PrivateEntry>,
        /// Shipped view subset.
        entries: Vec<PrivateEntry>,
        /// Correlates responses with requests (the requester's WCL
        /// message id, echoed back).
        exchange_id: u64,
        /// `false` for requests, `true` for responses.
        is_response: bool,
        /// Leader liveness gossip.
        hb: Heartbeat,
        /// Ongoing election ballot, if any.
        election: Option<ElectionBallot>,
        /// Latest group-key change announcement, if any.
        new_key: Option<NewKeyAnnouncement>,
        /// Membership anti-entropy: the sender's most recent admission
        /// dots (capped). Descriptors only carry bounded deltas, so
        /// member-to-member exchanges are what guarantees the OR-set
        /// converges — a late joiner learns old admissions from the
        /// peers it gossips with, not from the (latest-only) descriptor.
        member_adds: Vec<MemberDot>,
        /// The sender's most recent removal dots (capped).
        member_removes: Vec<MemberDot>,
    },
    /// Application payload between group members.
    AppData {
        /// Target group.
        group: GroupId,
        /// Sender's passport.
        passport: Passport,
        /// Opaque application bytes.
        data: Vec<u8>,
        /// Optionally, the sender's entry so the receiver can reply with a
        /// single WCL path (the T-Chord pattern of §V-G).
        reply_entry: Option<PrivateEntry>,
    },
    /// Persistent-path refresh (paper §IV-C): updates the stored entry
    /// (and therefore the Π gateway P-nodes) for a PCP member.
    PcpRefresh {
        /// Target group.
        group: GroupId,
        /// Sender's passport.
        passport: Passport,
        /// The sender's fresh entry.
        entry: PrivateEntry,
        /// Whether the receiver should answer with its own fresh entry.
        respond: bool,
    },
}

const TAG_JOIN_REQ: u8 = 1;
const TAG_JOIN_ACK: u8 = 2;
const TAG_EXCHANGE: u8 = 3;
const TAG_APP_DATA: u8 = 4;
const TAG_PCP_REFRESH: u8 = 5;

impl WireEncode for PpssMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            PpssMsg::JoinReq { group, accreditation, entry } => {
                w.put_u8(TAG_JOIN_REQ);
                w.put(group);
                w.put_bytes(accreditation);
                w.put(entry);
            }
            PpssMsg::JoinAck { group, passport, key_history, entries } => {
                w.put_u8(TAG_JOIN_ACK);
                w.put(group);
                w.put(passport);
                w.put_seq(key_history);
                w.put_seq(entries);
            }
            PpssMsg::Exchange {
                group,
                passport,
                from_entry,
                entries,
                exchange_id,
                is_response,
                hb,
                election,
                new_key,
                member_adds,
                member_removes,
            } => {
                w.put_u8(TAG_EXCHANGE);
                w.put(group);
                w.put(passport);
                w.put(from_entry.as_ref());
                w.put_seq(entries);
                w.put_u64(*exchange_id);
                w.put(is_response);
                w.put(hb);
                w.put_opt(election);
                w.put_opt(new_key);
                w.put_seq(member_adds);
                w.put_seq(member_removes);
            }
            PpssMsg::AppData { group, passport, data, reply_entry } => {
                w.put_u8(TAG_APP_DATA);
                w.put(group);
                w.put(passport);
                w.put_bytes(data);
                w.put_opt(reply_entry);
            }
            PpssMsg::PcpRefresh { group, passport, entry, respond } => {
                w.put_u8(TAG_PCP_REFRESH);
                w.put(group);
                w.put(passport);
                w.put(entry);
                w.put(respond);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            PpssMsg::JoinReq { group, accreditation, entry } => {
                group.encoded_len() + bytes_len(accreditation) + entry.encoded_len()
            }
            PpssMsg::JoinAck { group, passport, key_history, entries } => {
                group.encoded_len()
                    + passport.encoded_len()
                    + seq_len(key_history)
                    + seq_len(entries)
            }
            PpssMsg::Exchange {
                group,
                passport,
                from_entry,
                entries,
                hb,
                election,
                new_key,
                member_adds,
                member_removes,
                ..
            } => {
                group.encoded_len()
                    + passport.encoded_len()
                    + from_entry.encoded_len()
                    + seq_len(entries)
                    + 8 // exchange_id
                    + 1 // is_response
                    + hb.encoded_len()
                    + opt_len(election)
                    + opt_len(new_key)
                    + seq_len(member_adds)
                    + seq_len(member_removes)
            }
            PpssMsg::AppData { group, passport, data, reply_entry } => {
                group.encoded_len() + passport.encoded_len() + bytes_len(data) + opt_len(reply_entry)
            }
            PpssMsg::PcpRefresh { group, passport, entry, .. } => {
                group.encoded_len() + passport.encoded_len() + entry.encoded_len() + 1
            }
        }
    }
}

impl WireDecode for PpssMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            TAG_JOIN_REQ => PpssMsg::JoinReq {
                group: r.take()?,
                accreditation: r.take_bytes()?.to_vec(),
                entry: r.take()?,
            },
            TAG_JOIN_ACK => PpssMsg::JoinAck {
                group: r.take()?,
                passport: r.take()?,
                key_history: r.take_seq()?,
                entries: r.take_seq()?,
            },
            TAG_EXCHANGE => PpssMsg::Exchange {
                group: r.take()?,
                passport: r.take()?,
                from_entry: Box::new(r.take()?),
                entries: r.take_seq()?,
                exchange_id: r.take_u64()?,
                is_response: r.take()?,
                hb: r.take()?,
                election: r.take_opt()?,
                new_key: r.take_opt()?,
                member_adds: r.take_seq()?,
                member_removes: r.take_seq()?,
            },
            TAG_APP_DATA => PpssMsg::AppData {
                group: r.take()?,
                passport: r.take()?,
                data: r.take_bytes()?.to_vec(),
                reply_entry: r.take_opt()?,
            },
            TAG_PCP_REFRESH => PpssMsg::PcpRefresh {
                group: r.take()?,
                passport: r.take()?,
                entry: r.take()?,
                respond: r.take()?,
            },
            _ => return Err(WireError::new("unknown PPSS message tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;
    use whisper_crypto::rsa::{KeyPair, RsaKeySize};

    fn key() -> PublicKey {
        KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(3))
            .public()
            .clone()
    }

    fn entry(node: u64) -> PrivateEntry {
        PrivateEntry {
            node: NodeId(node),
            age: 1,
            public: false,
            key: key(),
            gateways: vec![GatewayInfo { node: NodeId(100), key: key() }],
        }
    }

    fn round_trip(msg: PpssMsg) {
        let bytes = msg.to_wire();
        assert_eq!(PpssMsg::from_wire(&bytes).unwrap(), msg);
    }

    #[test]
    fn private_entry_round_trip() {
        let e = entry(5);
        assert_eq!(PrivateEntry::from_wire(&e.to_wire()).unwrap(), e);
        let d = e.dest_info();
        assert_eq!(d.node, e.node);
        assert_eq!(d.gateways.len(), 1);
    }

    #[test]
    fn all_messages_round_trip() {
        let passport = Passport { node: NodeId(1), signature: vec![9; 48] };
        round_trip(PpssMsg::JoinReq {
            group: GroupId(7),
            accreditation: vec![1, 2],
            entry: entry(1),
        });
        round_trip(PpssMsg::JoinAck {
            group: GroupId(7),
            passport: passport.clone(),
            key_history: vec![vec![1], vec![2, 3]],
            entries: vec![entry(2), entry(3)],
        });
        round_trip(PpssMsg::Exchange {
            group: GroupId(7),
            passport: passport.clone(),
            from_entry: Box::new(entry(1)),
            entries: vec![entry(4)],
            exchange_id: 99,
            is_response: true,
            hb: Heartbeat { epoch: 2, seq: 17 },
            election: Some(ElectionBallot {
                round: 3,
                value: 42,
                node: NodeId(5),
                key: vec![7; 10],
            }),
            new_key: None,
            member_adds: vec![MemberDot { node: NodeId(4), epoch: 1, counter: 2 }],
            member_removes: vec![],
        });
        round_trip(PpssMsg::AppData {
            group: GroupId(7),
            passport: passport.clone(),
            data: vec![0; 256],
            reply_entry: Some(entry(1)),
        });
        round_trip(PpssMsg::PcpRefresh {
            group: GroupId(7),
            passport,
            entry: entry(1),
            respond: true,
        });
    }

    #[test]
    fn new_key_announcement_verification() {
        let mut rng = StdRng::seed_from_u64(4);
        let leader_identity = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let new_group = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let group_key = new_group.public().to_bytes();
        let ann = NewKeyAnnouncement {
            epoch: 2,
            signature: leader_identity.sign(&NewKeyAnnouncement::message(2, &group_key)),
            group_key,
            signer: NodeId(5),
            signer_key: leader_identity.public().to_bytes(),
        };
        assert_eq!(ann.verify().as_ref(), Some(new_group.public()));
        // Tampered epoch fails.
        let mut bad = ann.clone();
        bad.epoch = 3;
        assert!(bad.verify().is_none());
        // Tampered key fails.
        let mut bad = ann;
        bad.group_key = leader_identity.public().to_bytes();
        assert!(bad.verify().is_none());
    }

    #[test]
    fn garbage_rejected() {
        assert!(PpssMsg::from_wire(&[0xEE]).is_err());
        assert!(PrivateEntry::from_wire(&[1, 2, 3]).is_err());
    }
}
