//! The private peer sampling service (paper §IV).
//!
//! One [`Ppss`] instance manages all the private groups a node belongs
//! to; every group is handled independently (a node never discloses one
//! group's membership to another group's members). All PPSS traffic —
//! join handshakes, private view exchanges, application data, persistent
//! path refreshes — travels through WCL onion routes, so neither content
//! nor the fact that two members talk is visible to outsiders.

pub mod descriptor;
pub mod election;
pub mod group;
pub mod journal;
pub mod messages;

use crate::wcl::{GatewayInfo, Wcl};
use descriptor::{GroupDescriptor, MemberDot, Membership, DELTA_DOTS};
use election::{ElectionOutcome, LeaderTracker};
use group::{issue_accreditation, verify_accreditation, GroupId, Invitation, Passport};
use journal::Journal;
pub use messages::PrivateEntry;
use messages::{ElectionBallot, Heartbeat, NewKeyAnnouncement, PpssMsg};
use whisper_rand::Rng;
use std::collections::{BTreeSet, HashMap};
use whisper_crypto::rsa::{KeyPair, PublicKey};
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration};
use whisper_pss::NylonCore;

/// Timer token: the PPSS gossip cycle (all groups share one timer).
pub const TIMER_PPSS_CYCLE: u64 = 5;
/// Timer token: persistent-connection-pool refresh.
pub const TIMER_PCP_REFRESH: u64 = 6;

/// PPSS configuration.
#[derive(Clone, Debug)]
pub struct PpssConfig {
    /// Private view size per group.
    ///
    /// Must be strictly larger than `gossip_len`: when every exchange
    /// ships the whole view, age-0 copies of a *dead* member's entry
    /// replicate faster than holders age them (each transfer duplicates
    /// the freshest copy), and views freeze at an all-fresh fixed point
    /// in which failed nodes are never pruned. Shipping a strict subset
    /// keeps the duplication rate below the aging rate, which is exactly
    /// why the classic PSS exchanges `c/2` of `c` entries.
    pub view_size: usize,
    /// Entries shipped per exchange (paper: 5).
    pub gossip_len: usize,
    /// PPSS cycle period (paper: 1 minute).
    pub cycle: SimDuration,
    /// Π — gateways advertised per NATted member (paper: 3).
    pub gateways: usize,
    /// PCP refresh period (lower frequency than gossip; bounded by the
    /// NAT association lease).
    pub pcp_refresh: SimDuration,
    /// Heartbeat-silent cycles before a leader election starts.
    pub hb_miss_threshold: u64,
    /// Aggregation cycles before an election round is decided.
    pub election_cycles: u64,
}

impl PpssConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `gossip_len >= view_size` (see `view_size` docs: a
    /// full-view exchange breaks failure pruning).
    pub fn validate(&self) {
        assert!(
            self.gossip_len < self.view_size,
            "PPSS gossip_len must be smaller than view_size"
        );
    }
}

impl Default for PpssConfig {
    fn default() -> Self {
        PpssConfig {
            view_size: 8,
            gossip_len: 5,
            cycle: SimDuration::from_secs(60),
            gateways: 3,
            pcp_refresh: SimDuration::from_secs(120),
            hb_miss_threshold: 4,
            election_cycles: 3,
        }
    }
}

/// Upcalls from the PPSS.
#[derive(Clone, Debug, PartialEq)]
pub enum PpssEvent {
    /// The join handshake for `group` completed; the node is a member.
    Joined {
        /// The group.
        group: GroupId,
    },
    /// The private view of `group` changed.
    ViewUpdated {
        /// The group.
        group: GroupId,
    },
    /// Application data from a fellow group member.
    AppMessage {
        /// The group.
        group: GroupId,
        /// The authenticated sender (passport-verified).
        from: NodeId,
        /// Application bytes.
        data: Vec<u8>,
        /// The sender's entry, when it shipped one for replies.
        reply_entry: Option<PrivateEntry>,
    },
    /// A member could not be reached over any WCL route and was dropped
    /// from the private view.
    MemberUnreachable {
        /// The group.
        group: GroupId,
        /// The dropped member.
        node: NodeId,
    },
    /// This node won a leader election.
    BecameLeader {
        /// The group.
        group: GroupId,
        /// The new leadership epoch.
        epoch: u64,
    },
    /// A verified deletion descriptor arrived (or this node deleted the
    /// group locally): all group state is gone, and the tombstone makes
    /// re-joining or re-creating the group impossible forever.
    GroupDeleted {
        /// The deleted group.
        group: GroupId,
    },
}

/// State of one group membership.
pub struct GroupState {
    /// Group key history, oldest first; the last entry is current.
    key_history: Vec<PublicKey>,
    /// The group private key (leaders only).
    leader_key: Option<KeyPair>,
    /// Our passport.
    passport: Passport,
    /// The private view.
    view: Vec<PrivateEntry>,
    /// Persistent connection pool: entries kept fresh independently of
    /// the view.
    pcp: HashMap<NodeId, PrivateEntry>,
    /// Leader liveness / election state.
    tracker: LeaderTracker,
    /// Outstanding exchange: (partner, WCL msg id).
    outstanding: Option<(NodeId, u64)>,
    /// Latest verified key announcement, piggybacked for dissemination.
    latest_announcement: Option<NewKeyAnnouncement>,
    /// Accumulated membership OR-set, grown from descriptor deltas.
    membership: Membership,
    /// Latest verified descriptor under the epoch-dominated LWW order.
    latest_descriptor: Option<GroupDescriptor>,
    /// Publish sequence of the last descriptor this node signed.
    desc_seq: u64,
    /// Next admission counter (leaders; makes membership dots unique).
    next_dot: u64,
    /// Durable state changed since the last descriptor publish (leader).
    dirty: bool,
}

impl GroupState {
    /// The current private view.
    pub fn view(&self) -> &[PrivateEntry] {
        &self.view
    }

    /// Whether this node holds the group private key.
    pub fn is_leader(&self) -> bool {
        self.leader_key.is_some()
    }

    /// The group key history (oldest first).
    pub fn key_history(&self) -> &[PublicKey] {
        &self.key_history
    }

    /// The persistent connection pool entries.
    pub fn pcp(&self) -> &HashMap<NodeId, PrivateEntry> {
        &self.pcp
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.tracker.epoch
    }

    /// The accumulated membership OR-set.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The latest verified group descriptor, if any arrived or was
    /// published yet.
    pub fn latest_descriptor(&self) -> Option<&GroupDescriptor> {
        self.latest_descriptor.as_ref()
    }

    fn current_key(&self) -> &PublicKey {
        self.key_history.last().expect("non-empty history")
    }

    fn merge_entries(&mut self, me: NodeId, entries: Vec<PrivateEntry>, cap: usize) {
        for entry in entries {
            if entry.node == me {
                continue;
            }
            match self.view.iter_mut().find(|e| e.node == entry.node) {
                Some(existing) => {
                    if entry.age <= existing.age {
                        *existing = entry;
                    }
                }
                None => self.view.push(entry),
            }
        }
        self.view.sort_by_key(|e| (e.age, e.node));
        self.view.truncate(cap);
    }
}

impl GroupState {
    /// A freshly initialised group state (no descriptor seen yet).
    fn fresh(
        key_history: Vec<PublicKey>,
        leader_key: Option<KeyPair>,
        passport: Passport,
        tracker: LeaderTracker,
    ) -> GroupState {
        GroupState {
            key_history,
            leader_key,
            passport,
            view: Vec::new(),
            pcp: HashMap::new(),
            tracker,
            outstanding: None,
            latest_announcement: None,
            membership: Membership::new(),
            latest_descriptor: None,
            desc_seq: 0,
            next_dot: 0,
            dirty: false,
        }
    }
}

// --------------------------------------------------------------------
// Journal records
// --------------------------------------------------------------------

/// Journal size that triggers a compaction (rewrite as one snapshot per
/// group). Snapshots are a few hundred bytes, so this keeps the "disk"
/// a handful of records deep without compacting on every append.
const JOURNAL_COMPACT_BYTES: usize = 128 * 1024;

/// Admission/removal dots piggybacked on each member-to-member exchange.
/// Descriptors carry only [`DELTA_DOTS`]-sized deltas, so these pairwise
/// merges are what make the membership OR-set converge: a late joiner
/// learns old admissions from the members it gossips with. The cap keeps
/// exchanges bounded; groups larger than this still converge, just over
/// more cycles (each exchange ships the newest dots, older ones arrive
/// transitively from peers that already hold them).
const EXCHANGE_DOTS: usize = 64;

/// Record tag: a full durable snapshot of one group.
const REC_GROUP: u8 = 1;
/// Record tag: the group was deleted; sticky forever.
const REC_TOMBSTONE: u8 = 2;
/// Record tag: a join handshake was started from an invitation.
const REC_PENDING: u8 = 3;

/// Serializes the durable slice of one group's state: everything a node
/// must still know after losing RAM — keys, passport, epoch, membership
/// dots, the latest descriptor and a contact cache to re-bootstrap the
/// private view from. Volatile state (in-flight exchanges, the PCP
/// freshness, announcements) is deliberately absent.
fn encode_group_record(group: GroupId, state: &GroupState) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REC_GROUP);
    w.put(&group);
    let keys: Vec<Vec<u8>> = state.key_history.iter().map(|k| k.to_bytes()).collect();
    w.put_seq(&keys);
    w.put_opt(&state.leader_key.as_ref().map(|k| k.to_bytes()));
    w.put(&state.passport);
    w.put_u64(state.tracker.epoch);
    w.put_u64(state.desc_seq);
    w.put_u64(state.next_dot);
    w.put_opt(&state.latest_descriptor);
    let (adds, removes) = state.membership.dots();
    w.put_seq(&adds);
    w.put_seq(&removes);
    // Contact cache: the private view plus PCP at checkpoint time,
    // sorted so the record bytes are independent of HashMap order.
    let mut contacts: Vec<PrivateEntry> = state.view.clone();
    for e in state.pcp.values() {
        if !contacts.iter().any(|c| c.node == e.node) {
            contacts.push(e.clone());
        }
    }
    contacts.sort_by_key(|e| e.node);
    w.put_seq(&contacts);
    w.into_bytes()
}

fn encode_tombstone_record(group: GroupId) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REC_TOMBSTONE);
    w.put(&group);
    w.into_bytes()
}

fn encode_pending_record(group: GroupId, invitation: &Invitation) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REC_PENDING);
    w.put(&group);
    w.put_bytes(&invitation.group_key.to_bytes());
    w.put_bytes(&invitation.accreditation);
    w.put(&invitation.entry_point);
    w.into_bytes()
}

/// A pending join: retried every cycle until the ack arrives.
struct PendingJoin {
    invitation: Invitation,
    msg_id: Option<u64>,
}

/// The private peer sampling service of one node.
pub struct Ppss {
    cfg: PpssConfig,
    groups: HashMap<GroupId, GroupState>,
    pending_joins: HashMap<GroupId, PendingJoin>,
    started: bool,
    cycles_run: u64,
    /// The node's "disk": every durable group change is appended here,
    /// and [`Ppss::on_restart`] rebuilds the group table *only* from a
    /// replay of it.
    journal: Journal,
    /// Groups whose deletion this node has verified. Sticky: nothing in
    /// here can ever be joined, re-created or gossiped about again.
    deleted: BTreeSet<GroupId>,
}

impl std::fmt::Debug for Ppss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ppss").field("groups", &self.groups.len()).finish()
    }
}

impl Ppss {
    /// Creates an empty PPSS.
    pub fn new(cfg: PpssConfig) -> Self {
        Ppss {
            cfg,
            groups: HashMap::new(),
            pending_joins: HashMap::new(),
            started: false,
            cycles_run: 0,
            journal: Journal::new(),
            deleted: BTreeSet::new(),
        }
    }

    /// Number of PPSS cycles this node has run (diagnostics).
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The configuration.
    pub fn config(&self) -> &PpssConfig {
        &self.cfg
    }

    /// Groups this node belongs to, sorted (deterministic).
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The state of `group`, if this node is a member.
    pub fn group(&self, group: GroupId) -> Option<&GroupState> {
        self.groups.get(&group)
    }

    /// The group journal (the node's durable "disk").
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Mutable journal access — exists so fault-injection tests can
    /// truncate tails and flip bits the way real storage does.
    pub fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Whether this node has verified the deletion of `group`.
    pub fn is_deleted(&self, group: GroupId) -> bool {
        self.deleted.contains(&group)
    }

    /// Must be called once at node start: arms the cycle timers.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.cfg.validate();
        if self.started {
            return;
        }
        self.started = true;
        let offset =
            SimDuration::from_micros(ctx.rng().gen_range(0..self.cfg.cycle.as_micros().max(1)));
        ctx.set_timer(offset, TIMER_PPSS_CYCLE);
        ctx.set_timer(self.cfg.pcp_refresh, TIMER_PCP_REFRESH);
    }

    /// Builds this node's fresh private-view entry: identity key plus Π
    /// gateway P-nodes drawn from the Nylon connection backlog.
    pub fn my_entry(&self, nylon: &NylonCore) -> PrivateEntry {
        let public = nylon.is_public();
        let gateways = if public {
            Vec::new()
        } else {
            nylon
                .cb()
                .publics()
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .take(self.cfg.gateways)
                .collect()
        };
        PrivateEntry {
            node: nylon.id(),
            age: 0,
            public,
            key: nylon.keypair().public().clone(),
            gateways,
        }
    }

    // ----------------------------------------------------------------
    // Group management API (the `createGroup` / `joinGroup` /
    // `authorizeJoin` interface of Fig. 1)
    // ----------------------------------------------------------------

    /// Creates a new private group with this node as its leader.
    ///
    /// # Panics
    ///
    /// Panics if the node already belongs to a group with this name.
    /// # Panics
    ///
    /// Also panics if a group with this name was deleted: the tombstone
    /// is sticky, so the name can never be reused (resurrection is
    /// impossible by construction).
    pub fn create_group(&mut self, ctx: &mut Ctx<'_>, nylon: &NylonCore, name: &str) -> GroupId {
        let id = GroupId::from_name(name);
        assert!(!self.groups.contains_key(&id), "already a member of {name:?}");
        assert!(!self.deleted.contains(&id), "group {name:?} was deleted; tombstones are forever");
        let group_key = KeyPair::generate(nylon.config().rsa, ctx.rng());
        let passport = Passport::issue(&group_key, id, nylon.id());
        let mut tracker = LeaderTracker::new();
        tracker.beat();
        let mut state =
            GroupState::fresh(vec![group_key.public().clone()], Some(group_key), passport, tracker);
        state.membership.add(MemberDot { node: nylon.id(), epoch: 0, counter: 0 });
        state.next_dot = 1;
        state.dirty = true;
        self.groups.insert(id, state);
        ctx.metrics().count("ppss.groups_created", 1);
        self.journal_group(id);
        id
    }

    /// Issues an invitation for `invitee` (leader operation; the
    /// `authorizeJoin` API).
    ///
    /// Returns `None` if this node is not a leader of `group`.
    pub fn invite(
        &self,
        nylon: &NylonCore,
        group: GroupId,
        invitee: NodeId,
    ) -> Option<Invitation> {
        let state = self.groups.get(&group)?;
        let leader_key = state.leader_key.as_ref()?;
        Some(Invitation {
            group,
            group_key: state.current_key().clone(),
            accreditation: issue_accreditation(leader_key, group, invitee),
            entry_point: self.my_entry(nylon),
        })
    }

    /// Starts the join handshake using an out-of-band invitation. The
    /// request is retried every PPSS cycle until the leader answers.
    pub fn join_group(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        invitation: Invitation,
    ) {
        let group = invitation.group;
        if self.groups.contains_key(&group) {
            return;
        }
        if self.deleted.contains(&group) {
            // The invitation outlived the group; the tombstone wins.
            ctx.metrics().count("ppss.resurrection_blocked", 1);
            return;
        }
        self.journal.append(&encode_pending_record(group, &invitation));
        self.pending_joins
            .insert(group, PendingJoin { invitation, msg_id: None });
        self.try_pending_join(ctx, nylon, wcl, group);
    }

    fn try_pending_join(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
    ) {
        let entry = self.my_entry(nylon);
        let Some(pending) = self.pending_joins.get_mut(&group) else {
            return;
        };
        if pending.msg_id.is_some_and(|id| wcl.is_pending(id)) {
            return; // a request is still in flight
        }
        let msg = PpssMsg::JoinReq {
            group,
            accreditation: pending.invitation.accreditation.clone(),
            entry,
        };
        let msg_id = wcl.alloc_msg_id();
        pending.msg_id = Some(msg_id);
        let dest = pending.invitation.entry_point.dest_info();
        ctx.metrics().count("ppss.join_attempts", 1);
        wcl.send(ctx, nylon, &dest, msg.to_wire(), msg_id);
    }

    /// Adds `node` (taken from the private view) to the persistent
    /// connection pool of `group`. Returns `false` if unknown.
    pub fn make_persistent(&mut self, group: GroupId, node: NodeId) -> bool {
        let Some(state) = self.groups.get_mut(&group) else {
            return false;
        };
        let Some(entry) = state.view.iter().find(|e| e.node == node).cloned() else {
            return false;
        };
        state.pcp.insert(node, entry);
        true
    }

    /// Deletes `group` (leader operation): publishes a signed deletion
    /// tombstone into the relay-level descriptor store, journals the
    /// tombstone, and drops all local group state. Returns the events to
    /// dispatch, or `None` if this node is not a leader of the group.
    ///
    /// Deletion is permanent by construction: the tombstone descriptor
    /// pins the relay LWW maximum (no stale descriptor can displace it),
    /// every member that verifies it destroys its state the same way,
    /// and the local tombstone set blocks joins and re-creation forever.
    pub fn delete_group(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        group: GroupId,
    ) -> Option<Vec<PpssEvent>> {
        let state = self.groups.get_mut(&group)?;
        let leader_key = state.leader_key.as_ref()?;
        state.desc_seq += 1;
        let tomb = GroupDescriptor::sign(
            leader_key,
            group,
            state.tracker.epoch,
            state.desc_seq,
            &state.key_history,
            true,
            Vec::new(),
            Vec::new(),
            ctx.now().as_micros(),
        );
        nylon.publish_descriptor(group.0, tomb.version(), &tomb.to_wire());
        self.groups.remove(&group);
        self.pending_joins.remove(&group);
        self.deleted.insert(group);
        self.journal.append(&encode_tombstone_record(group));
        ctx.metrics().count("ppss.groups_deleted", 1);
        Some(vec![PpssEvent::GroupDeleted { group }])
    }

    /// Revokes `node`'s membership (leader operation): tombstones its
    /// admission dots in the OR-set — the revocation travels in the next
    /// published descriptor — and drops it from the view and PCP.
    /// Returns `false` when not a leader or `node` had no live dots.
    pub fn remove_member(&mut self, group: GroupId, node: NodeId) -> bool {
        let Some(state) = self.groups.get_mut(&group) else {
            return false;
        };
        if state.leader_key.is_none() {
            return false;
        }
        let revoked = state.membership.remove(node);
        if revoked.is_empty() {
            return false;
        }
        state.view.retain(|e| e.node != node);
        state.pcp.remove(&node);
        state.dirty = true;
        self.journal_group(group);
        true
    }

    /// Sends application bytes to a group member over a WCL route,
    /// optionally shipping our entry so the member can reply directly.
    ///
    /// Returns `false` when the target is not in the view/PCP or no route
    /// could be built.
    #[allow(clippy::too_many_arguments)]
    pub fn send_app(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let Some(state) = self.groups.get(&group) else {
            return false;
        };
        let Some(entry) = state
            .pcp
            .get(&to)
            .or_else(|| state.view.iter().find(|e| e.node == to))
        else {
            return false;
        };
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        wcl.send_untracked(ctx, nylon, &entry.dest_info(), &msg.to_wire())
    }

    /// Like [`Ppss::send_app`], but tracked through the WCL retry
    /// machinery: on success returns the message id, which the caller
    /// must resolve via [`Wcl::notify_response`] once the application's
    /// answer arrives (request/response apps and the chaos harness use
    /// this to measure end-to-end delivery).
    #[allow(clippy::too_many_arguments)]
    pub fn send_app_tracked(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> Option<u64> {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let state = self.groups.get(&group)?;
        let entry = state
            .pcp
            .get(&to)
            .or_else(|| state.view.iter().find(|e| e.node == to))?;
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        let msg_id = wcl.alloc_msg_id();
        wcl.send(ctx, nylon, &entry.dest_info(), msg.to_wire(), msg_id)
            .then_some(msg_id)
    }

    /// Sends application bytes to an explicit entry (e.g. one shipped in
    /// a query for the reply, the §V-G T-Chord pattern).
    #[allow(clippy::too_many_arguments)]
    pub fn send_app_to_entry(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: &PrivateEntry,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let Some(state) = self.groups.get(&group) else {
            return false;
        };
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        wcl.send_untracked(ctx, nylon, &to.dest_info(), &msg.to_wire())
    }

    // ----------------------------------------------------------------
    // Timers
    // ----------------------------------------------------------------

    /// Runs one PPSS cycle for every group; re-arms the timer.
    pub fn on_cycle(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
    ) -> Vec<PpssEvent> {
        let mut events = Vec::new();
        let mut to_journal: Vec<GroupId> = Vec::new();
        self.cycles_run += 1;
        ctx.set_timer(self.cfg.cycle, TIMER_PPSS_CYCLE);
        // Retry pending joins.
        let pending: Vec<GroupId> = self.pending_joins.keys().copied().collect();
        for group in pending {
            self.try_pending_join(ctx, nylon, wcl, group);
        }
        let my_entry = self.my_entry(nylon);
        let me = nylon.id();
        let my_key_bytes = nylon.keypair().public().to_bytes();
        let groups: Vec<GroupId> = self.group_ids();
        for group in groups {
            let cfg = self.cfg.clone();
            let state = self.groups.get_mut(&group).expect("listed");
            // Leader heartbeats / member election bookkeeping.
            if state.is_leader() {
                state.tracker.beat();
            } else {
                match state.tracker.on_cycle(
                    me,
                    my_key_bytes.clone(),
                    cfg.hb_miss_threshold,
                    cfg.election_cycles,
                ) {
                    ElectionOutcome::Won { epoch } => {
                        let new_key = KeyPair::generate(nylon.config().rsa, ctx.rng());
                        let group_key = new_key.public().to_bytes();
                        let ann = NewKeyAnnouncement {
                            epoch,
                            signature: nylon
                                .keypair()
                                .sign(&NewKeyAnnouncement::message(epoch, &group_key)),
                            group_key,
                            signer: me,
                            signer_key: my_key_bytes.clone(),
                        };
                        state.key_history.push(new_key.public().clone());
                        // Keep the old passport: it stays valid through
                        // the key history, and members that have not yet
                        // learned the new key would reject a new-key
                        // passport — and with it, the announcement itself.
                        state.leader_key = Some(new_key);
                        state.latest_announcement = Some(ann);
                        state.dirty = true;
                        to_journal.push(group);
                        ctx.metrics().count("ppss.elections_won", 1);
                        events.push(PpssEvent::BecameLeader { group, epoch });
                    }
                    ElectionOutcome::Idle => {}
                }
            }
            // Leaders publish a fresh signed descriptor whenever durable
            // state changed (admissions, revocations, epoch/key changes)
            // — and once at group birth so even an unchanged group has a
            // descriptor circulating.
            if state.is_leader() && (state.dirty || state.latest_descriptor.is_none()) {
                state.desc_seq += 1;
                let (adds, removes) = state.membership.recent_dots(DELTA_DOTS);
                let key = state.leader_key.as_ref().expect("leader");
                let desc = GroupDescriptor::sign(
                    key,
                    group,
                    state.tracker.epoch,
                    state.desc_seq,
                    &state.key_history,
                    false,
                    adds,
                    removes,
                    ctx.now().as_micros(),
                );
                state.latest_descriptor = Some(desc);
                state.dirty = false;
                ctx.metrics().count("ppss.desc_published", 1);
                to_journal.push(group);
            }
            // Every member re-offers its latest verified descriptor to
            // the relay store each cycle. The store itself is volatile
            // (a restarted relay loses it), so the members are the
            // durable root the deterministic anti-entropy repair grows
            // back from.
            if let Some(desc) = &state.latest_descriptor {
                nylon.publish_descriptor(group.0, desc.version(), &desc.to_wire());
            }
            // Age the private view and gossip with its oldest member.
            for e in &mut state.view {
                e.age = e.age.saturating_add(1);
            }
            let Some(partner) = state
                .view
                .iter()
                .max_by_key(|e| (e.age, e.node))
                .cloned()
            else {
                continue;
            };
            let buffer = Self::build_buffer(state, &my_entry, partner.node, cfg.gossip_len, ctx);
            let (member_adds, member_removes) = state.membership.recent_dots(EXCHANGE_DOTS);
            let msg_id = wcl.alloc_msg_id();
            let msg = PpssMsg::Exchange {
                group,
                passport: state.passport.clone(),
                from_entry: Box::new(my_entry.clone()),
                entries: buffer,
                exchange_id: msg_id,
                is_response: false,
                hb: state.tracker.heartbeat(),
                election: state.tracker.ballot(),
                new_key: state.latest_announcement.clone(),
                member_adds,
                member_removes,
            };
            state.outstanding = Some((partner.node, msg_id));
            ctx.metrics().count("ppss.exchanges_initiated", 1);
            if !wcl.send(ctx, nylon, &partner.dest_info(), msg.to_wire(), msg_id) {
                // No route constructible at all (e.g. every advertised
                // gateway is gone): without this, the unreachable partner
                // would stay the oldest entry and be re-selected forever.
                state.outstanding = None;
                state.view.retain(|e| e.node != partner.node);
                state.pcp.remove(&partner.node);
                events.push(PpssEvent::MemberUnreachable { group, node: partner.node });
            }
        }
        // Periodic checkpoint: refresh every group's journaled contact
        // cache so a crash long after the last membership change still
        // restarts with recent neighbours.
        if self.cycles_run.is_multiple_of(8) {
            to_journal.extend(self.group_ids());
        }
        to_journal.sort_unstable();
        to_journal.dedup();
        for group in to_journal {
            self.journal_group(group);
        }
        events
    }

    /// Refreshes every persistent connection (paper §IV-C); re-arms the
    /// timer.
    pub fn on_pcp_refresh(&mut self, ctx: &mut Ctx<'_>, nylon: &mut NylonCore, wcl: &mut Wcl) {
        ctx.set_timer(self.cfg.pcp_refresh, TIMER_PCP_REFRESH);
        let my_entry = self.my_entry(nylon);
        let groups: Vec<GroupId> = self.group_ids();
        for group in groups {
            let state = self.groups.get_mut(&group).expect("listed");
            let targets: Vec<PrivateEntry> = state.pcp.values().cloned().collect();
            let passport = state.passport.clone();
            for target in targets {
                let msg = PpssMsg::PcpRefresh {
                    group,
                    passport: passport.clone(),
                    entry: my_entry.clone(),
                    respond: true,
                };
                ctx.metrics().count("ppss.pcp_refreshes", 1);
                wcl.send_untracked(ctx, nylon, &target.dest_info(), &msg.to_wire());
            }
        }
    }

    /// Rebuilds group state after a crash-restart — **only** from a
    /// journal replay.
    ///
    /// The in-memory group table is discarded wholesale: anything that
    /// was never journaled is lost, exactly like a process that forgot
    /// to fsync. The journal replay salvages the longest valid prefix of
    /// the "disk" (see [`journal::Journal::replay`]); a truncated tail
    /// or corrupt record is attributed to `ppss.journal_truncated` /
    /// `ppss.journal_corrupt` and everything after it is dropped.
    /// Restored groups come back with their keys, passport, epoch,
    /// membership dots, latest descriptor and a journaled contact cache
    /// as the private view; all in-flight state (outstanding exchanges,
    /// the PCP, pending announcements) is volatile and starts empty.
    pub fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        let replay_started = std::time::Instant::now();
        let recovery = self.journal.replay();
        if recovery.truncated > 0 {
            ctx.metrics().count("ppss.journal_truncated", recovery.truncated);
        }
        if recovery.corrupt > 0 {
            ctx.metrics().count("ppss.journal_corrupt", recovery.corrupt);
        }
        ctx.metrics().count("ppss.journal_replayed", recovery.records.len() as u64);
        self.groups.clear();
        self.pending_joins.clear();
        self.deleted.clear();
        for record in &recovery.records {
            if self.apply_record(record).is_err() {
                // A checksummed record that fails to parse means an
                // encoding bug, not storage damage — count it loudly.
                ctx.metrics().count("ppss.journal_bad_record", 1);
            }
        }
        ctx.metrics()
            .count("ppss.journal_groups_restored", self.groups.len() as u64);
        // Rewrite the salvaged state as a clean journal: the damaged
        // tail is gone for good, and the next crash replays from
        // exactly what this restart reconstructed.
        self.compact_journal();
        // Wall-clock recovery time; like the `wcl.*_wall_us` family it
        // is host-dependent and excluded from determinism traces.
        ctx.metrics().sample(
            "ppss.journal_replay_wall_us",
            replay_started.elapsed().as_nanos() as f64 / 1000.0,
        );
    }

    /// Folds one journaled record into the group table (replay order
    /// matters: later records win, tombstones win over everything).
    fn apply_record(&mut self, record: &[u8]) -> Result<(), WireError> {
        let mut r = WireReader::new(record);
        match r.take_u8()? {
            REC_GROUP => {
                let group: GroupId = r.take()?;
                let keys: Vec<Vec<u8>> = r.take_seq()?;
                let leader_bytes: Option<Vec<u8>> = r.take_opt()?;
                let passport: Passport = r.take()?;
                let epoch = r.take_u64()?;
                let desc_seq = r.take_u64()?;
                let next_dot = r.take_u64()?;
                let latest_descriptor: Option<GroupDescriptor> = r.take_opt()?;
                let adds: Vec<MemberDot> = r.take_seq()?;
                let removes: Vec<MemberDot> = r.take_seq()?;
                let contacts: Vec<PrivateEntry> = r.take_seq()?;
                r.finish()?;
                if self.deleted.contains(&group) {
                    return Ok(()); // a tombstone never un-deletes
                }
                let key_history: Vec<PublicKey> =
                    keys.iter().filter_map(|b| PublicKey::from_bytes(b)).collect();
                if key_history.len() != keys.len() {
                    return Err(WireError::new("journaled group key"));
                }
                let leader_key = match leader_bytes {
                    Some(b) => {
                        Some(KeyPair::from_bytes(&b).ok_or(WireError::new("journaled key pair"))?)
                    }
                    None => None,
                };
                let mut tracker = LeaderTracker::new();
                tracker.accept_new_epoch(epoch);
                if leader_key.is_some() {
                    tracker.beat();
                }
                let mut state = GroupState::fresh(key_history, leader_key, passport, tracker);
                state.membership = Membership::from_dots(adds, removes);
                state.latest_descriptor = latest_descriptor;
                state.desc_seq = desc_seq;
                state.next_dot = next_dot;
                state.view = contacts;
                // A restarted leader republishes on its next cycle so
                // the network relearns the descriptor it is the durable
                // root for.
                state.dirty = state.leader_key.is_some();
                self.pending_joins.remove(&group); // the join completed
                self.groups.insert(group, state);
            }
            REC_TOMBSTONE => {
                let group: GroupId = r.take()?;
                r.finish()?;
                self.groups.remove(&group);
                self.pending_joins.remove(&group);
                self.deleted.insert(group);
            }
            REC_PENDING => {
                let group: GroupId = r.take()?;
                let key_bytes: Vec<u8> = r.take_bytes()?.to_vec();
                let accreditation: Vec<u8> = r.take_bytes()?.to_vec();
                let entry_point: PrivateEntry = r.take()?;
                r.finish()?;
                if self.groups.contains_key(&group) || self.deleted.contains(&group) {
                    return Ok(());
                }
                let group_key =
                    PublicKey::from_bytes(&key_bytes).ok_or(WireError::new("journaled invite"))?;
                self.pending_joins.insert(
                    group,
                    PendingJoin {
                        invitation: Invitation { group, group_key, accreditation, entry_point },
                        msg_id: None,
                    },
                );
            }
            _ => return Err(WireError::new("journal record tag")),
        }
        Ok(())
    }

    /// Appends a fresh snapshot of `group` to the journal, compacting
    /// when the log has grown past the threshold.
    fn journal_group(&mut self, group: GroupId) {
        let Some(state) = self.groups.get(&group) else {
            return;
        };
        let record = encode_group_record(group, state);
        self.journal.append(&record);
        if self.journal.len_bytes() > JOURNAL_COMPACT_BYTES {
            self.compact_journal();
        }
    }

    /// Rewrites the journal as one snapshot per live group, one pending
    /// record per outstanding join and one tombstone per deleted group.
    fn compact_journal(&mut self) {
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut ids: Vec<GroupId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            records.push(encode_group_record(id, &self.groups[&id]));
        }
        let mut pending: Vec<GroupId> = self.pending_joins.keys().copied().collect();
        pending.sort_unstable();
        for id in pending {
            records.push(encode_pending_record(id, &self.pending_joins[&id].invitation));
        }
        for id in &self.deleted {
            records.push(encode_tombstone_record(*id));
        }
        self.journal.reset_with(records.iter().map(|r| r.as_slice()));
    }

    /// Handles a WCL route failure for a tracked send.
    pub fn on_route_failed(&mut self, msg_id: u64, dest: NodeId) -> Vec<PpssEvent> {
        let mut events = Vec::new();
        for (gid, state) in self.groups.iter_mut() {
            if state.outstanding == Some((dest, msg_id)) {
                state.outstanding = None;
                // The paper treats exhausted retries as destination
                // failure: drop it from the private view.
                state.view.retain(|e| e.node != dest);
                state.pcp.remove(&dest);
                events.push(PpssEvent::MemberUnreachable { group: *gid, node: dest });
            }
        }
        for pending in self.pending_joins.values_mut() {
            if pending.msg_id == Some(msg_id) {
                pending.msg_id = None; // retried next cycle
            }
        }
        events
    }

    // ----------------------------------------------------------------
    // Message handling (called for every WCL-delivered payload)
    // ----------------------------------------------------------------

    /// Processes a confidential payload delivered by the WCL. Returns
    /// `None` if it does not parse as a PPSS message.
    pub fn on_delivered(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        payload: &[u8],
    ) -> Option<Vec<PpssEvent>> {
        let msg = PpssMsg::from_wire(payload).ok()?;
        let mut events = Vec::new();
        let gid = match &msg {
            PpssMsg::JoinReq { group, .. }
            | PpssMsg::JoinAck { group, .. }
            | PpssMsg::Exchange { group, .. }
            | PpssMsg::AppData { group, .. }
            | PpssMsg::PcpRefresh { group, .. } => *group,
        };
        if self.deleted.contains(&gid) {
            // A verified tombstone outranks every message about the
            // group, including join handshakes still in flight.
            ctx.metrics().count("ppss.resurrection_blocked", 1);
            return Some(events);
        }
        match msg {
            PpssMsg::JoinReq { group, accreditation, entry } => {
                self.handle_join_req(ctx, nylon, wcl, group, accreditation, entry);
            }
            PpssMsg::JoinAck { group, passport, key_history, entries } => {
                self.handle_join_ack(ctx, nylon, group, passport, key_history, entries, &mut events);
            }
            PpssMsg::Exchange {
                group,
                passport,
                from_entry,
                entries,
                exchange_id,
                is_response,
                hb,
                election,
                new_key,
                member_adds,
                member_removes,
            } => {
                self.handle_exchange(
                    ctx, nylon, wcl, group, passport, *from_entry, entries, exchange_id,
                    is_response, hb, election, new_key, member_adds, member_removes,
                    &mut events,
                );
            }
            PpssMsg::AppData { group, passport, data, reply_entry } => {
                let Some(state) = self.groups.get(&group) else {
                    ctx.metrics().count("ppss.dropped_unknown_group", 1);
                    return Some(events);
                };
                if !passport.verify(group, &state.key_history) {
                    ctx.metrics().count("ppss.dropped_bad_passport", 1);
                    return Some(events);
                }
                events.push(PpssEvent::AppMessage {
                    group,
                    from: passport.node,
                    data,
                    reply_entry,
                });
            }
            PpssMsg::PcpRefresh { group, passport, entry, respond } => {
                let my_entry = self.my_entry(nylon);
                let Some(state) = self.groups.get_mut(&group) else {
                    return Some(events);
                };
                if !passport.verify(group, &state.key_history) || passport.node != entry.node {
                    ctx.metrics().count("ppss.dropped_bad_passport", 1);
                    return Some(events);
                }
                // Refresh wherever we hold this member.
                if state.pcp.contains_key(&entry.node) {
                    state.pcp.insert(entry.node, entry.clone());
                }
                if let Some(existing) = state.view.iter_mut().find(|e| e.node == entry.node) {
                    *existing = entry.clone();
                }
                if respond {
                    let msg = PpssMsg::PcpRefresh {
                        group,
                        passport: state.passport.clone(),
                        entry: my_entry,
                        respond: false,
                    };
                    wcl.send_untracked(ctx, nylon, &entry.dest_info(), &msg.to_wire());
                }
            }
        }
        Some(events)
    }

    fn handle_join_req(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        accreditation: Vec<u8>,
        entry: PrivateEntry,
    ) {
        let my_entry = self.my_entry(nylon);
        let cap = self.cfg.view_size;
        let me = nylon.id();
        let Some(state) = self.groups.get_mut(&group) else {
            return;
        };
        let Some(leader_key) = state.leader_key.as_ref() else {
            // Not a leader: silently ignore (never reveal membership).
            ctx.metrics().count("ppss.join_ignored_not_leader", 1);
            return;
        };
        if !verify_accreditation(&accreditation, group, entry.node, &state.key_history) {
            ctx.metrics().count("ppss.join_rejected", 1);
            return;
        }
        let passport = Passport::issue(leader_key, group, entry.node);
        // The admission gets a unique dot; it rides the next descriptor
        // so every member's OR-set learns of the join.
        let dot = MemberDot {
            node: entry.node,
            epoch: state.tracker.epoch,
            counter: state.next_dot,
        };
        state.next_dot += 1;
        state.membership.add(dot);
        state.dirty = true;
        // Seed the joiner with a slice of our view plus ourselves.
        let mut entries = vec![my_entry];
        entries.extend(state.view.iter().take(self.cfg.gossip_len).cloned());
        let ack = PpssMsg::JoinAck {
            group,
            passport,
            key_history: state.key_history.iter().map(|k| k.to_bytes()).collect(),
            entries,
        };
        state.merge_entries(me, vec![entry.clone()], cap);
        ctx.metrics().count("ppss.joins_accepted", 1);
        wcl.send_untracked(ctx, nylon, &entry.dest_info(), &ack.to_wire());
        self.journal_group(group);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_join_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        group: GroupId,
        passport: Passport,
        key_history: Vec<Vec<u8>>,
        entries: Vec<PrivateEntry>,
        events: &mut Vec<PpssEvent>,
    ) {
        let Some(pending) = self.pending_joins.get(&group) else {
            return;
        };
        let history: Vec<PublicKey> = key_history
            .iter()
            .filter_map(|b| PublicKey::from_bytes(b))
            .collect();
        // The invitation's key must appear in the history, and our new
        // passport must verify: otherwise someone is feeding us a fake
        // group.
        if !history.contains(&pending.invitation.group_key)
            || passport.node != nylon.id()
            || !passport.verify(group, &history)
        {
            ctx.metrics().count("ppss.join_ack_invalid", 1);
            return;
        }
        self.pending_joins.remove(&group);
        let mut state = GroupState::fresh(history, None, passport, LeaderTracker::new());
        state.merge_entries(nylon.id(), entries, self.cfg.view_size);
        self.groups.insert(group, state);
        ctx.metrics().count("ppss.joins_completed", 1);
        self.journal_group(group);
        events.push(PpssEvent::Joined { group });
        events.push(PpssEvent::ViewUpdated { group });
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_exchange(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        passport: Passport,
        from_entry: PrivateEntry,
        entries: Vec<PrivateEntry>,
        exchange_id: u64,
        is_response: bool,
        hb: Heartbeat,
        election: Option<ElectionBallot>,
        new_key: Option<NewKeyAnnouncement>,
        member_adds: Vec<MemberDot>,
        member_removes: Vec<MemberDot>,
        events: &mut Vec<PpssEvent>,
    ) {
        let my_entry = self.my_entry(nylon);
        let me = nylon.id();
        let cfg = self.cfg.clone();
        let Some(state) = self.groups.get_mut(&group) else {
            ctx.metrics().count("ppss.dropped_unknown_group", 1);
            return;
        };
        if !passport.verify(group, &state.key_history) || passport.node != from_entry.node {
            // Invalid passports are ignored silently (paper §IV-A): the
            // sender learns nothing about our membership.
            ctx.metrics().count("ppss.dropped_bad_passport", 1);
            return;
        }
        // Key-change announcements are processed *before* heartbeats:
        // hearing an epoch-N heartbeat must not stop us from installing
        // the epoch-N group key. Elections can produce several winners
        // (the paper allows "one or several leaders"); every validly
        // signed key for a current-or-newer epoch joins the history so
        // passports from any co-leader verify.
        let mut journal_after = false;
        if let Some(ann) = new_key {
            if ann.epoch >= state.tracker.epoch {
                if let Some(group_key) = ann.verify() {
                    if !state.key_history.contains(&group_key) {
                        state.key_history.push(group_key);
                        ctx.metrics().count("ppss.new_key_accepted", 1);
                        journal_after = true;
                    }
                    state.tracker.accept_new_epoch(ann.epoch);
                    let fresher = state
                        .latest_announcement
                        .as_ref()
                        .is_none_or(|cur| ann.epoch >= cur.epoch);
                    if fresher {
                        state.latest_announcement = Some(ann);
                    }
                }
            }
        }
        // Liveness / election gossip.
        state.tracker.observe_heartbeat(hb);
        if let Some(ballot) = election {
            state.tracker.observe_ballot(ballot);
        }
        // Membership anti-entropy: fold the peer's dots into our OR-set.
        // This, not the (latest-only, bounded-delta) descriptor, is what
        // carries old admissions to late joiners.
        if state.membership.merge(&Membership::from_dots(member_adds, member_removes.clone())) {
            journal_after = true;
            state.dirty = true;
            ctx.metrics().count("ppss.membership_folded", 1);
        }
        // Explicitly-removed nodes leave the view immediately instead of
        // lingering until liveness pruning notices.
        for dot in &member_removes {
            if !state.membership.is_member(dot.node) {
                state.view.retain(|e| e.node != dot.node);
                state.pcp.remove(&dot.node);
            }
        }
        if !is_response {
            // Answer with our own buffer (built pre-merge).
            let buffer = Self::build_buffer(state, &my_entry, from_entry.node, cfg.gossip_len, ctx);
            let (member_adds, member_removes) = state.membership.recent_dots(EXCHANGE_DOTS);
            let resp = PpssMsg::Exchange {
                group,
                passport: state.passport.clone(),
                from_entry: Box::new(my_entry.clone()),
                entries: buffer,
                exchange_id,
                is_response: true,
                hb: state.tracker.heartbeat(),
                election: state.tracker.ballot(),
                new_key: state.latest_announcement.clone(),
                member_adds,
                member_removes,
            };
            ctx.metrics().count("ppss.exchanges_served", 1);
            wcl.send_untracked(ctx, nylon, &from_entry.dest_info(), &resp.to_wire());
        } else {
            if state.outstanding == Some((from_entry.node, exchange_id)) {
                state.outstanding = None;
            }
            wcl.notify_response(ctx, exchange_id);
            ctx.metrics().count("ppss.exchanges_completed", 1);
        }
        let mut received = entries;
        received.push(from_entry);
        state.merge_entries(me, received, cfg.view_size);
        if journal_after {
            // The key history (and possibly the epoch) changed — that is
            // durable state; losing it on crash would orphan passports.
            self.journal_group(group);
        }
        events.push(PpssEvent::ViewUpdated { group });
    }

    /// Processes a descriptor blob surfaced by the Nylon relay layer.
    ///
    /// Non-members relay blobs without ever reaching this point (the
    /// store merge happens inside `whisper-pss`); members verify the
    /// signature against their key history and fold verified descriptors
    /// into the group CRDT. A verified deletion tombstone destroys the
    /// group on the spot, forever.
    pub fn on_descriptor(&mut self, ctx: &mut Ctx<'_>, bytes: &[u8]) -> Vec<PpssEvent> {
        let mut events = Vec::new();
        let Ok(desc) = GroupDescriptor::from_wire(bytes) else {
            ctx.metrics().count("ppss.desc_unparseable", 1);
            return events;
        };
        let group = desc.group;
        if self.deleted.contains(&group) {
            if !desc.tombstone {
                ctx.metrics().count("ppss.resurrection_blocked", 1);
            }
            return events;
        }
        let Some(state) = self.groups.get_mut(&group) else {
            return events; // not a member: relay-only, nothing to verify
        };
        if !desc.verify(&state.key_history) {
            // Signed under a key we have not learned yet (it will verify
            // once the NewKeyAnnouncement lands), or forged. Either way:
            // fail closed.
            ctx.metrics().count("ppss.desc_unverified", 1);
            return events;
        }
        if desc.tombstone {
            self.groups.remove(&group);
            self.pending_joins.remove(&group);
            self.deleted.insert(group);
            self.journal.append(&encode_tombstone_record(group));
            ctx.metrics().count("ppss.groups_deleted", 1);
            events.push(PpssEvent::GroupDeleted { group });
            return events;
        }
        let mut changed = state.membership.apply(&desc);
        if desc.epoch > state.tracker.epoch {
            // The signer verified, so a higher epoch is authoritative
            // even before its heartbeats reach us.
            state.tracker.accept_new_epoch(desc.epoch);
            changed = true;
        }
        let fresher = state
            .latest_descriptor
            .as_ref()
            .is_none_or(|cur| desc.dominates(cur));
        if fresher {
            let now = ctx.now().as_micros();
            if now >= desc.born_at {
                ctx.metrics()
                    .sample("ppss.desc_prop_s", (now - desc.born_at) as f64 / 1e6);
            }
            ctx.metrics().count("ppss.desc_adopted", 1);
            state.latest_descriptor = Some(desc);
            changed = true;
        }
        if changed {
            self.journal_group(group);
            events.push(PpssEvent::ViewUpdated { group });
        }
        events
    }

    /// Builds the exchange buffer: a random `len`-sized subset of the
    /// view, excluding the partner (our fresh entry travels separately as
    /// `from_entry`).
    fn build_buffer(
        state: &GroupState,
        _my_entry: &PrivateEntry,
        partner: NodeId,
        len: usize,
        ctx: &mut Ctx<'_>,
    ) -> Vec<PrivateEntry> {
        use whisper_rand::seq::SliceRandom;
        let mut candidates: Vec<&PrivateEntry> =
            state.view.iter().filter(|e| e.node != partner).collect();
        candidates.shuffle(ctx.rng());
        candidates.into_iter().take(len).cloned().collect()
    }
}
