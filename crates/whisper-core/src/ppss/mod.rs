//! The private peer sampling service (paper §IV).
//!
//! One [`Ppss`] instance manages all the private groups a node belongs
//! to; every group is handled independently (a node never discloses one
//! group's membership to another group's members). All PPSS traffic —
//! join handshakes, private view exchanges, application data, persistent
//! path refreshes — travels through WCL onion routes, so neither content
//! nor the fact that two members talk is visible to outsiders.

pub mod election;
pub mod group;
pub mod messages;

use crate::wcl::{GatewayInfo, Wcl};
use election::{ElectionOutcome, LeaderTracker};
use group::{issue_accreditation, verify_accreditation, GroupId, Invitation, Passport};
pub use messages::PrivateEntry;
use messages::{ElectionBallot, Heartbeat, NewKeyAnnouncement, PpssMsg};
use whisper_rand::Rng;
use std::collections::HashMap;
use whisper_crypto::rsa::{KeyPair, PublicKey};
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode};
use whisper_net::{NodeId, SimDuration};
use whisper_pss::NylonCore;

/// Timer token: the PPSS gossip cycle (all groups share one timer).
pub const TIMER_PPSS_CYCLE: u64 = 5;
/// Timer token: persistent-connection-pool refresh.
pub const TIMER_PCP_REFRESH: u64 = 6;

/// PPSS configuration.
#[derive(Clone, Debug)]
pub struct PpssConfig {
    /// Private view size per group.
    ///
    /// Must be strictly larger than `gossip_len`: when every exchange
    /// ships the whole view, age-0 copies of a *dead* member's entry
    /// replicate faster than holders age them (each transfer duplicates
    /// the freshest copy), and views freeze at an all-fresh fixed point
    /// in which failed nodes are never pruned. Shipping a strict subset
    /// keeps the duplication rate below the aging rate, which is exactly
    /// why the classic PSS exchanges `c/2` of `c` entries.
    pub view_size: usize,
    /// Entries shipped per exchange (paper: 5).
    pub gossip_len: usize,
    /// PPSS cycle period (paper: 1 minute).
    pub cycle: SimDuration,
    /// Π — gateways advertised per NATted member (paper: 3).
    pub gateways: usize,
    /// PCP refresh period (lower frequency than gossip; bounded by the
    /// NAT association lease).
    pub pcp_refresh: SimDuration,
    /// Heartbeat-silent cycles before a leader election starts.
    pub hb_miss_threshold: u64,
    /// Aggregation cycles before an election round is decided.
    pub election_cycles: u64,
}

impl PpssConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `gossip_len >= view_size` (see `view_size` docs: a
    /// full-view exchange breaks failure pruning).
    pub fn validate(&self) {
        assert!(
            self.gossip_len < self.view_size,
            "PPSS gossip_len must be smaller than view_size"
        );
    }
}

impl Default for PpssConfig {
    fn default() -> Self {
        PpssConfig {
            view_size: 8,
            gossip_len: 5,
            cycle: SimDuration::from_secs(60),
            gateways: 3,
            pcp_refresh: SimDuration::from_secs(120),
            hb_miss_threshold: 4,
            election_cycles: 3,
        }
    }
}

/// Upcalls from the PPSS.
#[derive(Clone, Debug, PartialEq)]
pub enum PpssEvent {
    /// The join handshake for `group` completed; the node is a member.
    Joined {
        /// The group.
        group: GroupId,
    },
    /// The private view of `group` changed.
    ViewUpdated {
        /// The group.
        group: GroupId,
    },
    /// Application data from a fellow group member.
    AppMessage {
        /// The group.
        group: GroupId,
        /// The authenticated sender (passport-verified).
        from: NodeId,
        /// Application bytes.
        data: Vec<u8>,
        /// The sender's entry, when it shipped one for replies.
        reply_entry: Option<PrivateEntry>,
    },
    /// A member could not be reached over any WCL route and was dropped
    /// from the private view.
    MemberUnreachable {
        /// The group.
        group: GroupId,
        /// The dropped member.
        node: NodeId,
    },
    /// This node won a leader election.
    BecameLeader {
        /// The group.
        group: GroupId,
        /// The new leadership epoch.
        epoch: u64,
    },
}

/// State of one group membership.
pub struct GroupState {
    /// Group key history, oldest first; the last entry is current.
    key_history: Vec<PublicKey>,
    /// The group private key (leaders only).
    leader_key: Option<KeyPair>,
    /// Our passport.
    passport: Passport,
    /// The private view.
    view: Vec<PrivateEntry>,
    /// Persistent connection pool: entries kept fresh independently of
    /// the view.
    pcp: HashMap<NodeId, PrivateEntry>,
    /// Leader liveness / election state.
    tracker: LeaderTracker,
    /// Outstanding exchange: (partner, WCL msg id).
    outstanding: Option<(NodeId, u64)>,
    /// Latest verified key announcement, piggybacked for dissemination.
    latest_announcement: Option<NewKeyAnnouncement>,
}

impl GroupState {
    /// The current private view.
    pub fn view(&self) -> &[PrivateEntry] {
        &self.view
    }

    /// Whether this node holds the group private key.
    pub fn is_leader(&self) -> bool {
        self.leader_key.is_some()
    }

    /// The group key history (oldest first).
    pub fn key_history(&self) -> &[PublicKey] {
        &self.key_history
    }

    /// The persistent connection pool entries.
    pub fn pcp(&self) -> &HashMap<NodeId, PrivateEntry> {
        &self.pcp
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.tracker.epoch
    }

    fn current_key(&self) -> &PublicKey {
        self.key_history.last().expect("non-empty history")
    }

    fn merge_entries(&mut self, me: NodeId, entries: Vec<PrivateEntry>, cap: usize) {
        for entry in entries {
            if entry.node == me {
                continue;
            }
            match self.view.iter_mut().find(|e| e.node == entry.node) {
                Some(existing) => {
                    if entry.age <= existing.age {
                        *existing = entry;
                    }
                }
                None => self.view.push(entry),
            }
        }
        self.view.sort_by_key(|e| (e.age, e.node));
        self.view.truncate(cap);
    }
}

/// A pending join: retried every cycle until the ack arrives.
struct PendingJoin {
    invitation: Invitation,
    msg_id: Option<u64>,
}

/// The private peer sampling service of one node.
pub struct Ppss {
    cfg: PpssConfig,
    groups: HashMap<GroupId, GroupState>,
    pending_joins: HashMap<GroupId, PendingJoin>,
    started: bool,
    cycles_run: u64,
}

impl std::fmt::Debug for Ppss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ppss").field("groups", &self.groups.len()).finish()
    }
}

impl Ppss {
    /// Creates an empty PPSS.
    pub fn new(cfg: PpssConfig) -> Self {
        Ppss {
            cfg,
            groups: HashMap::new(),
            pending_joins: HashMap::new(),
            started: false,
            cycles_run: 0,
        }
    }

    /// Number of PPSS cycles this node has run (diagnostics).
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The configuration.
    pub fn config(&self) -> &PpssConfig {
        &self.cfg
    }

    /// Groups this node belongs to, sorted (deterministic).
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The state of `group`, if this node is a member.
    pub fn group(&self, group: GroupId) -> Option<&GroupState> {
        self.groups.get(&group)
    }

    /// Must be called once at node start: arms the cycle timers.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.cfg.validate();
        if self.started {
            return;
        }
        self.started = true;
        let offset =
            SimDuration::from_micros(ctx.rng().gen_range(0..self.cfg.cycle.as_micros().max(1)));
        ctx.set_timer(offset, TIMER_PPSS_CYCLE);
        ctx.set_timer(self.cfg.pcp_refresh, TIMER_PCP_REFRESH);
    }

    /// Builds this node's fresh private-view entry: identity key plus Π
    /// gateway P-nodes drawn from the Nylon connection backlog.
    pub fn my_entry(&self, nylon: &NylonCore) -> PrivateEntry {
        let public = nylon.is_public();
        let gateways = if public {
            Vec::new()
        } else {
            nylon
                .cb()
                .publics()
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .take(self.cfg.gateways)
                .collect()
        };
        PrivateEntry {
            node: nylon.id(),
            age: 0,
            public,
            key: nylon.keypair().public().clone(),
            gateways,
        }
    }

    // ----------------------------------------------------------------
    // Group management API (the `createGroup` / `joinGroup` /
    // `authorizeJoin` interface of Fig. 1)
    // ----------------------------------------------------------------

    /// Creates a new private group with this node as its leader.
    ///
    /// # Panics
    ///
    /// Panics if the node already belongs to a group with this name.
    pub fn create_group(&mut self, ctx: &mut Ctx<'_>, nylon: &NylonCore, name: &str) -> GroupId {
        let id = GroupId::from_name(name);
        assert!(!self.groups.contains_key(&id), "already a member of {name:?}");
        let group_key = KeyPair::generate(nylon.config().rsa, ctx.rng());
        let passport = Passport::issue(&group_key, id, nylon.id());
        let mut tracker = LeaderTracker::new();
        tracker.beat();
        self.groups.insert(
            id,
            GroupState {
                key_history: vec![group_key.public().clone()],
                leader_key: Some(group_key),
                passport,
                view: Vec::new(),
                pcp: HashMap::new(),
                tracker,
                outstanding: None,
                latest_announcement: None,
            },
        );
        ctx.metrics().count("ppss.groups_created", 1);
        id
    }

    /// Issues an invitation for `invitee` (leader operation; the
    /// `authorizeJoin` API).
    ///
    /// Returns `None` if this node is not a leader of `group`.
    pub fn invite(
        &self,
        nylon: &NylonCore,
        group: GroupId,
        invitee: NodeId,
    ) -> Option<Invitation> {
        let state = self.groups.get(&group)?;
        let leader_key = state.leader_key.as_ref()?;
        Some(Invitation {
            group,
            group_key: state.current_key().clone(),
            accreditation: issue_accreditation(leader_key, group, invitee),
            entry_point: self.my_entry(nylon),
        })
    }

    /// Starts the join handshake using an out-of-band invitation. The
    /// request is retried every PPSS cycle until the leader answers.
    pub fn join_group(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        invitation: Invitation,
    ) {
        let group = invitation.group;
        if self.groups.contains_key(&group) {
            return;
        }
        self.pending_joins
            .insert(group, PendingJoin { invitation, msg_id: None });
        self.try_pending_join(ctx, nylon, wcl, group);
    }

    fn try_pending_join(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
    ) {
        let entry = self.my_entry(nylon);
        let Some(pending) = self.pending_joins.get_mut(&group) else {
            return;
        };
        if pending.msg_id.is_some_and(|id| wcl.is_pending(id)) {
            return; // a request is still in flight
        }
        let msg = PpssMsg::JoinReq {
            group,
            accreditation: pending.invitation.accreditation.clone(),
            entry,
        };
        let msg_id = wcl.alloc_msg_id();
        pending.msg_id = Some(msg_id);
        let dest = pending.invitation.entry_point.dest_info();
        ctx.metrics().count("ppss.join_attempts", 1);
        wcl.send(ctx, nylon, &dest, msg.to_wire(), msg_id);
    }

    /// Adds `node` (taken from the private view) to the persistent
    /// connection pool of `group`. Returns `false` if unknown.
    pub fn make_persistent(&mut self, group: GroupId, node: NodeId) -> bool {
        let Some(state) = self.groups.get_mut(&group) else {
            return false;
        };
        let Some(entry) = state.view.iter().find(|e| e.node == node).cloned() else {
            return false;
        };
        state.pcp.insert(node, entry);
        true
    }

    /// Sends application bytes to a group member over a WCL route,
    /// optionally shipping our entry so the member can reply directly.
    ///
    /// Returns `false` when the target is not in the view/PCP or no route
    /// could be built.
    #[allow(clippy::too_many_arguments)]
    pub fn send_app(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let Some(state) = self.groups.get(&group) else {
            return false;
        };
        let Some(entry) = state
            .pcp
            .get(&to)
            .or_else(|| state.view.iter().find(|e| e.node == to))
        else {
            return false;
        };
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        wcl.send_untracked(ctx, nylon, &entry.dest_info(), &msg.to_wire())
    }

    /// Like [`Ppss::send_app`], but tracked through the WCL retry
    /// machinery: on success returns the message id, which the caller
    /// must resolve via [`Wcl::notify_response`] once the application's
    /// answer arrives (request/response apps and the chaos harness use
    /// this to measure end-to-end delivery).
    #[allow(clippy::too_many_arguments)]
    pub fn send_app_tracked(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> Option<u64> {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let state = self.groups.get(&group)?;
        let entry = state
            .pcp
            .get(&to)
            .or_else(|| state.view.iter().find(|e| e.node == to))?;
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        let msg_id = wcl.alloc_msg_id();
        wcl.send(ctx, nylon, &entry.dest_info(), msg.to_wire(), msg_id)
            .then_some(msg_id)
    }

    /// Sends application bytes to an explicit entry (e.g. one shipped in
    /// a query for the reply, the §V-G T-Chord pattern).
    #[allow(clippy::too_many_arguments)]
    pub fn send_app_to_entry(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        to: &PrivateEntry,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        let my_entry = with_reply_entry.then(|| self.my_entry(nylon));
        let Some(state) = self.groups.get(&group) else {
            return false;
        };
        let msg = PpssMsg::AppData {
            group,
            passport: state.passport.clone(),
            data,
            reply_entry: my_entry,
        };
        wcl.send_untracked(ctx, nylon, &to.dest_info(), &msg.to_wire())
    }

    // ----------------------------------------------------------------
    // Timers
    // ----------------------------------------------------------------

    /// Runs one PPSS cycle for every group; re-arms the timer.
    pub fn on_cycle(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
    ) -> Vec<PpssEvent> {
        let mut events = Vec::new();
        self.cycles_run += 1;
        ctx.set_timer(self.cfg.cycle, TIMER_PPSS_CYCLE);
        // Retry pending joins.
        let pending: Vec<GroupId> = self.pending_joins.keys().copied().collect();
        for group in pending {
            self.try_pending_join(ctx, nylon, wcl, group);
        }
        let my_entry = self.my_entry(nylon);
        let me = nylon.id();
        let my_key_bytes = nylon.keypair().public().to_bytes();
        let groups: Vec<GroupId> = self.group_ids();
        for group in groups {
            let cfg = self.cfg.clone();
            let state = self.groups.get_mut(&group).expect("listed");
            // Leader heartbeats / member election bookkeeping.
            if state.is_leader() {
                state.tracker.beat();
            } else {
                match state.tracker.on_cycle(
                    me,
                    my_key_bytes.clone(),
                    cfg.hb_miss_threshold,
                    cfg.election_cycles,
                ) {
                    ElectionOutcome::Won { epoch } => {
                        let new_key = KeyPair::generate(nylon.config().rsa, ctx.rng());
                        let group_key = new_key.public().to_bytes();
                        let ann = NewKeyAnnouncement {
                            epoch,
                            signature: nylon
                                .keypair()
                                .sign(&NewKeyAnnouncement::message(epoch, &group_key)),
                            group_key,
                            signer: me,
                            signer_key: my_key_bytes.clone(),
                        };
                        state.key_history.push(new_key.public().clone());
                        // Keep the old passport: it stays valid through
                        // the key history, and members that have not yet
                        // learned the new key would reject a new-key
                        // passport — and with it, the announcement itself.
                        state.leader_key = Some(new_key);
                        state.latest_announcement = Some(ann);
                        ctx.metrics().count("ppss.elections_won", 1);
                        events.push(PpssEvent::BecameLeader { group, epoch });
                    }
                    ElectionOutcome::Idle => {}
                }
            }
            // Age the private view and gossip with its oldest member.
            for e in &mut state.view {
                e.age = e.age.saturating_add(1);
            }
            let Some(partner) = state
                .view
                .iter()
                .max_by_key(|e| (e.age, e.node))
                .cloned()
            else {
                continue;
            };
            let buffer = Self::build_buffer(state, &my_entry, partner.node, cfg.gossip_len, ctx);
            let msg_id = wcl.alloc_msg_id();
            let msg = PpssMsg::Exchange {
                group,
                passport: state.passport.clone(),
                from_entry: my_entry.clone(),
                entries: buffer,
                exchange_id: msg_id,
                is_response: false,
                hb: state.tracker.heartbeat(),
                election: state.tracker.ballot(),
                new_key: state.latest_announcement.clone(),
            };
            state.outstanding = Some((partner.node, msg_id));
            ctx.metrics().count("ppss.exchanges_initiated", 1);
            if !wcl.send(ctx, nylon, &partner.dest_info(), msg.to_wire(), msg_id) {
                // No route constructible at all (e.g. every advertised
                // gateway is gone): without this, the unreachable partner
                // would stay the oldest entry and be re-selected forever.
                state.outstanding = None;
                state.view.retain(|e| e.node != partner.node);
                state.pcp.remove(&partner.node);
                events.push(PpssEvent::MemberUnreachable { group, node: partner.node });
            }
        }
        events
    }

    /// Refreshes every persistent connection (paper §IV-C); re-arms the
    /// timer.
    pub fn on_pcp_refresh(&mut self, ctx: &mut Ctx<'_>, nylon: &mut NylonCore, wcl: &mut Wcl) {
        ctx.set_timer(self.cfg.pcp_refresh, TIMER_PCP_REFRESH);
        let my_entry = self.my_entry(nylon);
        let groups: Vec<GroupId> = self.group_ids();
        for group in groups {
            let state = self.groups.get_mut(&group).expect("listed");
            let targets: Vec<PrivateEntry> = state.pcp.values().cloned().collect();
            let passport = state.passport.clone();
            for target in targets {
                let msg = PpssMsg::PcpRefresh {
                    group,
                    passport: passport.clone(),
                    entry: my_entry.clone(),
                    respond: true,
                };
                ctx.metrics().count("ppss.pcp_refreshes", 1);
                wcl.send_untracked(ctx, nylon, &target.dest_info(), &msg.to_wire());
            }
        }
    }

    /// Clears in-flight exchange state after a crash-restart.
    ///
    /// Group membership, passports and private views are modeled as
    /// durable (the node's on-disk configuration); only the per-cycle
    /// `outstanding` trackers and pending-join message ids are volatile.
    /// The WCL drops its pending table on restart, so any msg ids still
    /// referenced here would never resolve — resetting them lets the next
    /// PPSS cycle retry from scratch.
    pub fn on_restart(&mut self) {
        for state in self.groups.values_mut() {
            state.outstanding = None;
        }
        for pending in self.pending_joins.values_mut() {
            pending.msg_id = None;
        }
    }

    /// Handles a WCL route failure for a tracked send.
    pub fn on_route_failed(&mut self, msg_id: u64, dest: NodeId) -> Vec<PpssEvent> {
        let mut events = Vec::new();
        for (gid, state) in self.groups.iter_mut() {
            if state.outstanding == Some((dest, msg_id)) {
                state.outstanding = None;
                // The paper treats exhausted retries as destination
                // failure: drop it from the private view.
                state.view.retain(|e| e.node != dest);
                state.pcp.remove(&dest);
                events.push(PpssEvent::MemberUnreachable { group: *gid, node: dest });
            }
        }
        for pending in self.pending_joins.values_mut() {
            if pending.msg_id == Some(msg_id) {
                pending.msg_id = None; // retried next cycle
            }
        }
        events
    }

    // ----------------------------------------------------------------
    // Message handling (called for every WCL-delivered payload)
    // ----------------------------------------------------------------

    /// Processes a confidential payload delivered by the WCL. Returns
    /// `None` if it does not parse as a PPSS message.
    pub fn on_delivered(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        payload: &[u8],
    ) -> Option<Vec<PpssEvent>> {
        let msg = PpssMsg::from_wire(payload).ok()?;
        let mut events = Vec::new();
        match msg {
            PpssMsg::JoinReq { group, accreditation, entry } => {
                self.handle_join_req(ctx, nylon, wcl, group, accreditation, entry);
            }
            PpssMsg::JoinAck { group, passport, key_history, entries } => {
                self.handle_join_ack(ctx, nylon, group, passport, key_history, entries, &mut events);
            }
            PpssMsg::Exchange {
                group,
                passport,
                from_entry,
                entries,
                exchange_id,
                is_response,
                hb,
                election,
                new_key,
            } => {
                self.handle_exchange(
                    ctx, nylon, wcl, group, passport, from_entry, entries, exchange_id,
                    is_response, hb, election, new_key, &mut events,
                );
            }
            PpssMsg::AppData { group, passport, data, reply_entry } => {
                let Some(state) = self.groups.get(&group) else {
                    ctx.metrics().count("ppss.dropped_unknown_group", 1);
                    return Some(events);
                };
                if !passport.verify(group, &state.key_history) {
                    ctx.metrics().count("ppss.dropped_bad_passport", 1);
                    return Some(events);
                }
                events.push(PpssEvent::AppMessage {
                    group,
                    from: passport.node,
                    data,
                    reply_entry,
                });
            }
            PpssMsg::PcpRefresh { group, passport, entry, respond } => {
                let my_entry = self.my_entry(nylon);
                let Some(state) = self.groups.get_mut(&group) else {
                    return Some(events);
                };
                if !passport.verify(group, &state.key_history) || passport.node != entry.node {
                    ctx.metrics().count("ppss.dropped_bad_passport", 1);
                    return Some(events);
                }
                // Refresh wherever we hold this member.
                if state.pcp.contains_key(&entry.node) {
                    state.pcp.insert(entry.node, entry.clone());
                }
                if let Some(existing) = state.view.iter_mut().find(|e| e.node == entry.node) {
                    *existing = entry.clone();
                }
                if respond {
                    let msg = PpssMsg::PcpRefresh {
                        group,
                        passport: state.passport.clone(),
                        entry: my_entry,
                        respond: false,
                    };
                    wcl.send_untracked(ctx, nylon, &entry.dest_info(), &msg.to_wire());
                }
            }
        }
        Some(events)
    }

    fn handle_join_req(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        accreditation: Vec<u8>,
        entry: PrivateEntry,
    ) {
        let my_entry = self.my_entry(nylon);
        let cap = self.cfg.view_size;
        let me = nylon.id();
        let Some(state) = self.groups.get_mut(&group) else {
            return;
        };
        let Some(leader_key) = state.leader_key.as_ref() else {
            // Not a leader: silently ignore (never reveal membership).
            ctx.metrics().count("ppss.join_ignored_not_leader", 1);
            return;
        };
        if !verify_accreditation(&accreditation, group, entry.node, &state.key_history) {
            ctx.metrics().count("ppss.join_rejected", 1);
            return;
        }
        let passport = Passport::issue(leader_key, group, entry.node);
        // Seed the joiner with a slice of our view plus ourselves.
        let mut entries = vec![my_entry];
        entries.extend(state.view.iter().take(self.cfg.gossip_len).cloned());
        let ack = PpssMsg::JoinAck {
            group,
            passport,
            key_history: state.key_history.iter().map(|k| k.to_bytes()).collect(),
            entries,
        };
        state.merge_entries(me, vec![entry.clone()], cap);
        ctx.metrics().count("ppss.joins_accepted", 1);
        wcl.send_untracked(ctx, nylon, &entry.dest_info(), &ack.to_wire());
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_join_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        group: GroupId,
        passport: Passport,
        key_history: Vec<Vec<u8>>,
        entries: Vec<PrivateEntry>,
        events: &mut Vec<PpssEvent>,
    ) {
        let Some(pending) = self.pending_joins.get(&group) else {
            return;
        };
        let history: Vec<PublicKey> = key_history
            .iter()
            .filter_map(|b| PublicKey::from_bytes(b))
            .collect();
        // The invitation's key must appear in the history, and our new
        // passport must verify: otherwise someone is feeding us a fake
        // group.
        if !history.contains(&pending.invitation.group_key)
            || passport.node != nylon.id()
            || !passport.verify(group, &history)
        {
            ctx.metrics().count("ppss.join_ack_invalid", 1);
            return;
        }
        self.pending_joins.remove(&group);
        let mut state = GroupState {
            key_history: history,
            leader_key: None,
            passport,
            view: Vec::new(),
            pcp: HashMap::new(),
            tracker: LeaderTracker::new(),
            outstanding: None,
            latest_announcement: None,
        };
        state.merge_entries(nylon.id(), entries, self.cfg.view_size);
        self.groups.insert(group, state);
        ctx.metrics().count("ppss.joins_completed", 1);
        events.push(PpssEvent::Joined { group });
        events.push(PpssEvent::ViewUpdated { group });
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_exchange(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        wcl: &mut Wcl,
        group: GroupId,
        passport: Passport,
        from_entry: PrivateEntry,
        entries: Vec<PrivateEntry>,
        exchange_id: u64,
        is_response: bool,
        hb: Heartbeat,
        election: Option<ElectionBallot>,
        new_key: Option<NewKeyAnnouncement>,
        events: &mut Vec<PpssEvent>,
    ) {
        let my_entry = self.my_entry(nylon);
        let me = nylon.id();
        let cfg = self.cfg.clone();
        let Some(state) = self.groups.get_mut(&group) else {
            ctx.metrics().count("ppss.dropped_unknown_group", 1);
            return;
        };
        if !passport.verify(group, &state.key_history) || passport.node != from_entry.node {
            // Invalid passports are ignored silently (paper §IV-A): the
            // sender learns nothing about our membership.
            ctx.metrics().count("ppss.dropped_bad_passport", 1);
            return;
        }
        // Key-change announcements are processed *before* heartbeats:
        // hearing an epoch-N heartbeat must not stop us from installing
        // the epoch-N group key. Elections can produce several winners
        // (the paper allows "one or several leaders"); every validly
        // signed key for a current-or-newer epoch joins the history so
        // passports from any co-leader verify.
        if let Some(ann) = new_key {
            if ann.epoch >= state.tracker.epoch {
                if let Some(group_key) = ann.verify() {
                    if !state.key_history.contains(&group_key) {
                        state.key_history.push(group_key);
                        ctx.metrics().count("ppss.new_key_accepted", 1);
                    }
                    state.tracker.accept_new_epoch(ann.epoch);
                    let fresher = state
                        .latest_announcement
                        .as_ref()
                        .is_none_or(|cur| ann.epoch >= cur.epoch);
                    if fresher {
                        state.latest_announcement = Some(ann);
                    }
                }
            }
        }
        // Liveness / election gossip.
        state.tracker.observe_heartbeat(hb);
        if let Some(ballot) = election {
            state.tracker.observe_ballot(ballot);
        }
        if !is_response {
            // Answer with our own buffer (built pre-merge).
            let buffer = Self::build_buffer(state, &my_entry, from_entry.node, cfg.gossip_len, ctx);
            let resp = PpssMsg::Exchange {
                group,
                passport: state.passport.clone(),
                from_entry: my_entry.clone(),
                entries: buffer,
                exchange_id,
                is_response: true,
                hb: state.tracker.heartbeat(),
                election: state.tracker.ballot(),
                new_key: state.latest_announcement.clone(),
            };
            ctx.metrics().count("ppss.exchanges_served", 1);
            wcl.send_untracked(ctx, nylon, &from_entry.dest_info(), &resp.to_wire());
        } else {
            if state.outstanding == Some((from_entry.node, exchange_id)) {
                state.outstanding = None;
            }
            wcl.notify_response(ctx, exchange_id);
            ctx.metrics().count("ppss.exchanges_completed", 1);
        }
        let mut received = entries;
        received.push(from_entry);
        state.merge_entries(me, received, cfg.view_size);
        events.push(PpssEvent::ViewUpdated { group });
    }

    /// Builds the exchange buffer: a random `len`-sized subset of the
    /// view, excluding the partner (our fresh entry travels separately as
    /// `from_entry`).
    fn build_buffer(
        state: &GroupState,
        _my_entry: &PrivateEntry,
        partner: NodeId,
        len: usize,
        ctx: &mut Ctx<'_>,
    ) -> Vec<PrivateEntry> {
        use whisper_rand::seq::SliceRandom;
        let mut candidates: Vec<&PrivateEntry> =
            state.view.iter().filter(|e| e.node != partner).collect();
        candidates.shuffle(ctx.rng());
        candidates.into_iter().take(len).cloned().collect()
    }
}
