//! Signed group descriptors and the CRDT merge that keeps replicas
//! convergent across partitions (the group-lifecycle design of
//! "Pretty Private Group Management" grafted onto the paper's
//! passport/accreditation machinery).
//!
//! A [`GroupDescriptor`] is a small (~200–300 byte) RSA-signed summary of
//! a group's durable state: leadership epoch, a hash of the key history,
//! a bounded membership delta, and a deletion tombstone flag. Leaders
//! sign and publish one whenever durable state changes; descriptors then
//! travel as opaque blobs piggybacked on Nylon gossip exchanges (see
//! `whisper_pss::descriptors`), so propagation needs no extra messages
//! and reaches non-members (who relay but cannot verify — only members
//! hold the key history a signature checks against).
//!
//! ## Merge rules
//!
//! Two replicas that have seen any interleaving of descriptors converge
//! because every component is a join-semilattice:
//!
//! * **Descriptor state** (epoch, key hash): epoch-dominated
//!   last-writer-wins — ordered by `(tombstone, epoch, seq)`, with a
//!   deterministic byte tiebreak for the co-leader case where two valid
//!   descriptors share an `(epoch, seq)`.
//! * **Membership**: an OR-set with tombstoned dots. Every join is an
//!   *add dot* `(node, epoch, counter)` unique per admission; a removal
//!   tombstones the specific dots it observed. Merge is dot-set union,
//!   and a node is a member iff it has an add dot that no replica has
//!   tombstoned. Re-admission after removal works naturally (a fresh dot
//!   is not covered by old remove dots).
//! * **Deletion**: the tombstone flag is sticky — it dominates every
//!   epoch forever, so once any replica has seen a verified deletion, no
//!   sequence of stale descriptors, rejoining nodes or partition healing
//!   can resurrect the group. Resurrection is impossible by construction,
//!   not by timeout.

use crate::ppss::group::GroupId;
use std::collections::BTreeSet;
use whisper_crypto::rsa::{KeyPair, PublicKey};
use whisper_crypto::sha256::Sha256;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::NodeId;

/// Domain separator for descriptor signatures (nothing else in the stack
/// signs bytes with this prefix).
const SIGN_DOMAIN: &[u8] = b"whisper-descr-v1";

/// Maximum add + remove dots shipped per descriptor. Descriptors are a
/// *delta* of the most recent membership changes, re-gossiped every
/// anti-entropy round; the accumulated OR-set lives at the members.
pub const DELTA_DOTS: usize = 4;

/// One membership-change event: `node` was admitted (or that admission
/// was revoked) under `epoch`, with a per-leader `counter` making the dot
/// unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberDot {
    /// The member the dot is about.
    pub node: NodeId,
    /// Leadership epoch that produced the dot.
    pub epoch: u64,
    /// Per-epoch admission counter (unique per leader decision).
    pub counter: u64,
}

impl WireEncode for MemberDot {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        w.put_u64(self.epoch);
        w.put_u64(self.counter);
    }

    fn encoded_len(&self) -> usize {
        24
    }
}

impl WireDecode for MemberDot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MemberDot { node: r.take()?, epoch: r.take_u64()?, counter: r.take_u64()? })
    }
}

/// Hash of a group key history (oldest first), pinned into descriptors so
/// members can detect that a descriptor was signed under a history they
/// have not caught up with yet.
pub fn key_history_hash(history: &[PublicKey]) -> [u8; 32] {
    let mut m = Vec::new();
    for k in history {
        let bytes = k.to_bytes();
        m.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        m.extend_from_slice(&bytes);
    }
    Sha256::digest(&m)
}

/// An RSA-signed summary of a group's durable state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupDescriptor {
    /// The group.
    pub group: GroupId,
    /// Leadership epoch the signer held when publishing.
    pub epoch: u64,
    /// Publish sequence within the epoch (LWW tiebreak).
    pub seq: u64,
    /// [`key_history_hash`] of the signer's key history.
    pub key_hash: [u8; 32],
    /// Deletion tombstone: sticky, dominates every epoch forever.
    pub tombstone: bool,
    /// Recent admission dots (bounded delta, see [`DELTA_DOTS`]).
    pub adds: Vec<MemberDot>,
    /// Recent revocation dots (bounded delta).
    pub removes: Vec<MemberDot>,
    /// Simulated publish time in microseconds (propagation-latency
    /// measurement; not covered by any correctness rule).
    pub born_at: u64,
    /// Serialized group public key the signature verifies under.
    pub signer_key: Vec<u8>,
    /// RSA signature over the descriptor message.
    pub signature: Vec<u8>,
}

fn descriptor_message(d: &GroupDescriptor) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_raw(SIGN_DOMAIN);
    w.put(&d.group);
    w.put_u64(d.epoch);
    w.put_u64(d.seq);
    w.put_raw(&d.key_hash);
    w.put(&d.tombstone);
    w.put_seq(&d.adds);
    w.put_seq(&d.removes);
    w.put_u64(d.born_at);
    w.put_bytes(&d.signer_key);
    w.into_bytes()
}

impl GroupDescriptor {
    /// Builds and signs a descriptor with the group private key (leader
    /// operation).
    #[allow(clippy::too_many_arguments)]
    pub fn sign(
        key: &KeyPair,
        group: GroupId,
        epoch: u64,
        seq: u64,
        history: &[PublicKey],
        tombstone: bool,
        adds: Vec<MemberDot>,
        removes: Vec<MemberDot>,
        born_at: u64,
    ) -> GroupDescriptor {
        let mut d = GroupDescriptor {
            group,
            epoch,
            seq,
            key_hash: key_history_hash(history),
            tombstone,
            adds,
            removes,
            born_at,
            signer_key: key.public().to_bytes(),
            signature: Vec::new(),
        };
        d.signature = key.sign(&descriptor_message(&d));
        d
    }

    /// Verifies the signature against a key history: the signer key must
    /// be a current-or-past group key (same acceptance rule as passports,
    /// so descriptors from a leader we have not caught up with via its
    /// `NewKeyAnnouncement` yet still verify once the key lands).
    pub fn verify(&self, history: &[PublicKey]) -> bool {
        let Some(signer) = PublicKey::from_bytes(&self.signer_key) else {
            return false;
        };
        if !history.contains(&signer) {
            return false;
        }
        signer.verify(&descriptor_message(self), &self.signature).is_ok()
    }

    /// Relay-level LWW version for the unverified blob store: tombstones
    /// pin the maximum (they can never be displaced), everything else
    /// orders by epoch then publish sequence.
    pub fn version(&self) -> u64 {
        if self.tombstone {
            u64::MAX
        } else {
            (self.epoch << 24) | (self.seq & 0xFF_FFFF)
        }
    }

    /// The epoch-dominated LWW order (strict): tombstones dominate
    /// everything, then epoch, then sequence, then — for the co-leader
    /// tie — the lexicographically greater signed bytes, so every replica
    /// picks the same winner without coordination.
    pub fn dominates(&self, other: &GroupDescriptor) -> bool {
        let lhs = (self.tombstone, self.epoch, self.seq);
        let rhs = (other.tombstone, other.epoch, other.seq);
        if lhs != rhs {
            return lhs > rhs;
        }
        (&self.signer_key, &self.signature) > (&other.signer_key, &other.signature)
    }
}

impl WireEncode for GroupDescriptor {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.group);
        w.put_u64(self.epoch);
        w.put_u64(self.seq);
        w.put_raw(&self.key_hash);
        w.put(&self.tombstone);
        w.put_seq(&self.adds);
        w.put_seq(&self.removes);
        w.put_u64(self.born_at);
        w.put_bytes(&self.signer_key);
        w.put_bytes(&self.signature);
    }

    fn encoded_len(&self) -> usize {
        use whisper_net::wire::{bytes_len, seq_len};
        16 + 8 + 8 + 32 + 1
            + seq_len(&self.adds)
            + seq_len(&self.removes)
            + 8
            + bytes_len(&self.signer_key)
            + bytes_len(&self.signature)
    }
}

impl WireDecode for GroupDescriptor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let group = r.take()?;
        let epoch = r.take_u64()?;
        let seq = r.take_u64()?;
        let mut key_hash = [0u8; 32];
        key_hash.copy_from_slice(r.take_raw(32)?);
        Ok(GroupDescriptor {
            group,
            epoch,
            seq,
            key_hash,
            tombstone: r.take()?,
            adds: r.take_seq()?,
            removes: r.take_seq()?,
            born_at: r.take_u64()?,
            signer_key: r.take_bytes()?.to_vec(),
            signature: r.take_bytes()?.to_vec(),
        })
    }
}

/// The accumulated membership OR-set of one group, grown from descriptor
/// deltas. Plain dot-set union on merge; deterministic iteration (sorted
/// sets) everywhere.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Membership {
    adds: BTreeSet<MemberDot>,
    removes: BTreeSet<MemberDot>,
}

impl Membership {
    /// An empty membership.
    pub fn new() -> Membership {
        Membership::default()
    }

    /// Rebuilds a membership from journaled dot sets.
    pub fn from_dots(adds: Vec<MemberDot>, removes: Vec<MemberDot>) -> Membership {
        Membership {
            adds: adds.into_iter().collect(),
            removes: removes.into_iter().collect(),
        }
    }

    /// Records an admission dot (leader operation).
    pub fn add(&mut self, dot: MemberDot) {
        self.adds.insert(dot);
    }

    /// Tombstones every known add dot of `node` (leader operation).
    /// Returns the dots revoked — these go into the next descriptor delta.
    pub fn remove(&mut self, node: NodeId) -> Vec<MemberDot> {
        let dots: Vec<MemberDot> = self
            .adds
            .iter()
            .filter(|d| d.node == node && !self.removes.contains(d))
            .copied()
            .collect();
        self.removes.extend(dots.iter().copied());
        dots
    }

    /// Folds a descriptor's delta in. Returns `true` when anything new
    /// was learned.
    pub fn apply(&mut self, desc: &GroupDescriptor) -> bool {
        let mut changed = false;
        for d in &desc.adds {
            changed |= self.adds.insert(*d);
        }
        for d in &desc.removes {
            changed |= self.removes.insert(*d);
        }
        changed
    }

    /// Full-state merge with another replica. Returns `true` on change.
    pub fn merge(&mut self, other: &Membership) -> bool {
        let before = (self.adds.len(), self.removes.len());
        self.adds.extend(other.adds.iter().copied());
        self.removes.extend(other.removes.iter().copied());
        before != (self.adds.len(), self.removes.len())
    }

    /// Whether `node` has a live (un-tombstoned) admission dot.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.adds
            .iter()
            .any(|d| d.node == node && !self.removes.contains(d))
    }

    /// Current members, sorted (deterministic).
    pub fn members(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .adds
            .iter()
            .filter(|d| !self.removes.contains(d))
            .map(|d| d.node)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All known dots, for journaling.
    pub fn dots(&self) -> (Vec<MemberDot>, Vec<MemberDot>) {
        (self.adds.iter().copied().collect(), self.removes.iter().copied().collect())
    }

    /// The most recent dots (highest `(epoch, counter)` first), bounded,
    /// for the next descriptor delta.
    pub fn recent_dots(&self, cap: usize) -> (Vec<MemberDot>, Vec<MemberDot>) {
        fn top(set: &BTreeSet<MemberDot>, cap: usize) -> Vec<MemberDot> {
            let mut v: Vec<MemberDot> = set.iter().copied().collect();
            v.sort_unstable_by_key(|d| std::cmp::Reverse((d.epoch, d.counter, d.node)));
            v.truncate(cap);
            v
        }
        (top(&self.adds, cap), top(&self.removes, cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_crypto::rsa::RsaKeySize;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(seed))
    }

    fn dot(n: u64, epoch: u64, counter: u64) -> MemberDot {
        MemberDot { node: NodeId(n), epoch, counter }
    }

    fn descriptor(gk: &KeyPair, epoch: u64, seq: u64, tombstone: bool) -> GroupDescriptor {
        GroupDescriptor::sign(
            gk,
            GroupId::from_name("crdt"),
            epoch,
            seq,
            &[gk.public().clone()],
            tombstone,
            vec![dot(9, epoch, 1)],
            vec![],
            12_345,
        )
    }

    #[test]
    fn wire_round_trip() {
        let gk = key(1);
        let d = descriptor(&gk, 3, 7, false);
        let parsed = GroupDescriptor::from_wire(&d.to_wire()).unwrap();
        assert_eq!(parsed, d);
        assert!(parsed.verify(&[gk.public().clone()]));
    }

    #[test]
    fn stays_small_on_the_wire() {
        let gk = key(1);
        let mut d = descriptor(&gk, 3, 7, false);
        d.adds = vec![dot(1, 3, 1), dot(2, 3, 2)];
        d.removes = vec![dot(3, 2, 9), dot(4, 1, 4)];
        d.signature = gk.sign(b"resize"); // size only; not re-verified here
        let len = d.to_wire().len();
        assert!(len < 400, "descriptor must stay small, got {len} bytes");
    }

    #[test]
    fn signature_covers_every_field() {
        let gk = key(1);
        let base = descriptor(&gk, 3, 7, false);
        let history = [gk.public().clone()];
        assert!(base.verify(&history));
        for mutate in [
            |d: &mut GroupDescriptor| d.epoch += 1,
            |d: &mut GroupDescriptor| d.seq += 1,
            |d: &mut GroupDescriptor| d.tombstone = true,
            |d: &mut GroupDescriptor| d.key_hash[0] ^= 1,
            |d: &mut GroupDescriptor| d.adds.push(dot(66, 3, 2)),
            |d: &mut GroupDescriptor| d.removes.push(dot(9, 3, 1)),
            |d: &mut GroupDescriptor| d.born_at += 1,
        ] {
            let mut forged = base.clone();
            mutate(&mut forged);
            assert!(!forged.verify(&history), "mutation must break the signature");
        }
    }

    #[test]
    fn verification_needs_the_signer_in_history() {
        let gk = key(1);
        let other = key(2);
        let d = descriptor(&gk, 1, 1, false);
        assert!(!d.verify(&[other.public().clone()]), "unknown signer fails closed");
        assert!(
            d.verify(&[other.public().clone(), gk.public().clone()]),
            "past keys in the history stay acceptable"
        );
    }

    #[test]
    fn lww_order_is_epoch_dominated() {
        let gk = key(1);
        let old = descriptor(&gk, 2, 9, false);
        let new = descriptor(&gk, 3, 1, false);
        assert!(new.dominates(&old), "higher epoch wins regardless of seq");
        assert!(!old.dominates(&new));
        let later_seq = descriptor(&gk, 3, 2, false);
        assert!(later_seq.dominates(&new));
    }

    #[test]
    fn equal_epoch_seq_ties_break_deterministically() {
        // Two co-leaders (the paper allows several) publish at the same
        // (epoch, seq): both replicas must pick the same winner.
        let a = descriptor(&key(1), 3, 1, false);
        let b = descriptor(&key(2), 3, 1, false);
        assert_ne!(a, b);
        assert!(a.dominates(&b) ^ b.dominates(&a), "exactly one wins");
    }

    #[test]
    fn tombstone_dominates_every_epoch_forever() {
        let gk = key(1);
        let tomb = descriptor(&gk, 1, 0, true);
        let futuristic = descriptor(&gk, 1000, 999, false);
        assert!(tomb.dominates(&futuristic), "deleted is deleted");
        assert!(!futuristic.dominates(&tomb));
        assert_eq!(tomb.version(), u64::MAX, "relay LWW can never displace it");
        assert!(futuristic.version() < u64::MAX);
    }

    #[test]
    fn orset_add_remove_readd() {
        let mut m = Membership::new();
        m.add(dot(5, 1, 1));
        assert!(m.is_member(NodeId(5)));
        let revoked = m.remove(NodeId(5));
        assert_eq!(revoked, vec![dot(5, 1, 1)]);
        assert!(!m.is_member(NodeId(5)));
        // Re-admission under a fresh dot is not covered by the old
        // remove.
        m.add(dot(5, 2, 1));
        assert!(m.is_member(NodeId(5)));
        assert_eq!(m.members(), vec![NodeId(5)]);
    }

    #[test]
    fn merge_is_commutative_idempotent_and_convergent() {
        // Three replicas see different interleavings of the same deltas.
        let deltas = [
            (vec![dot(1, 1, 1), dot(2, 1, 2)], vec![]),
            (vec![dot(3, 1, 3)], vec![dot(2, 1, 2)]),
            (vec![dot(2, 2, 1)], vec![dot(1, 1, 1)]),
        ];
        let gk = key(1);
        let descs: Vec<GroupDescriptor> = deltas
            .iter()
            .map(|(a, r)| {
                GroupDescriptor::sign(
                    &gk,
                    GroupId::from_name("crdt"),
                    1,
                    1,
                    &[gk.public().clone()],
                    false,
                    a.clone(),
                    r.clone(),
                    0,
                )
            })
            .collect();
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
        let replicas: Vec<Membership> = orders
            .iter()
            .map(|order| {
                let mut m = Membership::new();
                for &i in order {
                    m.apply(&descs[i]);
                    m.apply(&descs[i]); // idempotent
                }
                m
            })
            .collect();
        assert_eq!(replicas[0], replicas[1]);
        assert_eq!(replicas[1], replicas[2]);
        assert_eq!(replicas[0].members(), vec![NodeId(2), NodeId(3)]);
        // Full-state merge agrees with delta application.
        let mut a = replicas[0].clone();
        assert!(!a.merge(&replicas[1]), "nothing new between converged replicas");
    }

    #[test]
    fn recent_dots_are_bounded_and_newest_first() {
        let mut m = Membership::new();
        for i in 0..10 {
            m.add(dot(i, 1, i));
        }
        let (adds, removes) = m.recent_dots(DELTA_DOTS);
        assert_eq!(adds.len(), DELTA_DOTS);
        assert!(removes.is_empty());
        assert_eq!(adds[0].counter, 9, "newest dot first");
    }

    #[test]
    fn key_history_hash_changes_with_rotation() {
        let a = key(1);
        let b = key(2);
        let h1 = key_history_hash(&[a.public().clone()]);
        let h2 = key_history_hash(&[a.public().clone(), b.public().clone()]);
        assert_ne!(h1, h2);
        assert_eq!(h1, key_history_hash(&[a.public().clone()]));
    }
}
