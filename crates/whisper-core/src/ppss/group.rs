//! Private group identities, accreditations, passports and invitations
//! (paper §IV-A).
//!
//! A group has a public/private key pair: every member knows the public
//! key (and the history of past keys after leader changes), while only
//! leaders hold the private key. A **passport** is the member's node
//! identifier signed with the group's private key; it accompanies all
//! intra-group traffic, and messages with invalid passports are silently
//! ignored — which is what keeps memberships invisible to non-members. An
//! **accreditation** is a temporary token a prospective member presents
//! to a leader when joining.

use crate::ppss::messages::PrivateEntry;
use whisper_crypto::rsa::{KeyPair, PublicKey};
use whisper_crypto::sha256::Sha256;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::NodeId;

/// Identifier of a private group (derived from its name; the name itself
/// never travels on the wire).
///
/// 128 bits of a domain-separated SHA-256 — wide enough that two distinct
/// group names colliding on one id requires ~2^64 *deliberately chosen*
/// names (birthday bound), versus ~2^32 for the 64-bit id this replaced.
/// The domain prefix keeps the digest distinct from every other use of
/// `Sha256(name)` in the stack, so no other subsystem's hash of the same
/// string can alias a group id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u128);

impl std::fmt::Debug for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{:032x}", self.0)
    }
}

impl GroupId {
    /// Derives the identifier from a human-readable group name.
    pub fn from_name(name: &str) -> GroupId {
        let mut m = b"whisper-group-v1".to_vec();
        m.extend_from_slice(name.as_bytes());
        let digest = Sha256::digest(&m);
        GroupId(u128::from_be_bytes(digest[..16].try_into().expect("16 bytes")))
    }
}

impl WireEncode for GroupId {
    fn encode(&self, w: &mut WireWriter) {
        // The codec has no native u128; split into two big-endian u64s.
        w.put_u64((self.0 >> 64) as u64);
        w.put_u64(self.0 as u64);
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl WireDecode for GroupId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let hi = r.take_u64()?;
        let lo = r.take_u64()?;
        Ok(GroupId(((hi as u128) << 64) | lo as u128))
    }
}

fn passport_message(group: GroupId, node: NodeId) -> Vec<u8> {
    let mut m = b"whisper-passport".to_vec();
    m.extend_from_slice(&group.0.to_be_bytes());
    m.extend_from_slice(&node.to_bytes());
    m
}

fn accreditation_message(group: GroupId, node: NodeId) -> Vec<u8> {
    let mut m = b"whisper-accredit".to_vec();
    m.extend_from_slice(&group.0.to_be_bytes());
    m.extend_from_slice(&node.to_bytes());
    m
}

/// A member's proof of membership: its node id signed with the group's
/// private key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Passport {
    /// The member.
    pub node: NodeId,
    /// Signature over the passport message by a group private key.
    pub signature: Vec<u8>,
}

impl Passport {
    /// Issues a passport for `node` (leader operation).
    pub fn issue(group_key: &KeyPair, group: GroupId, node: NodeId) -> Passport {
        Passport { node, signature: group_key.sign(&passport_message(group, node)) }
    }

    /// Verifies against the group key history (any current or past group
    /// key makes the passport valid, per §IV-A).
    pub fn verify(&self, group: GroupId, history: &[PublicKey]) -> bool {
        let msg = passport_message(group, self.node);
        history.iter().any(|k| k.verify(&msg, &self.signature).is_ok())
    }
}

impl WireEncode for Passport {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        w.put_bytes(&self.signature);
    }

    fn encoded_len(&self) -> usize {
        8 + whisper_net::wire::bytes_len(&self.signature)
    }
}

impl WireDecode for Passport {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Passport { node: r.take()?, signature: r.take_bytes()?.to_vec() })
    }
}

/// Issues a joining accreditation for `node` (leader operation).
pub fn issue_accreditation(group_key: &KeyPair, group: GroupId, node: NodeId) -> Vec<u8> {
    group_key.sign(&accreditation_message(group, node))
}

/// Verifies an accreditation against the group key history.
pub fn verify_accreditation(
    accreditation: &[u8],
    group: GroupId,
    node: NodeId,
    history: &[PublicKey],
) -> bool {
    let msg = accreditation_message(group, node);
    history.iter().any(|k| k.verify(&msg, accreditation).is_ok())
}

/// An invitation to join a private group, delivered out of band (the
/// paper mentions web interfaces, instant messaging, email, or another
/// application on the system-wide PSS).
#[derive(Clone, Debug, PartialEq)]
pub struct Invitation {
    /// The group to join.
    pub group: GroupId,
    /// The group's current public key.
    pub group_key: PublicKey,
    /// Signed accreditation for the invited node.
    pub accreditation: Vec<u8>,
    /// A member to contact for the join handshake (typically a leader).
    pub entry_point: PrivateEntry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;
    use whisper_crypto::rsa::RsaKeySize;

    fn group_key() -> KeyPair {
        KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn group_id_is_stable_and_distinct() {
        let a = GroupId::from_name("alpha");
        assert_eq!(a, GroupId::from_name("alpha"));
        assert_ne!(a, GroupId::from_name("beta"));
    }

    #[test]
    fn group_id_is_domain_separated_from_bare_hashes() {
        // The id must not equal the truncated bare SHA-256 of the name —
        // otherwise any subsystem hashing the same string produces ids
        // that alias groups.
        let bare = Sha256::digest(b"alpha");
        let bare_id = u128::from_be_bytes(bare[..16].try_into().unwrap());
        assert_ne!(GroupId::from_name("alpha").0, bare_id);
    }

    #[test]
    fn group_id_uses_full_128_bits() {
        // Both halves of the id must vary with the name; a regression to
        // a 64-bit hash (upper half constant) would reopen the collision
        // exposure this widening fixed.
        let ids: Vec<GroupId> = ["a", "b", "c", "d"].iter().map(|n| GroupId::from_name(n)).collect();
        let hi: std::collections::BTreeSet<u64> = ids.iter().map(|g| (g.0 >> 64) as u64).collect();
        let lo: std::collections::BTreeSet<u64> = ids.iter().map(|g| g.0 as u64).collect();
        assert_eq!(hi.len(), ids.len(), "upper 64 bits must vary");
        assert_eq!(lo.len(), ids.len(), "lower 64 bits must vary");
    }

    #[test]
    fn group_id_wire_round_trip() {
        let g = GroupId::from_name("round-trip");
        assert_eq!(GroupId::from_wire(&g.to_wire()).unwrap(), g);
        assert_eq!(g.to_wire().len(), 16);
    }

    #[test]
    fn passport_round_trip_and_verification() {
        let gk = group_key();
        let g = GroupId::from_name("chat");
        let p = Passport::issue(&gk, g, NodeId(7));
        assert!(p.verify(g, &[gk.public().clone()]));
        // Wire round trip preserves validity.
        let parsed = Passport::from_wire(&p.to_wire()).unwrap();
        assert!(parsed.verify(g, &[gk.public().clone()]));
    }

    #[test]
    fn passport_invalid_for_other_group_or_node() {
        let gk = group_key();
        let g = GroupId::from_name("chat");
        let p = Passport::issue(&gk, g, NodeId(7));
        assert!(!p.verify(GroupId::from_name("other"), &[gk.public().clone()]));
        let forged = Passport { node: NodeId(8), signature: p.signature.clone() };
        assert!(!forged.verify(g, &[gk.public().clone()]));
    }

    #[test]
    fn passport_valid_under_key_history() {
        let old = group_key();
        let new = KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(2));
        let g = GroupId::from_name("chat");
        let p = Passport::issue(&old, g, NodeId(7));
        let history = vec![old.public().clone(), new.public().clone()];
        assert!(p.verify(g, &history), "old passports stay valid");
        let p_new = Passport::issue(&new, g, NodeId(7));
        assert!(p_new.verify(g, &history));
        assert!(!p.verify(g, &[new.public().clone()]), "without history: invalid");
    }

    #[test]
    fn accreditation_verification() {
        let gk = group_key();
        let g = GroupId::from_name("chat");
        let acc = issue_accreditation(&gk, g, NodeId(9));
        assert!(verify_accreditation(&acc, g, NodeId(9), &[gk.public().clone()]));
        assert!(!verify_accreditation(&acc, g, NodeId(10), &[gk.public().clone()]));
        assert!(!verify_accreditation(b"junk", g, NodeId(9), &[gk.public().clone()]));
    }

    #[test]
    fn credentials_survive_multiple_key_rotations() {
        // Three leadership generations: credentials issued under any of
        // them must verify against the accumulated history — a member
        // that joined in epoch 0 stays a member through every election.
        let g = GroupId::from_name("chat");
        let generations: Vec<KeyPair> = (0..3)
            .map(|i| KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(40 + i)))
            .collect();
        let history: Vec<_> = generations.iter().map(|k| k.public().clone()).collect();
        for (i, gk) in generations.iter().enumerate() {
            let p = Passport::issue(gk, g, NodeId(i as u64));
            assert!(p.verify(g, &history), "generation {i} passport verifies");
            let acc = issue_accreditation(gk, g, NodeId(i as u64));
            assert!(
                verify_accreditation(&acc, g, NodeId(i as u64), &history),
                "generation {i} accreditation verifies"
            );
            // Prefixes of the history that predate the signer reject it:
            // a credential cannot be older than its own key.
            assert!(
                !p.verify(g, &history[..i]),
                "generation {i} passport must not verify under earlier keys only"
            );
        }
    }

    #[test]
    fn revoked_keys_fail_closed() {
        // A compromised generation gets struck from the history; every
        // credential it issued dies with it, while the surviving
        // generations' credentials stay valid.
        let g = GroupId::from_name("chat");
        let honest = group_key();
        let compromised = KeyPair::generate(RsaKeySize::Sim384, &mut StdRng::seed_from_u64(66));
        let full = vec![honest.public().clone(), compromised.public().clone()];
        let revoked = vec![honest.public().clone()];

        let p_bad = Passport::issue(&compromised, g, NodeId(7));
        let acc_bad = issue_accreditation(&compromised, g, NodeId(7));
        assert!(p_bad.verify(g, &full), "valid before revocation");
        assert!(!p_bad.verify(g, &revoked), "passport dies with its key");
        assert!(
            !verify_accreditation(&acc_bad, g, NodeId(7), &revoked),
            "accreditation dies with its key"
        );
        let p_good = Passport::issue(&honest, g, NodeId(8));
        assert!(p_good.verify(g, &revoked), "honest credentials survive");
        assert!(!p_bad.verify(g, &[]), "empty history rejects everything");
    }

    #[test]
    fn passport_and_accreditation_domains_are_separate() {
        // An accreditation must not double as a passport.
        let gk = group_key();
        let g = GroupId::from_name("chat");
        let acc = issue_accreditation(&gk, g, NodeId(9));
        let fake = Passport { node: NodeId(9), signature: acc };
        assert!(!fake.verify(g, &[gk.public().clone()]));
    }
}
