#![warn(missing_docs)]
//! The WHISPER middleware: the paper's contribution.
//!
//! Two layers (paper Fig. 1):
//!
//! * [`wcl`] — the **WHISPER communication layer**: confidential one-way
//!   channels between two nodes over a 4-node onion path `S → A → B → D`,
//!   where `A` comes from the source's connection backlog and `B` is a
//!   P-node advertised by the destination. Guarantees content
//!   confidentiality and relationship anonymity, with automatic retries
//!   over alternative paths (Table I).
//! * [`ppss`] — the **private peer sampling service**: per-group private
//!   views exchanged strictly over WCL routes, group management
//!   (accreditations, passports, leaders, key history), gossip-based
//!   leader election, and persistent paths (the PCP) for applications.
//!
//! [`node::WhisperNode`] assembles the full stack
//! (`Nylon → WCL → PPSS → application`) as a single simulator protocol;
//! applications plug in through [`node::GroupApp`].

pub mod node;
pub mod ppss;
pub mod wcl;

pub use node::{GroupApp, WhisperApi, WhisperConfig, WhisperNode};
pub use ppss::group::{GroupId, Invitation, Passport};
pub use ppss::{Ppss, PpssConfig, PpssEvent, PrivateEntry};
pub use wcl::{DestInfo, GatewayInfo, Wcl, WclConfig, WclEvent};
