//! [`WhisperNode`]: the full protocol stack of Fig. 1 as one simulator
//! protocol — `Nylon PSS → WCL → PPSS → application` — plus the
//! [`GroupApp`] plugin interface that higher-level protocols (gossip
//! aggregation, T-Man, T-Chord, ...) implement to run *inside* a private
//! group.

use crate::ppss::group::{GroupId, Invitation};
use crate::ppss::{Ppss, PpssConfig, PpssEvent, PrivateEntry, TIMER_PCP_REFRESH, TIMER_PPSS_CYCLE};
use crate::wcl::{Wcl, WclConfig, WclEvent, TIMER_WCL_RETRY};
use whisper_crypto::rsa::KeyPair;
use whisper_net::sim::{Ctx, Protocol};
use whisper_net::{Endpoint, NodeId, Payload, SimDuration};
use whisper_pss::{NylonConfig, NylonCore, NylonEvent};

/// Timer token kind reserved for applications (low byte).
pub const TIMER_APP: u64 = 7;

/// Packs an application timer token.
pub fn app_timer_token(token: u64) -> u64 {
    TIMER_APP | (token << 8)
}

/// Configuration of a full WHISPER stack.
#[derive(Clone, Debug, Default)]
pub struct WhisperConfig {
    /// Nylon PSS parameters.
    pub nylon: NylonConfig,
    /// WCL parameters.
    pub wcl: WclConfig,
    /// PPSS parameters.
    pub ppss: PpssConfig,
}

/// Mutable access to the stack's layers, handed to [`GroupApp`]
/// callbacks.
pub struct WhisperApi<'a> {
    /// The Nylon PSS.
    pub nylon: &'a mut NylonCore,
    /// The WCL.
    pub wcl: &'a mut Wcl,
    /// The PPSS.
    pub ppss: &'a mut Ppss,
}

impl WhisperApi<'_> {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.nylon.id()
    }

    /// The private view of `group` (empty slice if not a member).
    pub fn private_view(&self, group: GroupId) -> &[PrivateEntry] {
        self.ppss.group(group).map(|g| g.view()).unwrap_or(&[])
    }

    /// This node's own private-view entry.
    pub fn my_entry(&self) -> PrivateEntry {
        self.ppss.my_entry(self.nylon)
    }

    /// Sends application bytes confidentially to a group member.
    pub fn send_private(
        &mut self,
        ctx: &mut Ctx<'_>,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        self.ppss
            .send_app(ctx, self.nylon, self.wcl, group, to, data, with_reply_entry)
    }

    /// Sends application bytes confidentially to a group member, tracked
    /// through the WCL retry machinery. Returns the message id the app
    /// must resolve via [`Wcl::notify_response`] when its answer arrives,
    /// or `None` when no route could be built.
    pub fn send_private_tracked(
        &mut self,
        ctx: &mut Ctx<'_>,
        group: GroupId,
        to: NodeId,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> Option<u64> {
        self.ppss
            .send_app_tracked(ctx, self.nylon, self.wcl, group, to, data, with_reply_entry)
    }

    /// Sends application bytes to an explicit entry (reply pattern).
    pub fn send_private_to_entry(
        &mut self,
        ctx: &mut Ctx<'_>,
        group: GroupId,
        to: &PrivateEntry,
        data: Vec<u8>,
        with_reply_entry: bool,
    ) -> bool {
        self.ppss
            .send_app_to_entry(ctx, self.nylon, self.wcl, group, to, data, with_reply_entry)
    }

    /// Pins `node` into the persistent connection pool of `group`
    /// (paper §IV-C).
    pub fn make_persistent(&mut self, group: GroupId, node: NodeId) -> bool {
        self.ppss.make_persistent(group, node)
    }

    /// Arms an application timer; it fires as [`GroupApp::on_timer`] with
    /// `token`.
    pub fn set_app_timer(&self, ctx: &mut Ctx<'_>, delay: SimDuration, token: u64) {
        ctx.set_timer(delay, app_timer_token(token));
    }
}

/// A protocol running inside private groups on top of the PPSS.
///
/// All callbacks receive a [`WhisperApi`] to interact with the stack.
/// Default implementations do nothing, so applications override only what
/// they need. Apps must be [`Send`] because the sharded simulator may run
/// a node's callbacks on a worker thread (never two threads at once; see
/// [`whisper_net::sim::Protocol`]).
#[allow(unused_variables)]
pub trait GroupApp: Send + 'static {
    /// The node started.
    fn on_start(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>) {}

    /// The node completed a join handshake (or created a group).
    fn on_joined(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {}

    /// The private view of `group` changed.
    fn on_view_updated(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {}

    /// A confidential application message arrived from a verified group
    /// member.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        from: NodeId,
        data: &[u8],
        reply_entry: Option<PrivateEntry>,
    ) {
    }

    /// A group member was dropped as unreachable.
    fn on_member_unreachable(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        node: NodeId,
    ) {
    }

    /// An application timer armed through [`WhisperApi::set_app_timer`]
    /// fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, token: u64) {}

    /// The node crashed and restarted with full loss of volatile state.
    ///
    /// Apps MUST drop all in-flight bookkeeping here: pending requests
    /// reference WCL message ids that no longer exist after the restart,
    /// so keeping them leaks state that can never resolve (or worse,
    /// resolves against a recycled id). Durable application data may be
    /// kept — the PPSS group journal defines what "durable" means for
    /// the stack itself.
    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>) {}

    /// A verified deletion tombstone destroyed `group`: its state is
    /// gone and it can never come back. Apps drop whatever they keyed on
    /// the group.
    fn on_group_deleted(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {}

    /// Downcasting support so harnesses can inspect application state.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcasting support (harnesses drive application commands
    /// through [`WhisperNode::with_api`]).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A no-op application.
#[derive(Debug, Default)]
pub struct NoApp;

impl GroupApp for NoApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The full WHISPER stack as a simulator protocol.
pub struct WhisperNode {
    nylon: NylonCore,
    wcl: Wcl,
    ppss: Ppss,
    app: Box<dyn GroupApp>,
}

impl std::fmt::Debug for WhisperNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WhisperNode")
            .field("nylon", &self.nylon)
            .field("ppss", &self.ppss)
            .finish()
    }
}

impl WhisperNode {
    /// Assembles a stack with no application plugin.
    pub fn new(cfg: WhisperConfig, keypair: KeyPair) -> Self {
        Self::with_app(cfg, keypair, Box::new(NoApp))
    }

    /// Assembles a stack with an application plugin.
    pub fn with_app(cfg: WhisperConfig, keypair: KeyPair, app: Box<dyn GroupApp>) -> Self {
        WhisperNode {
            nylon: NylonCore::new(cfg.nylon, keypair),
            wcl: Wcl::new(cfg.wcl),
            ppss: Ppss::new(cfg.ppss),
            app,
        }
    }

    /// The Nylon layer.
    pub fn nylon(&self) -> &NylonCore {
        &self.nylon
    }

    /// Mutable Nylon access (bootstrap configuration).
    pub fn nylon_mut(&mut self) -> &mut NylonCore {
        &mut self.nylon
    }

    /// The PPSS layer.
    pub fn ppss(&self) -> &Ppss {
        &self.ppss
    }

    /// Mutable PPSS access (journal fault injection in tests).
    pub fn ppss_mut(&mut self) -> &mut Ppss {
        &mut self.ppss
    }

    /// The WCL layer.
    pub fn wcl(&self) -> &Wcl {
        &self.wcl
    }

    /// The application plugin, downcast to `T`.
    pub fn app<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Creates a private group led by this node (harness entry point).
    pub fn create_group(&mut self, ctx: &mut Ctx<'_>, name: &str) -> GroupId {
        let group = self.ppss.create_group(ctx, &self.nylon, name);
        let WhisperNode { nylon, wcl, ppss, app } = self;
        let mut api = WhisperApi { nylon, wcl, ppss };
        app.on_joined(ctx, &mut api, group);
        group
    }

    /// Issues an invitation for `invitee` (leader operation).
    pub fn invite(&self, group: GroupId, invitee: NodeId) -> Option<Invitation> {
        self.ppss.invite(&self.nylon, group, invitee)
    }

    /// Starts joining a group from an out-of-band invitation.
    pub fn join_group(&mut self, ctx: &mut Ctx<'_>, invitation: Invitation) {
        self.ppss.join_group(ctx, &mut self.nylon, &mut self.wcl, invitation);
    }

    /// Deletes `group` (leader operation): publishes the deletion
    /// tombstone and destroys local state. Returns `false` when this
    /// node is not a leader of the group.
    pub fn delete_group(&mut self, ctx: &mut Ctx<'_>, group: GroupId) -> bool {
        let Some(events) = self.ppss.delete_group(ctx, &mut self.nylon, group) else {
            return false;
        };
        self.dispatch_ppss_events(ctx, events);
        true
    }

    /// Revokes `member`'s admission dots (leader operation).
    pub fn remove_member(&mut self, group: GroupId, member: NodeId) -> bool {
        self.ppss.remove_member(group, member)
    }

    /// Runs `f` with mutable API access (harness entry point for driving
    /// applications).
    pub fn with_api<R>(
        &mut self,
        f: impl FnOnce(&mut WhisperApi<'_>, &mut dyn GroupApp) -> R,
    ) -> R {
        let WhisperNode { nylon, wcl, ppss, app } = self;
        let mut api = WhisperApi { nylon, wcl, ppss };
        f(&mut api, app.as_mut())
    }

    fn dispatch_ppss_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<PpssEvent>) {
        let WhisperNode { nylon, wcl, ppss, app } = self;
        let mut api = WhisperApi { nylon, wcl, ppss };
        for event in events {
            match event {
                PpssEvent::Joined { group } => app.on_joined(ctx, &mut api, group),
                PpssEvent::ViewUpdated { group } => app.on_view_updated(ctx, &mut api, group),
                PpssEvent::AppMessage { group, from, data, reply_entry } => {
                    app.on_message(ctx, &mut api, group, from, &data, reply_entry)
                }
                PpssEvent::MemberUnreachable { group, node } => {
                    app.on_member_unreachable(ctx, &mut api, group, node)
                }
                PpssEvent::BecameLeader { group, .. } => {
                    app.on_view_updated(ctx, &mut api, group)
                }
                PpssEvent::GroupDeleted { group } => {
                    app.on_group_deleted(ctx, &mut api, group)
                }
            }
        }
    }
}

impl Protocol for WhisperNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.nylon.on_start(ctx);
        self.ppss.on_start(ctx);
        let WhisperNode { nylon, wcl, ppss, app } = self;
        let mut api = WhisperApi { nylon, wcl, ppss };
        app.on_start(ctx, &mut api);
    }

    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile state is gone: WCL pending sends, routes and circuits,
        // the Nylon view, NAT session state and the relay descriptor
        // store. The PPSS rebuilds its group table exclusively from a
        // replay of its journal (the node's "disk"); the bootstrap list
        // survives as on-disk configuration, so the node re-converges
        // through its deferred gossip and PPSS cycle timers.
        self.wcl.on_restart(ctx);
        self.nylon.on_restart(ctx);
        self.ppss.on_restart(ctx);
        let WhisperNode { nylon, wcl, ppss, app } = self;
        let mut api = WhisperApi { nylon, wcl, ppss };
        app.on_crash_restart(ctx, &mut api);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, from_ep: Endpoint, data: &Payload) {
        let nylon_events = self.nylon.on_message(ctx, from, from_ep, data);
        for event in nylon_events {
            match event {
                NylonEvent::Payload { data, .. } => {
                    // WCL packets are the only payload type we emit.
                    if let Some(WclEvent::Delivered { payload }) =
                        self.wcl.on_app_payload(ctx, &mut self.nylon, &data)
                    {
                        if let Some(events) = self.ppss.on_delivered(
                            ctx,
                            &mut self.nylon,
                            &mut self.wcl,
                            &payload,
                        ) {
                            self.dispatch_ppss_events(ctx, events);
                        }
                    }
                }
                NylonEvent::GossipCompleted { .. } => {}
                NylonEvent::Descriptor { bytes, .. } => {
                    let events = self.ppss.on_descriptor(ctx, &bytes);
                    self.dispatch_ppss_events(ctx, events);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token & 0xFF {
            TIMER_WCL_RETRY => {
                if let Some(WclEvent::RouteFailed { msg_id, dest, no_alternative }) =
                    self.wcl.on_retry_timer(ctx, &mut self.nylon, token)
                {
                    // Record the failed destination so experiment
                    // harnesses can separate genuine route failures from
                    // destination deaths post hoc (the paper's Table I
                    // footnote excludes the latter).
                    ctx.metrics().sample(
                        if no_alternative { "wcl.failed_dest_noalt" } else { "wcl.failed_dest_exhausted" },
                        dest.0 as f64,
                    );
                    let events = self.ppss.on_route_failed(msg_id, dest);
                    self.dispatch_ppss_events(ctx, events);
                }
            }
            TIMER_PPSS_CYCLE => {
                let events = self.ppss.on_cycle(ctx, &mut self.nylon, &mut self.wcl);
                self.dispatch_ppss_events(ctx, events);
            }
            TIMER_PCP_REFRESH => {
                self.ppss.on_pcp_refresh(ctx, &mut self.nylon, &mut self.wcl);
            }
            TIMER_APP => {
                let app_token = token >> 8;
                let WhisperNode { nylon, wcl, ppss, app } = self;
                let mut api = WhisperApi { nylon, wcl, ppss };
                app.on_timer(ctx, &mut api, app_token);
            }
            _ => {
                let _ = self.nylon.on_timer(ctx, token);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
