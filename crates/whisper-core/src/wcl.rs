//! The WHISPER communication layer (paper §III).
//!
//! A WCL route is a fixed-length onion path `S → A → B → D`:
//!
//! * `A` — any node from the source's connection backlog (a NAT-resilient
//!   path to it is known to be open);
//! * `B` — a **P-node** that can reach `D`: for a NATted destination one
//!   of the Π P-nodes the destination advertises (they hold an open
//!   association towards it), for a public destination any known P-node;
//! * the onion header hides, from every relay, whether its successor is
//!   another mix or the destination, providing relationship anonymity;
//! * the body is AES-encrypted under a key only `D` can recover,
//!   providing content confidentiality.
//!
//! Sends that expect an answer register in a pending table; if no
//! response arrives in time the WCL rebuilds an **alternative path**
//! (different `A` and/or `B`) and retries, up to Π times — the machinery
//! measured by Table I.
//!
//! # Circuit amortization
//!
//! The paper pays the full onion cost — three hybrid seals at the source
//! and one RSA decrypt per hop — on *every* packet. This implementation
//! amortizes it (see `whisper_crypto::circuit` and DESIGN.md § "Circuit
//! amortization"): the first packet on a route is a normal RSA onion
//! whose layers additionally deliver per-hop AES link keys; each hop
//! stores them in a bounded, TTL'd circuit table, and subsequent packets
//! to the same destination are layered AES-CTR only. A relay that has
//! lost its circuit state silently drops the packet; the source's
//! ordinary retry machinery then tears the stale route down and
//! re-establishes over a fresh RSA onion.

use whisper_rand::seq::SliceRandom;
use whisper_rand::Rng;
use std::collections::{BTreeMap, HashMap};
use whisper_crypto::aes::CtrNonce;
use whisper_crypto::circuit::{self, CircuitEntry, CircuitId, CircuitTable, HopSetup, SourceCircuit};
use whisper_crypto::onion::{self, PeelResult};
use whisper_crypto::rsa::PublicKey;
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration, SimTime};
use whisper_pss::transport::SendOutcome;
use whisper_pss::NylonCore;

/// Onion-layer hop address: the node id plus its reachability class —
/// exactly what a real address (public IP vs. relayed endpoint) conveys.
fn hop_addr(node: NodeId, public: bool) -> Vec<u8> {
    let mut out = node.to_bytes().to_vec();
    out.push(public as u8);
    out
}

/// Parses a hop address produced by [`hop_addr`].
fn parse_hop_addr(bytes: &[u8]) -> Option<(NodeId, bool)> {
    if bytes.len() != 9 || bytes[8] > 1 {
        return None;
    }
    Some((NodeId::from_bytes(&bytes[..8])?, bytes[8] == 1))
}

/// Timer token kind used by WCL retry timers (low byte).
pub const TIMER_WCL_RETRY: u64 = 4;

/// Packs a retry-timer token for a message id.
pub fn retry_token(msg_id: u64) -> u64 {
    TIMER_WCL_RETRY | (msg_id << 8)
}

/// Recovers the message id from a retry token.
pub fn msg_id_of_token(token: u64) -> u64 {
    token >> 8
}

/// A P-node gateway able to reach a destination, with its public key
/// (needed to seal the next-to-last onion layer).
#[derive(Clone, Debug, PartialEq)]
pub struct GatewayInfo {
    /// The P-node.
    pub node: NodeId,
    /// Its public key.
    pub key: PublicKey,
}

impl WireEncode for GatewayInfo {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        // Cached canonical blob: no per-send key re-serialization.
        w.put_bytes(self.key.wire_bytes());
    }

    fn encoded_len(&self) -> usize {
        8 + whisper_net::wire::bytes_len(self.key.wire_bytes())
    }
}

impl WireDecode for GatewayInfo {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = r.take()?;
        let key =
            PublicKey::from_bytes(r.take_bytes()?).ok_or(WireError::new("bad gateway key"))?;
        Ok(GatewayInfo { node, key })
    }
}

/// Everything a source must know about a destination to build a WCL
/// route (a PPSS private-view entry carries exactly this).
#[derive(Clone, Debug, PartialEq)]
pub struct DestInfo {
    /// The destination node.
    pub node: NodeId,
    /// Whether it is a P-node.
    pub public: bool,
    /// Its public key.
    pub key: PublicKey,
    /// Π P-nodes that can reach it (empty for public destinations).
    pub gateways: Vec<GatewayInfo>,
}

/// WCL configuration.
#[derive(Clone, Debug)]
pub struct WclConfig {
    /// Number of mixes on a path (2 in the paper: `A` and `B`). Larger
    /// values tolerate `f − 1` colluding mixes at extra cost (§III-A
    /// footnote; exercised by the path-length ablation).
    pub mixes: usize,
    /// How long to wait for a response before retrying over an
    /// alternative path.
    pub retry_timeout: SimDuration,
    /// Maximum retries (Π in the paper).
    pub max_retries: usize,
    /// Whether to amortize onion crypto over cached circuits (see module
    /// docs). When `false`, every packet is a full RSA onion, exactly as
    /// in the paper.
    pub circuits: bool,
    /// How long a relay keeps a circuit alive. The source refreshes its
    /// cached route after half this, so a live conversation never races
    /// relay expiry.
    pub circuit_ttl: SimDuration,
    /// Maximum circuits a relay stores (oldest evicted first).
    pub circuit_capacity: usize,
    /// Adaptive retransmission timeout (Jacobson/Karn): per-destination
    /// `srtt + 4·rttvar` with exponential backoff and deterministic
    /// jitter. When `false`, every retry waits exactly `retry_timeout`
    /// (the paper's fixed timer); `retry_timeout` also seeds the RTO for
    /// destinations with no RTT sample yet.
    pub adaptive_rto: bool,
    /// Lower clamp on the adaptive RTO (guards against a few lucky fast
    /// RTTs producing a hair-trigger timer).
    pub rto_min: SimDuration,
    /// Upper clamp on the adaptive RTO, including backoff.
    pub rto_max: SimDuration,
    /// Relay suspicion score above which [`Wcl`] steers path construction
    /// away from a relay while healthier candidates exist. `0.0` disables
    /// the health tracker.
    pub suspicion_threshold: f64,
    /// Half-life of relay suspicion decay: a relay implicated in a failed
    /// route is forgiven exponentially as evidence ages.
    pub suspicion_half_life: SimDuration,
    /// Consecutive unanswered attempts towards one destination before the
    /// WCL degrades that destination from circuit packets to
    /// RSA-onion-per-packet (`0` disables degradation).
    pub degrade_after: u32,
    /// How long a degraded destination stays degraded without a
    /// successful response before circuit amortization is re-enabled.
    pub degrade_cooldown: SimDuration,
}

impl Default for WclConfig {
    fn default() -> Self {
        WclConfig {
            mixes: 2,
            retry_timeout: SimDuration::from_secs(2),
            max_retries: 3,
            circuits: true,
            circuit_ttl: SimDuration::from_secs(120),
            circuit_capacity: 1024,
            adaptive_rto: true,
            rto_min: SimDuration::from_millis(250),
            rto_max: SimDuration::from_secs(10),
            suspicion_threshold: 1.5,
            suspicion_half_life: SimDuration::from_secs(60),
            degrade_after: 4,
            degrade_cooldown: SimDuration::from_secs(60),
        }
    }
}

/// Upcalls from the WCL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WclEvent {
    /// A confidential payload arrived (this node is the destination). The
    /// source is intentionally *not* identified at this layer.
    Delivered {
        /// The decrypted payload.
        payload: Vec<u8>,
    },
    /// A tracked send gave up after exhausting retries.
    RouteFailed {
        /// The message id passed to [`Wcl::send`].
        msg_id: u64,
        /// The unreachable destination.
        dest: NodeId,
        /// `true` if no alternative path could even be constructed.
        no_alternative: bool,
    },
}

/// The wire format of a WCL packet (inside a Nylon `App` payload).
#[derive(Clone, Debug, PartialEq)]
struct WclPacket {
    header: Vec<u8>,
    body: Vec<u8>,
}

const WCL_TAG: u8 = 0xC1;

impl WireEncode for WclPacket {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(WCL_TAG);
        w.put_bytes(&self.header);
        w.put_bytes(&self.body);
    }

    fn encoded_len(&self) -> usize {
        1 + whisper_net::wire::bytes_len(&self.header) + whisper_net::wire::bytes_len(&self.body)
    }
}

impl WireDecode for WclPacket {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.take_u8()? != WCL_TAG {
            return Err(WireError::new("not a WCL packet"));
        }
        Ok(WclPacket { header: r.take_bytes()?.to_vec(), body: r.take_bytes()?.to_vec() })
    }
}

/// The steady-state wire format once a circuit exists: no RSA header at
/// all, just the hop-local circuit id, the CTR nonce for this link, and
/// the layered body. Every field changes at each hop (the id is
/// hop-local, the nonce is hash-chained, the body loses one CTR layer),
/// so adjacent links share no bytes.
#[derive(Clone, Debug, PartialEq)]
struct CircuitPacket {
    cid: CircuitId,
    nonce: CtrNonce,
    body: Vec<u8>,
}

const CIRCUIT_TAG: u8 = 0xC2;

impl WireEncode for CircuitPacket {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(CIRCUIT_TAG);
        w.put_raw(&self.cid.0);
        w.put_raw(&self.nonce.0);
        w.put_bytes(&self.body);
    }

    fn encoded_len(&self) -> usize {
        1 + 8 + 8 + whisper_net::wire::bytes_len(&self.body)
    }
}

impl WireDecode for CircuitPacket {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.take_u8()? != CIRCUIT_TAG {
            return Err(WireError::new("not a circuit packet"));
        }
        let mut cid = [0u8; 8];
        cid.copy_from_slice(r.take_raw(8)?);
        let mut nonce = [0u8; 8];
        nonce.copy_from_slice(r.take_raw(8)?);
        Ok(CircuitPacket {
            cid: CircuitId(cid),
            nonce: CtrNonce(nonce),
            body: r.take_bytes()?.to_vec(),
        })
    }
}

struct PendingSend {
    dest: DestInfo,
    payload: Vec<u8>,
    attempts: usize,
    used_first_mixes: Vec<NodeId>,
    used_gateways: Vec<NodeId>,
    sent_at: whisper_net::SimTime,
}

/// Per-destination smoothed RTT state (Jacobson's algorithm, the same
/// EWMA every production transport uses). Units are seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RttEstimate {
    srtt: f64,
    rttvar: f64,
}

impl RttEstimate {
    /// Seeds the estimator from the first sample (RFC 6298 §2.2).
    fn first(rtt: f64) -> Self {
        RttEstimate { srtt: rtt, rttvar: rtt / 2.0 }
    }

    /// Folds in a subsequent sample (RFC 6298 §2.3: β = 1/4, α = 1/8).
    fn update(&mut self, rtt: f64) {
        self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - rtt).abs();
        self.srtt = 0.875 * self.srtt + 0.125 * rtt;
    }

    /// The retransmission timeout this estimate implies, before clamping
    /// and backoff.
    fn rto_secs(&self) -> f64 {
        self.srtt + 4.0 * self.rttvar
    }
}

/// Base RTO with exponential backoff: clamp to `[min_us, max_us]`, then
/// double per failed attempt (attempt 1 = no backoff), capped at
/// `max_us`. Pure so the arithmetic is unit-testable without a sim.
fn rto_backoff_us(base_us: u64, attempts: usize, min_us: u64, max_us: u64) -> u64 {
    let clamped = base_us.clamp(min_us, max_us.max(min_us));
    let shift = attempts.saturating_sub(1).min(16) as u32;
    clamped.saturating_mul(1u64 << shift).min(max_us.max(min_us))
}

/// A relay's suspicion score plus when it was last touched; the effective
/// score decays exponentially from `updated`.
#[derive(Clone, Copy, Debug)]
struct Suspicion {
    score: f64,
    updated: SimTime,
}

/// Exponentially decayed suspicion score.
fn decayed_score(score: f64, updated: SimTime, now: SimTime, half_life: SimDuration) -> f64 {
    if half_life == SimDuration::ZERO {
        return score;
    }
    let elapsed = now.since(updated).as_secs_f64();
    score * 0.5_f64.powf(elapsed / half_life.as_secs_f64())
}

/// The source's cached route to one destination: the circuit keys, where
/// to inject packets, and which mixes the route runs through (needed so
/// retries can avoid them).
struct CachedRoute {
    circuit: SourceCircuit,
    first_hop: (NodeId, bool),
    mixes: (NodeId, NodeId),
    expires: whisper_net::SimTime,
}

/// Per-node WCL state.
pub struct Wcl {
    cfg: WclConfig,
    pending: HashMap<u64, PendingSend>,
    next_msg_id: u64,
    /// Source side: destination → cached circuit route. `BTreeMap` so
    /// nothing ever depends on hash iteration order.
    routes: BTreeMap<NodeId, CachedRoute>,
    /// Relay/destination side: circuits this node carries.
    circuits: CircuitTable,
    /// Per-destination smoothed RTT (Karn-filtered: only first-attempt
    /// responses feed it).
    rtt: BTreeMap<NodeId, RttEstimate>,
    /// Cross-message relay health: relays implicated in unanswered routes
    /// accumulate suspicion that decays over time.
    health: BTreeMap<NodeId, Suspicion>,
    /// Consecutive unanswered attempts per destination (drives
    /// degradation).
    fail_streak: BTreeMap<NodeId, u32>,
    /// Destinations currently degraded to RSA-onion-per-packet, with the
    /// instant the degradation lapses.
    degraded_until: BTreeMap<NodeId, SimTime>,
}

impl std::fmt::Debug for Wcl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wcl")
            .field("pending", &self.pending.len())
            .field("routes", &self.routes.len())
            .field("circuits", &self.circuits.len())
            .finish()
    }
}

impl Wcl {
    /// Creates WCL state.
    pub fn new(cfg: WclConfig) -> Self {
        assert!(cfg.mixes >= 1, "at least one mix required");
        let circuits = CircuitTable::new(cfg.circuit_capacity.max(1), cfg.circuit_ttl.as_micros());
        Wcl {
            cfg,
            pending: HashMap::new(),
            next_msg_id: 1,
            routes: BTreeMap::new(),
            circuits,
            rtt: BTreeMap::new(),
            health: BTreeMap::new(),
            fail_streak: BTreeMap::new(),
            degraded_until: BTreeMap::new(),
        }
    }

    /// Models a process restart with full volatile-state loss: pending
    /// sends, cached routes, carried circuits, RTT estimates, relay
    /// health and degradation state all vanish. Invoked from
    /// `WhisperNode::on_crash_restart` when a scripted
    /// [`whisper_net::fault::Fault::CrashRestart`] brings the node back.
    pub fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        if !self.pending.is_empty() {
            ctx.metrics().count("wcl.restart_pending_dropped", self.pending.len() as u64);
        }
        self.pending.clear();
        self.routes.clear();
        self.circuits.clear();
        self.rtt.clear();
        self.health.clear();
        self.fail_streak.clear();
        self.degraded_until.clear();
    }

    /// Drops all circuit state — the relay table and any cached source
    /// routes — as a node restart would. Test hook for the miss-and-
    /// rebuild path; never called by the protocol itself.
    pub fn flush_circuits(&mut self) {
        self.circuits.clear();
        self.routes.clear();
    }

    /// Number of circuits this node currently carries for others.
    pub fn carried_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// The configuration.
    pub fn config(&self) -> &WclConfig {
        &self.cfg
    }

    /// Allocates a fresh message id for a tracked send.
    pub fn alloc_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Sends `payload` confidentially to `dest` without tracking
    /// (fire-and-forget, used for responses).
    ///
    /// Returns `false` if no path could be constructed.
    pub fn send_untracked(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: &[u8],
    ) -> bool {
        self.try_send(ctx, nylon, dest, payload, &[], &[]).is_some()
    }

    /// Sends `payload` confidentially to `dest`, tracking it for retries:
    /// if [`Wcl::notify_response`] is not called with `msg_id` before the
    /// retry timeout, an alternative path is tried (up to `max_retries`).
    ///
    /// Counts the Table I statistics: `wcl.route_first_success`,
    /// `wcl.route_alt_success`, `wcl.route_no_alt`,
    /// `wcl.route_exhausted`.
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: Vec<u8>,
        msg_id: u64,
    ) -> bool {
        ctx.metrics().count("wcl.route_attempts", 1);
        let first = self.try_send(ctx, nylon, dest, &payload, &[], &[]);
        let (used_a, used_b) = match first {
            Some((a, b)) => (vec![a], vec![b]),
            None => {
                // Could not even build the first path; treated as "no
                // alternative" immediately.
                ctx.metrics().count("wcl.route_no_alt", 1);
                return false;
            }
        };
        self.pending.insert(
            msg_id,
            PendingSend {
                dest: dest.clone(),
                payload,
                attempts: 1,
                used_first_mixes: used_a,
                used_gateways: used_b,
                sent_at: ctx.now(),
            },
        );
        let delay = self.retry_delay(ctx, dest.node, 1);
        ctx.set_timer(delay, retry_token(msg_id));
        true
    }

    /// The retransmission timeout for the next attempt towards `dest`.
    ///
    /// Fixed mode returns `retry_timeout` unchanged (and draws no
    /// randomness, so pre-existing traces replay identically). Adaptive
    /// mode computes `srtt + 4·rttvar` (seeded from `retry_timeout` when
    /// no sample exists), clamps to `[rto_min, rto_max]`, doubles per
    /// failed attempt, and applies ±12.5% deterministic jitter from the
    /// sim RNG so synchronized failures do not retry in lockstep.
    fn retry_delay(&self, ctx: &mut Ctx<'_>, dest: NodeId, attempts: usize) -> SimDuration {
        if !self.cfg.adaptive_rto {
            return self.cfg.retry_timeout;
        }
        let base_us = self
            .rtt
            .get(&dest)
            .map(|e| (e.rto_secs() * 1e6) as u64)
            .unwrap_or_else(|| self.cfg.retry_timeout.as_micros());
        let backed = rto_backoff_us(
            base_us,
            attempts,
            self.cfg.rto_min.as_micros(),
            self.cfg.rto_max.as_micros(),
        );
        let jitter = ctx.rng().gen_range(0..(backed / 4).max(1));
        let us = backed - backed / 8 + jitter;
        ctx.metrics().sample("wcl.rto_s", us as f64 / 1e6);
        SimDuration::from_micros(us)
    }

    /// Tells the WCL that the request behind `msg_id` got its answer;
    /// updates the Table I counters, the RTT estimator (Karn's rule:
    /// only first-attempt responses are unambiguous) and the relay
    /// health / degradation state for the route that worked.
    pub fn notify_response(&mut self, ctx: &mut Ctx<'_>, msg_id: u64) {
        if let Some(p) = self.pending.remove(&msg_id) {
            // Fig. 7's "total rtt": request out, answer back, in
            // simulated seconds.
            let rtt = ctx.now().since(p.sent_at).as_secs_f64();
            ctx.metrics().sample("wcl.rtt_s", rtt);
            if p.attempts <= 1 {
                ctx.metrics().count("wcl.route_first_success", 1);
                self.rtt
                    .entry(p.dest.node)
                    .and_modify(|e| e.update(rtt))
                    .or_insert_with(|| RttEstimate::first(rtt));
            } else {
                ctx.metrics().count("wcl.route_alt_success", 1);
                // Route-repair latency: first attempt out → answer over
                // the repaired path back.
                ctx.metrics().sample("wcl.repair_s", rtt);
            }
            // The relays that carried the answered attempt are healthy.
            if let Some(&a) = p.used_first_mixes.last() {
                self.health.remove(&a);
            }
            if let Some(&b) = p.used_gateways.last() {
                self.health.remove(&b);
            }
            self.fail_streak.remove(&p.dest.node);
            if self.degraded_until.remove(&p.dest.node).is_some() {
                ctx.metrics().count("wcl.degraded_exit", 1);
            }
        }
    }

    /// Whether `msg_id` is still awaiting a response.
    pub fn is_pending(&self, msg_id: u64) -> bool {
        self.pending.contains_key(&msg_id)
    }

    /// Handles a retry timer. Returns a [`WclEvent::RouteFailed`] when the
    /// send is abandoned.
    pub fn on_retry_timer(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        token: u64,
    ) -> Option<WclEvent> {
        let msg_id = msg_id_of_token(token);
        let mut p = self.pending.remove(&msg_id)?;
        let now = ctx.now();
        // The unanswered route is suspect — a relay may have lost its
        // circuit state or a link may have died — so tear down the cached
        // circuit before (re)building: the retry must not reuse it.
        if self.routes.remove(&p.dest.node).is_some() {
            ctx.metrics().count("wcl.circuit_teardown", 1);
        }
        // Implicate the relays of the unanswered attempt: their suspicion
        // biases future path construction away from them until it decays.
        if let Some(&a) = p.used_first_mixes.last() {
            self.penalize_relay(ctx, a, now);
        }
        if let Some(&b) = p.used_gateways.last() {
            self.penalize_relay(ctx, b, now);
        }
        // Degradation ladder: after `degrade_after` consecutive
        // unanswered attempts the destination falls back from circuit
        // packets to RSA-onion-per-packet — a relay that keeps losing
        // circuit state cannot hurt a route that carries no circuit.
        let streak = self.fail_streak.entry(p.dest.node).or_insert(0);
        *streak += 1;
        if self.cfg.degrade_after > 0
            && *streak >= self.cfg.degrade_after
            && !self.degraded(p.dest.node, now)
        {
            self.degraded_until.insert(p.dest.node, now + self.cfg.degrade_cooldown);
            ctx.metrics().count("wcl.degraded_enter", 1);
        }
        if p.attempts > self.cfg.max_retries {
            ctx.metrics().count("wcl.route_exhausted", 1);
            return Some(WclEvent::RouteFailed {
                msg_id,
                dest: p.dest.node,
                no_alternative: false,
            });
        }
        let retry = self.try_send(
            ctx,
            nylon,
            &p.dest,
            &p.payload,
            &p.used_first_mixes,
            &p.used_gateways,
        );
        match retry {
            Some((a, b)) => {
                ctx.metrics().count("wcl.route_retry", 1);
                p.attempts += 1;
                p.used_first_mixes.push(a);
                p.used_gateways.push(b);
                let attempts = p.attempts;
                let dest = p.dest.node;
                self.pending.insert(msg_id, p);
                let delay = self.retry_delay(ctx, dest, attempts);
                ctx.set_timer(delay, retry_token(msg_id));
                None
            }
            None => {
                ctx.metrics().count("wcl.route_no_alt", 1);
                Some(WclEvent::RouteFailed {
                    msg_id,
                    dest: p.dest.node,
                    no_alternative: true,
                })
            }
        }
    }

    /// Bumps `relay`'s suspicion score (decayed first, then +1).
    fn penalize_relay(&mut self, ctx: &mut Ctx<'_>, relay: NodeId, now: SimTime) {
        let half_life = self.cfg.suspicion_half_life;
        let s = self.health.entry(relay).or_insert(Suspicion { score: 0.0, updated: now });
        s.score = decayed_score(s.score, s.updated, now, half_life) + 1.0;
        s.updated = now;
        ctx.metrics().count("wcl.relay_suspected", 1);
    }

    /// The current (decayed) suspicion score of `relay`.
    pub fn relay_suspicion(&self, relay: NodeId, now: SimTime) -> f64 {
        self.health
            .get(&relay)
            .map(|s| decayed_score(s.score, s.updated, now, self.cfg.suspicion_half_life))
            .unwrap_or(0.0)
    }

    /// Whether `dest` is currently degraded to RSA-onion-per-packet.
    pub fn degraded(&self, dest: NodeId, now: SimTime) -> bool {
        self.degraded_until.get(&dest).is_some_and(|&until| until > now)
    }

    /// Whether a cached circuit route to `dest` exists (test hook).
    pub fn has_cached_route(&self, dest: NodeId) -> bool {
        self.routes.contains_key(&dest)
    }

    /// The adaptive RTO estimate for `dest` in seconds, if any RTT sample
    /// has been taken (test/diagnostic hook; unclamped, no backoff).
    pub fn rto_estimate_secs(&self, dest: NodeId) -> Option<f64> {
        self.rtt.get(&dest).map(|e| e.rto_secs())
    }

    /// Builds a path avoiding `avoid_a` / `avoid_b` and sends. Returns the
    /// `(A, B)` pair used, or `None` when no path can be constructed.
    fn try_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: &[u8],
        avoid_a: &[NodeId],
        avoid_b: &[NodeId],
    ) -> Option<(NodeId, NodeId)> {
        let me = nylon.id();
        let now = ctx.now();

        // Degradation ladder: a destination with repeated circuit rebuild
        // failures rides plain RSA onions (no fast path, no circuit
        // establishment) until a response arrives or the cooldown lapses.
        let degraded = match self.degraded_until.get(&dest.node) {
            Some(&until) if until > now => {
                ctx.metrics().count("wcl.degraded_send", 1);
                true
            }
            Some(_) => {
                self.degraded_until.remove(&dest.node);
                self.fail_streak.remove(&dest.node);
                false
            }
            None => false,
        };

        // Steady-state fast path: a cached circuit carries the packet with
        // three CTR layers and zero RSA. Skipped when a retry is steering
        // away from specific mixes — those want a *different* path.
        if self.cfg.circuits && !degraded && avoid_a.is_empty() && avoid_b.is_empty() {
            let cached = self
                .routes
                .get(&dest.node)
                .map(|r| (r.circuit.clone(), r.first_hop, r.mixes, r.expires));
            if let Some((src_circuit, first_hop, mixes, expires)) = cached {
                if expires > now {
                    let nonce0 = CtrNonce::random(ctx.rng());
                    let cost_before = whisper_crypto::costs::snapshot();
                    let wall_started = std::time::Instant::now();
                    let body = circuit::seal_layers(&src_circuit.keys, &nonce0, payload);
                    let cost = whisper_crypto::costs::snapshot().since(cost_before);
                    ctx.prof_crypto_model_ns(wall_started.elapsed().as_nanos() as u64);
                    sample_crypto_cost(ctx, nylon.is_public(), &cost);
                    ctx.metrics().sample(
                        "wcl.circuit_seal_us",
                        cost.aes_model_ns() as f64 / 1000.0,
                    );
                    ctx.metrics().sample(
                        "wcl.circuit_seal_wall_us",
                        wall_started.elapsed().as_nanos() as f64 / 1000.0,
                    );
                    let wire = CircuitPacket {
                        cid: src_circuit.first_cid,
                        nonce: nonce0,
                        body,
                    }
                    .to_wire();
                    let outcome = nylon.send_app(ctx, first_hop.0, first_hop.1, &[], wire);
                    if outcome != SendOutcome::Failed {
                        ctx.metrics().count("wcl.circuit_hit", 1);
                        return Some(mixes);
                    }
                    // The link into the circuit is gone; tear the route
                    // down and fall through to a fresh RSA onion.
                    ctx.metrics().count("wcl.circuit_teardown", 1);
                }
                self.routes.remove(&dest.node);
            }
        }

        // Gateway B: a P-node able to reach D. For NATted destinations it
        // must come from the destination's advertised gateways; public
        // destinations accept any P-node we know (paper §IV-B), preferring
        // our CB publics.
        let mut b_candidates: Vec<GatewayInfo> = if dest.public {
            let mut from_cb: Vec<GatewayInfo> = nylon
                .cb()
                .publics()
                .filter(|e| e.node != dest.node && e.node != me)
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .collect();
            if from_cb.is_empty() {
                from_cb = dest.gateways.clone();
            }
            from_cb
        } else {
            dest.gateways.clone()
        };
        b_candidates.retain(|g| !avoid_b.contains(&g.node) && g.node != me && g.node != dest.node);

        // First mix A: a CB entry with a known key and a still-open path
        // from us. Falls back to B candidates as a degenerate choice only
        // if the CB is empty (bootstrap corner).
        let mut a_candidates: Vec<(NodeId, bool, PublicKey)> = nylon
            .cb()
            .iter()
            .filter(|e| {
                e.node != dest.node
                    && e.node != me
                    && !avoid_a.contains(&e.node)
                    && e.key.is_some()
                    && nylon.can_reach_directly(e.node, e.public, now)
            })
            .map(|e| (e.node, e.public, e.key.clone().expect("filtered")))
            .collect();

        // Relay health bias: while healthier candidates exist, drop the
        // ones whose decayed suspicion exceeds the threshold. Never
        // empties a candidate list — a suspect relay beats no relay.
        if self.cfg.suspicion_threshold > 0.0 {
            let threshold = self.cfg.suspicion_threshold;
            let healthy_b: Vec<GatewayInfo> = b_candidates
                .iter()
                .filter(|g| self.relay_suspicion(g.node, now) < threshold)
                .cloned()
                .collect();
            if !healthy_b.is_empty() && healthy_b.len() < b_candidates.len() {
                ctx.metrics()
                    .count("wcl.relay_avoided", (b_candidates.len() - healthy_b.len()) as u64);
                b_candidates = healthy_b;
            }
            let healthy_a: Vec<(NodeId, bool, PublicKey)> = a_candidates
                .iter()
                .filter(|(n, _, _)| self.relay_suspicion(*n, now) < threshold)
                .cloned()
                .collect();
            if !healthy_a.is_empty() && healthy_a.len() < a_candidates.len() {
                ctx.metrics()
                    .count("wcl.relay_avoided", (a_candidates.len() - healthy_a.len()) as u64);
                a_candidates = healthy_a;
            }
        }

        // Mixes must be distinct: drop A candidates equal to the chosen B
        // later; choose B first for simplicity.
        let b = {
            let mut rngs: Vec<&GatewayInfo> = b_candidates.iter().collect();
            rngs.shuffle(ctx.rng());
            rngs.first().map(|g| (*g).clone())
        }?;
        a_candidates.retain(|(n, _, _)| *n != b.node);
        if a_candidates.is_empty() {
            return None;
        }
        let a = a_candidates[ctx.rng().gen_range(0..a_candidates.len())].clone();

        // Intermediate extra mixes for paths longer than 2 (ablation):
        // additional P-nodes from the CB between A and B.
        let mut path: Vec<(PublicKey, Vec<u8>)> = Vec::with_capacity(self.cfg.mixes + 1);
        path.push((a.2.clone(), hop_addr(a.0, a.1)));
        if self.cfg.mixes > 2 {
            let extras: Vec<GatewayInfo> = nylon
                .cb()
                .publics()
                .filter(|e| {
                    e.node != a.0 && e.node != b.node && e.node != dest.node && e.node != me
                })
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .take(self.cfg.mixes - 2)
                .collect();
            if extras.len() < self.cfg.mixes - 2 {
                return None;
            }
            for extra in extras {
                path.push((extra.key, hop_addr(extra.node, true)));
            }
        }
        path.push((b.key.clone(), hop_addr(b.node, true)));
        path.push((dest.key.clone(), hop_addr(dest.node, dest.public)));

        let cost_before = whisper_crypto::costs::snapshot();
        let build_started = std::time::Instant::now();
        // With circuits enabled the onion doubles as circuit
        // establishment: each layer carries that hop's link key and
        // circuit ids. Degraded destinations get a plain onion — no
        // circuit to lose.
        let established = if self.cfg.circuits && !degraded {
            let (src_circuit, setups) = circuit::establish(path.len(), ctx.rng());
            Some((src_circuit, setups))
        } else {
            None
        };
        let built = match &established {
            Some((_, setups)) => {
                let exts: Vec<Vec<u8>> = setups.iter().map(|s| s.encode()).collect();
                onion::build_onion_ext(&path, payload, &exts, ctx.rng())
            }
            None => onion::build_onion(&path, payload, ctx.rng()),
        };
        let packet = match built {
            Ok(p) => p,
            Err(_) => return None,
        };
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        ctx.prof_crypto_model_ns(build_started.elapsed().as_nanos() as u64);
        // Primary sample is the deterministic model cost; wall-clock is
        // kept as a secondary, explicitly excluded from determinism
        // traces (see DESIGN.md § "Deterministic crypto accounting").
        ctx.metrics().sample(
            "wcl.build_path_us",
            (cost.aes_model_ns() + cost.rsa_model_ns()) as f64 / 1000.0,
        );
        ctx.metrics().sample(
            "wcl.build_path_wall_us",
            build_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        let wire = WclPacket { header: packet.header, body: packet.body }.to_wire();
        ctx.metrics().count("wcl.paths_built", 1);
        let outcome = nylon.send_app(ctx, a.0, a.1, &[], wire);
        if outcome == SendOutcome::Failed {
            return None;
        }
        if let Some((src_circuit, _)) = established {
            // Cache for half the relay-side TTL: the source always
            // re-establishes well before any relay forgets the circuit.
            let expires =
                now + SimDuration::from_micros(self.cfg.circuit_ttl.as_micros() / 2);
            self.routes.insert(
                dest.node,
                CachedRoute {
                    circuit: src_circuit,
                    first_hop: (a.0, a.1),
                    mixes: (a.0, b.node),
                    expires,
                },
            );
            ctx.metrics().count("wcl.circuit_established", 1);
        }
        Some((a.0, b.node))
    }

    /// Processes an incoming Nylon `App` payload. If it is a WCL onion
    /// packet this node either relays it (one onion layer peeled) or
    /// delivers it (destination layer); if it is a circuit packet the node
    /// strips one CTR layer and forwards or delivers.
    ///
    /// Returns `None` if the payload is neither (the caller may try other
    /// parsers).
    pub fn on_app_payload(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        match data.first() {
            Some(&WCL_TAG) => self.on_onion_packet(ctx, nylon, data),
            Some(&CIRCUIT_TAG) => self.on_circuit_packet(ctx, nylon, data),
            _ => None,
        }
    }

    /// Handles a full RSA onion packet (first packet of a route, or every
    /// packet when circuits are disabled).
    fn on_onion_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        let packet = ctx.prof_decode(|| WclPacket::from_wire(data)).ok()?;
        let keypair = nylon.keypair().clone();
        let cost_before = whisper_crypto::costs::snapshot();
        let peel_started = std::time::Instant::now();
        let peeled = onion::peel_with_body(&keypair, &packet.header, &packet.body);
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        ctx.prof_crypto_model_ns(peel_started.elapsed().as_nanos() as u64);
        // Primary sample is the deterministic model cost; wall-clock is
        // kept as a secondary, excluded from determinism traces.
        ctx.metrics().sample(
            "wcl.peel_us",
            (cost.aes_model_ns() + cost.rsa_model_ns()) as f64 / 1000.0,
        );
        ctx.metrics().sample(
            "wcl.peel_wall_us",
            peel_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        match peeled {
            Ok(PeelResult::Relay { next_hop, header, ext }) => {
                let Some((next, next_public)) = parse_hop_addr(&next_hop) else {
                    ctx.metrics().count("wcl.bad_next_hop", 1);
                    return None;
                };
                self.install_circuit(ctx, &ext, next_hop.clone());
                ctx.metrics().count("wcl.relayed", 1);
                let fwd = WclPacket { header, body: packet.body }.to_wire();
                // A mix reaches the next hop through an existing contact
                // (B → D relies on D's earlier ping) or directly when the
                // next hop is public. No rendezvous chains here: a mix
                // must not interrogate the network about the next hop.
                let outcome = nylon.send_app(ctx, next, next_public, &[], fwd);
                if outcome == SendOutcome::Failed {
                    ctx.metrics().count("wcl.relay_drop", 1);
                }
                None
            }
            Ok(PeelResult::Destination { payload, ext }) => {
                self.install_circuit(ctx, &ext, Vec::new());
                ctx.metrics().count("wcl.delivered", 1);
                Some(WclEvent::Delivered { payload })
            }
            Err(_) => {
                ctx.metrics().count("wcl.peel_failed", 1);
                None
            }
        }
    }

    /// Stores the circuit state a just-peeled onion layer delivered for
    /// this node (no-op for layers without an extension).
    fn install_circuit(&mut self, ctx: &mut Ctx<'_>, ext: &[u8], next_hop: Vec<u8>) {
        if ext.is_empty() {
            return;
        }
        let Some(setup) = HopSetup::decode(ext) else {
            ctx.metrics().count("wcl.circuit_bad_setup", 1);
            return;
        };
        let entry = CircuitEntry::new(setup.key, next_hop, setup.cid_out);
        self.circuits.insert(ctx.now().as_micros(), setup.cid_in, entry);
        ctx.metrics().count("wcl.circuit_installed", 1);
    }

    /// Handles a steady-state circuit packet: one CTR layer stripped, then
    /// forwarded under the outbound circuit id or delivered. Unknown or
    /// expired circuit ids are silently dropped — the source's retry
    /// machinery recovers by re-establishing over RSA.
    fn on_circuit_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        let packet = ctx.prof_decode(|| CircuitPacket::from_wire(data)).ok()?;
        let now_us = ctx.now().as_micros();
        let Some(entry) = self.circuits.lookup(now_us, packet.cid) else {
            ctx.metrics().count("wcl.circuit_miss_drop", 1);
            return None;
        };
        let cost_before = whisper_crypto::costs::snapshot();
        let wall_started = std::time::Instant::now();
        // The packet body is uniquely owned here, so the layer is peeled
        // in place — via the entry's cached key schedule, so the
        // steady-state relay path pays neither an output-body allocation
        // nor a per-packet AES key expansion (the entry is borrowed, not
        // cloned: cloning would copy the ~368-byte schedule per packet).
        let mut body = packet.body;
        entry.peel_in_place(&packet.nonce, &mut body);
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        ctx.prof_crypto_model_ns(wall_started.elapsed().as_nanos() as u64);
        ctx.metrics().sample("wcl.circuit_fwd_us", cost.aes_model_ns() as f64 / 1000.0);
        ctx.metrics().sample(
            "wcl.circuit_fwd_wall_us",
            wall_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        match entry.cid_out() {
            Some(cid_out) => {
                let Some((next, next_public)) = parse_hop_addr(entry.next_hop()) else {
                    ctx.metrics().count("wcl.bad_next_hop", 1);
                    return None;
                };
                ctx.metrics().count("wcl.relayed", 1);
                ctx.metrics().count("wcl.circuit_forwarded", 1);
                let fwd = CircuitPacket {
                    cid: cid_out,
                    nonce: circuit::next_nonce(&packet.nonce),
                    body,
                }
                .to_wire();
                let outcome = nylon.send_app(ctx, next, next_public, &[], fwd);
                if outcome == SendOutcome::Failed {
                    ctx.metrics().count("wcl.relay_drop", 1);
                }
                None
            }
            None => {
                ctx.metrics().count("wcl.delivered", 1);
                ctx.metrics().count("wcl.circuit_delivered", 1);
                Some(WclEvent::Delivered { payload: body })
            }
        }
    }
}

/// Samples the per-class crypto cost metrics (Table II) from a
/// [`whisper_crypto::costs::CryptoCosts`] delta, using the deterministic
/// model nanoseconds so traces are host-independent.
fn sample_crypto_cost(
    ctx: &mut Ctx<'_>,
    is_public: bool,
    cost: &whisper_crypto::costs::CryptoCosts,
) {
    ctx.metrics().sample(
        if is_public { "crypto.rsa_us.pnode" } else { "crypto.rsa_us.nnode" },
        cost.rsa_model_ns() as f64 / 1000.0,
    );
    ctx.metrics().sample(
        if is_public { "crypto.aes_us.pnode" } else { "crypto.aes_us.nnode" },
        cost.aes_model_ns() as f64 / 1000.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_token_round_trip() {
        let t = retry_token(42);
        assert_eq!(t & 0xFF, TIMER_WCL_RETRY);
        assert_eq!(msg_id_of_token(t), 42);
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut wcl = Wcl::new(WclConfig::default());
        let a = wcl.alloc_msg_id();
        let b = wcl.alloc_msg_id();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one mix")]
    fn zero_mixes_rejected() {
        Wcl::new(WclConfig { mixes: 0, ..WclConfig::default() });
    }

    #[test]
    fn wcl_packet_wire_round_trip() {
        let p = WclPacket { header: vec![1, 2, 3], body: vec![4, 5] };
        let bytes = p.to_wire();
        assert_eq!(WclPacket::from_wire(&bytes).unwrap(), p);
        assert!(WclPacket::from_wire(&[0xFF, 0, 0]).is_err());
    }

    #[test]
    fn circuit_packet_wire_round_trip() {
        let p = CircuitPacket {
            cid: CircuitId([7; 8]),
            nonce: CtrNonce([9; 8]),
            body: vec![1, 2, 3, 4],
        };
        let bytes = p.to_wire();
        assert_eq!(bytes[0], CIRCUIT_TAG);
        assert_eq!(CircuitPacket::from_wire(&bytes).unwrap(), p);
        // The two WCL wire formats never parse as each other.
        assert!(WclPacket::from_wire(&bytes).is_err());
        let onion = WclPacket { header: vec![1], body: vec![2] }.to_wire();
        assert!(CircuitPacket::from_wire(&onion).is_err());
    }

    #[test]
    fn rtt_estimator_follows_jacobson() {
        let mut e = RttEstimate::first(0.1);
        assert!((e.srtt - 0.1).abs() < 1e-12);
        assert!((e.rttvar - 0.05).abs() < 1e-12);
        assert!((e.rto_secs() - 0.3).abs() < 1e-12, "srtt + 4·rttvar");
        // A stream of identical samples shrinks the variance towards 0,
        // so the RTO converges on srtt.
        for _ in 0..200 {
            e.update(0.1);
        }
        assert!((e.srtt - 0.1).abs() < 1e-6);
        assert!(e.rto_secs() < 0.11, "variance decays on a stable path");
        // A spike widens the variance again.
        e.update(0.5);
        assert!(e.rto_secs() > 0.4, "rto reacts to a late sample");
    }

    #[test]
    fn rto_backoff_clamps_and_doubles() {
        let (min, max) = (250_000u64, 10_000_000u64);
        assert_eq!(rto_backoff_us(1_000, 1, min, max), min, "clamped up");
        assert_eq!(rto_backoff_us(20_000_000, 1, min, max), max, "clamped down");
        assert_eq!(rto_backoff_us(400_000, 1, min, max), 400_000);
        assert_eq!(rto_backoff_us(400_000, 2, min, max), 800_000);
        assert_eq!(rto_backoff_us(400_000, 3, min, max), 1_600_000);
        assert_eq!(rto_backoff_us(400_000, 9, min, max), max, "backoff capped");
        // Degenerate attempt counts do not overflow.
        assert_eq!(rto_backoff_us(400_000, 0, min, max), 400_000);
        assert_eq!(rto_backoff_us(max, 10_000, min, max), max);
    }

    #[test]
    fn suspicion_decays_with_half_life() {
        let t0 = SimTime::ZERO;
        let hl = SimDuration::from_secs(60);
        assert_eq!(decayed_score(2.0, t0, t0, hl), 2.0);
        let after_hl = t0 + hl;
        assert!((decayed_score(2.0, t0, after_hl, hl) - 1.0).abs() < 1e-9);
        let after_2hl = t0 + hl + hl;
        assert!((decayed_score(2.0, t0, after_2hl, hl) - 0.5).abs() < 1e-9);
        // Zero half-life = no decay (degenerate config, not division).
        assert_eq!(decayed_score(2.0, t0, after_2hl, SimDuration::ZERO), 2.0);
    }

    #[test]
    fn flush_circuits_clears_all_state() {
        let mut wcl = Wcl::new(WclConfig::default());
        wcl.circuits.insert(
            0,
            CircuitId([1; 8]),
            CircuitEntry::new(whisper_crypto::aes::AesKey([0; 16]), vec![], None),
        );
        assert_eq!(wcl.carried_circuits(), 1);
        wcl.flush_circuits();
        assert_eq!(wcl.carried_circuits(), 0);
        assert!(wcl.routes.is_empty());
    }
}
