//! The WHISPER communication layer (paper §III).
//!
//! A WCL route is a fixed-length onion path `S → A → B → D`:
//!
//! * `A` — any node from the source's connection backlog (a NAT-resilient
//!   path to it is known to be open);
//! * `B` — a **P-node** that can reach `D`: for a NATted destination one
//!   of the Π P-nodes the destination advertises (they hold an open
//!   association towards it), for a public destination any known P-node;
//! * the onion header hides, from every relay, whether its successor is
//!   another mix or the destination, providing relationship anonymity;
//! * the body is AES-encrypted under a key only `D` can recover,
//!   providing content confidentiality.
//!
//! Sends that expect an answer register in a pending table; if no
//! response arrives in time the WCL rebuilds an **alternative path**
//! (different `A` and/or `B`) and retries, up to Π times — the machinery
//! measured by Table I.
//!
//! # Circuit amortization
//!
//! The paper pays the full onion cost — three hybrid seals at the source
//! and one RSA decrypt per hop — on *every* packet. This implementation
//! amortizes it (see `whisper_crypto::circuit` and DESIGN.md § "Circuit
//! amortization"): the first packet on a route is a normal RSA onion
//! whose layers additionally deliver per-hop AES link keys; each hop
//! stores them in a bounded, TTL'd circuit table, and subsequent packets
//! to the same destination are layered AES-CTR only. A relay that has
//! lost its circuit state silently drops the packet; the source's
//! ordinary retry machinery then tears the stale route down and
//! re-establishes over a fresh RSA onion.

use whisper_rand::seq::SliceRandom;
use whisper_rand::Rng;
use std::collections::{BTreeMap, HashMap};
use whisper_crypto::aes::CtrNonce;
use whisper_crypto::circuit::{self, CircuitEntry, CircuitId, CircuitTable, HopSetup, SourceCircuit};
use whisper_crypto::onion::{self, PeelResult};
use whisper_crypto::rsa::PublicKey;
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration};
use whisper_pss::transport::SendOutcome;
use whisper_pss::NylonCore;

/// Onion-layer hop address: the node id plus its reachability class —
/// exactly what a real address (public IP vs. relayed endpoint) conveys.
fn hop_addr(node: NodeId, public: bool) -> Vec<u8> {
    let mut out = node.to_bytes().to_vec();
    out.push(public as u8);
    out
}

/// Parses a hop address produced by [`hop_addr`].
fn parse_hop_addr(bytes: &[u8]) -> Option<(NodeId, bool)> {
    if bytes.len() != 9 || bytes[8] > 1 {
        return None;
    }
    Some((NodeId::from_bytes(&bytes[..8])?, bytes[8] == 1))
}

/// Timer token kind used by WCL retry timers (low byte).
pub const TIMER_WCL_RETRY: u64 = 4;

/// Packs a retry-timer token for a message id.
pub fn retry_token(msg_id: u64) -> u64 {
    TIMER_WCL_RETRY | (msg_id << 8)
}

/// Recovers the message id from a retry token.
pub fn msg_id_of_token(token: u64) -> u64 {
    token >> 8
}

/// A P-node gateway able to reach a destination, with its public key
/// (needed to seal the next-to-last onion layer).
#[derive(Clone, Debug, PartialEq)]
pub struct GatewayInfo {
    /// The P-node.
    pub node: NodeId,
    /// Its public key.
    pub key: PublicKey,
}

impl WireEncode for GatewayInfo {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        w.put_bytes(&self.key.to_bytes());
    }
}

impl WireDecode for GatewayInfo {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = r.take()?;
        let key =
            PublicKey::from_bytes(r.take_bytes()?).ok_or(WireError::new("bad gateway key"))?;
        Ok(GatewayInfo { node, key })
    }
}

/// Everything a source must know about a destination to build a WCL
/// route (a PPSS private-view entry carries exactly this).
#[derive(Clone, Debug, PartialEq)]
pub struct DestInfo {
    /// The destination node.
    pub node: NodeId,
    /// Whether it is a P-node.
    pub public: bool,
    /// Its public key.
    pub key: PublicKey,
    /// Π P-nodes that can reach it (empty for public destinations).
    pub gateways: Vec<GatewayInfo>,
}

/// WCL configuration.
#[derive(Clone, Debug)]
pub struct WclConfig {
    /// Number of mixes on a path (2 in the paper: `A` and `B`). Larger
    /// values tolerate `f − 1` colluding mixes at extra cost (§III-A
    /// footnote; exercised by the path-length ablation).
    pub mixes: usize,
    /// How long to wait for a response before retrying over an
    /// alternative path.
    pub retry_timeout: SimDuration,
    /// Maximum retries (Π in the paper).
    pub max_retries: usize,
    /// Whether to amortize onion crypto over cached circuits (see module
    /// docs). When `false`, every packet is a full RSA onion, exactly as
    /// in the paper.
    pub circuits: bool,
    /// How long a relay keeps a circuit alive. The source refreshes its
    /// cached route after half this, so a live conversation never races
    /// relay expiry.
    pub circuit_ttl: SimDuration,
    /// Maximum circuits a relay stores (oldest evicted first).
    pub circuit_capacity: usize,
}

impl Default for WclConfig {
    fn default() -> Self {
        WclConfig {
            mixes: 2,
            retry_timeout: SimDuration::from_secs(2),
            max_retries: 3,
            circuits: true,
            circuit_ttl: SimDuration::from_secs(120),
            circuit_capacity: 1024,
        }
    }
}

/// Upcalls from the WCL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WclEvent {
    /// A confidential payload arrived (this node is the destination). The
    /// source is intentionally *not* identified at this layer.
    Delivered {
        /// The decrypted payload.
        payload: Vec<u8>,
    },
    /// A tracked send gave up after exhausting retries.
    RouteFailed {
        /// The message id passed to [`Wcl::send`].
        msg_id: u64,
        /// The unreachable destination.
        dest: NodeId,
        /// `true` if no alternative path could even be constructed.
        no_alternative: bool,
    },
}

/// The wire format of a WCL packet (inside a Nylon `App` payload).
#[derive(Clone, Debug, PartialEq)]
struct WclPacket {
    header: Vec<u8>,
    body: Vec<u8>,
}

const WCL_TAG: u8 = 0xC1;

impl WireEncode for WclPacket {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(WCL_TAG);
        w.put_bytes(&self.header);
        w.put_bytes(&self.body);
    }
}

impl WireDecode for WclPacket {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.take_u8()? != WCL_TAG {
            return Err(WireError::new("not a WCL packet"));
        }
        Ok(WclPacket { header: r.take_bytes()?.to_vec(), body: r.take_bytes()?.to_vec() })
    }
}

/// The steady-state wire format once a circuit exists: no RSA header at
/// all, just the hop-local circuit id, the CTR nonce for this link, and
/// the layered body. Every field changes at each hop (the id is
/// hop-local, the nonce is hash-chained, the body loses one CTR layer),
/// so adjacent links share no bytes.
#[derive(Clone, Debug, PartialEq)]
struct CircuitPacket {
    cid: CircuitId,
    nonce: CtrNonce,
    body: Vec<u8>,
}

const CIRCUIT_TAG: u8 = 0xC2;

impl WireEncode for CircuitPacket {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(CIRCUIT_TAG);
        w.put_raw(&self.cid.0);
        w.put_raw(&self.nonce.0);
        w.put_bytes(&self.body);
    }
}

impl WireDecode for CircuitPacket {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.take_u8()? != CIRCUIT_TAG {
            return Err(WireError::new("not a circuit packet"));
        }
        let mut cid = [0u8; 8];
        cid.copy_from_slice(r.take_raw(8)?);
        let mut nonce = [0u8; 8];
        nonce.copy_from_slice(r.take_raw(8)?);
        Ok(CircuitPacket {
            cid: CircuitId(cid),
            nonce: CtrNonce(nonce),
            body: r.take_bytes()?.to_vec(),
        })
    }
}

struct PendingSend {
    dest: DestInfo,
    payload: Vec<u8>,
    attempts: usize,
    used_first_mixes: Vec<NodeId>,
    used_gateways: Vec<NodeId>,
    sent_at: whisper_net::SimTime,
}

/// The source's cached route to one destination: the circuit keys, where
/// to inject packets, and which mixes the route runs through (needed so
/// retries can avoid them).
struct CachedRoute {
    circuit: SourceCircuit,
    first_hop: (NodeId, bool),
    mixes: (NodeId, NodeId),
    expires: whisper_net::SimTime,
}

/// Per-node WCL state.
pub struct Wcl {
    cfg: WclConfig,
    pending: HashMap<u64, PendingSend>,
    next_msg_id: u64,
    /// Source side: destination → cached circuit route. `BTreeMap` so
    /// nothing ever depends on hash iteration order.
    routes: BTreeMap<NodeId, CachedRoute>,
    /// Relay/destination side: circuits this node carries.
    circuits: CircuitTable,
}

impl std::fmt::Debug for Wcl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wcl")
            .field("pending", &self.pending.len())
            .field("routes", &self.routes.len())
            .field("circuits", &self.circuits.len())
            .finish()
    }
}

impl Wcl {
    /// Creates WCL state.
    pub fn new(cfg: WclConfig) -> Self {
        assert!(cfg.mixes >= 1, "at least one mix required");
        let circuits = CircuitTable::new(cfg.circuit_capacity.max(1), cfg.circuit_ttl.as_micros());
        Wcl { cfg, pending: HashMap::new(), next_msg_id: 1, routes: BTreeMap::new(), circuits }
    }

    /// Drops all circuit state — the relay table and any cached source
    /// routes — as a node restart would. Test hook for the miss-and-
    /// rebuild path; never called by the protocol itself.
    pub fn flush_circuits(&mut self) {
        self.circuits.clear();
        self.routes.clear();
    }

    /// Number of circuits this node currently carries for others.
    pub fn carried_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// The configuration.
    pub fn config(&self) -> &WclConfig {
        &self.cfg
    }

    /// Allocates a fresh message id for a tracked send.
    pub fn alloc_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Sends `payload` confidentially to `dest` without tracking
    /// (fire-and-forget, used for responses).
    ///
    /// Returns `false` if no path could be constructed.
    pub fn send_untracked(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: &[u8],
    ) -> bool {
        self.try_send(ctx, nylon, dest, payload, &[], &[]).is_some()
    }

    /// Sends `payload` confidentially to `dest`, tracking it for retries:
    /// if [`Wcl::notify_response`] is not called with `msg_id` before the
    /// retry timeout, an alternative path is tried (up to `max_retries`).
    ///
    /// Counts the Table I statistics: `wcl.route_first_success`,
    /// `wcl.route_alt_success`, `wcl.route_no_alt`,
    /// `wcl.route_exhausted`.
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: Vec<u8>,
        msg_id: u64,
    ) -> bool {
        ctx.metrics().count("wcl.route_attempts", 1);
        let first = self.try_send(ctx, nylon, dest, &payload, &[], &[]);
        let (used_a, used_b) = match first {
            Some((a, b)) => (vec![a], vec![b]),
            None => {
                // Could not even build the first path; treated as "no
                // alternative" immediately.
                ctx.metrics().count("wcl.route_no_alt", 1);
                return false;
            }
        };
        self.pending.insert(
            msg_id,
            PendingSend {
                dest: dest.clone(),
                payload,
                attempts: 1,
                used_first_mixes: used_a,
                used_gateways: used_b,
                sent_at: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.retry_timeout, retry_token(msg_id));
        true
    }

    /// Tells the WCL that the request behind `msg_id` got its answer;
    /// updates the Table I counters.
    pub fn notify_response(&mut self, ctx: &mut Ctx<'_>, msg_id: u64) {
        if let Some(p) = self.pending.remove(&msg_id) {
            if p.attempts <= 1 {
                ctx.metrics().count("wcl.route_first_success", 1);
            } else {
                ctx.metrics().count("wcl.route_alt_success", 1);
            }
            // Fig. 7's "total rtt": request out, answer back, in
            // simulated seconds.
            let rtt = ctx.now().since(p.sent_at).as_secs_f64();
            ctx.metrics().sample("wcl.rtt_s", rtt);
        }
    }

    /// Whether `msg_id` is still awaiting a response.
    pub fn is_pending(&self, msg_id: u64) -> bool {
        self.pending.contains_key(&msg_id)
    }

    /// Handles a retry timer. Returns a [`WclEvent::RouteFailed`] when the
    /// send is abandoned.
    pub fn on_retry_timer(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        token: u64,
    ) -> Option<WclEvent> {
        let msg_id = msg_id_of_token(token);
        let mut p = self.pending.remove(&msg_id)?;
        // The unanswered route is suspect — a relay may have lost its
        // circuit state or a link may have died — so tear down the cached
        // circuit before (re)building: the retry must not reuse it.
        if self.routes.remove(&p.dest.node).is_some() {
            ctx.metrics().count("wcl.circuit_teardown", 1);
        }
        if p.attempts > self.cfg.max_retries {
            ctx.metrics().count("wcl.route_exhausted", 1);
            return Some(WclEvent::RouteFailed {
                msg_id,
                dest: p.dest.node,
                no_alternative: false,
            });
        }
        let retry = self.try_send(
            ctx,
            nylon,
            &p.dest,
            &p.payload,
            &p.used_first_mixes,
            &p.used_gateways,
        );
        match retry {
            Some((a, b)) => {
                ctx.metrics().count("wcl.route_retry", 1);
                p.attempts += 1;
                p.used_first_mixes.push(a);
                p.used_gateways.push(b);
                self.pending.insert(msg_id, p);
                ctx.set_timer(self.cfg.retry_timeout, retry_token(msg_id));
                None
            }
            None => {
                ctx.metrics().count("wcl.route_no_alt", 1);
                Some(WclEvent::RouteFailed {
                    msg_id,
                    dest: p.dest.node,
                    no_alternative: true,
                })
            }
        }
    }

    /// Builds a path avoiding `avoid_a` / `avoid_b` and sends. Returns the
    /// `(A, B)` pair used, or `None` when no path can be constructed.
    fn try_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        dest: &DestInfo,
        payload: &[u8],
        avoid_a: &[NodeId],
        avoid_b: &[NodeId],
    ) -> Option<(NodeId, NodeId)> {
        let me = nylon.id();
        let now = ctx.now();

        // Steady-state fast path: a cached circuit carries the packet with
        // three CTR layers and zero RSA. Skipped when a retry is steering
        // away from specific mixes — those want a *different* path.
        if self.cfg.circuits && avoid_a.is_empty() && avoid_b.is_empty() {
            let cached = self
                .routes
                .get(&dest.node)
                .map(|r| (r.circuit.clone(), r.first_hop, r.mixes, r.expires));
            if let Some((src_circuit, first_hop, mixes, expires)) = cached {
                if expires > now {
                    let nonce0 = CtrNonce::random(ctx.rng());
                    let cost_before = whisper_crypto::costs::snapshot();
                    let wall_started = std::time::Instant::now();
                    let body = circuit::seal_layers(&src_circuit.keys, &nonce0, payload);
                    let cost = whisper_crypto::costs::snapshot().since(cost_before);
                    sample_crypto_cost(ctx, nylon.is_public(), &cost);
                    ctx.metrics().sample(
                        "wcl.circuit_seal_us",
                        cost.aes_model_ns() as f64 / 1000.0,
                    );
                    ctx.metrics().sample(
                        "wcl.circuit_seal_wall_us",
                        wall_started.elapsed().as_nanos() as f64 / 1000.0,
                    );
                    let wire = CircuitPacket {
                        cid: src_circuit.first_cid,
                        nonce: nonce0,
                        body,
                    }
                    .to_wire();
                    let outcome = nylon.send_app(ctx, first_hop.0, first_hop.1, &[], wire);
                    if outcome != SendOutcome::Failed {
                        ctx.metrics().count("wcl.circuit_hit", 1);
                        return Some(mixes);
                    }
                    // The link into the circuit is gone; tear the route
                    // down and fall through to a fresh RSA onion.
                    ctx.metrics().count("wcl.circuit_teardown", 1);
                }
                self.routes.remove(&dest.node);
            }
        }

        // Gateway B: a P-node able to reach D. For NATted destinations it
        // must come from the destination's advertised gateways; public
        // destinations accept any P-node we know (paper §IV-B), preferring
        // our CB publics.
        let mut b_candidates: Vec<GatewayInfo> = if dest.public {
            let mut from_cb: Vec<GatewayInfo> = nylon
                .cb()
                .publics()
                .filter(|e| e.node != dest.node && e.node != me)
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .collect();
            if from_cb.is_empty() {
                from_cb = dest.gateways.clone();
            }
            from_cb
        } else {
            dest.gateways.clone()
        };
        b_candidates.retain(|g| !avoid_b.contains(&g.node) && g.node != me && g.node != dest.node);

        // First mix A: a CB entry with a known key and a still-open path
        // from us. Falls back to B candidates as a degenerate choice only
        // if the CB is empty (bootstrap corner).
        let mut a_candidates: Vec<(NodeId, bool, PublicKey)> = nylon
            .cb()
            .iter()
            .filter(|e| {
                e.node != dest.node
                    && e.node != me
                    && !avoid_a.contains(&e.node)
                    && e.key.is_some()
                    && nylon.can_reach_directly(e.node, e.public, now)
            })
            .map(|e| (e.node, e.public, e.key.clone().expect("filtered")))
            .collect();

        // Mixes must be distinct: drop A candidates equal to the chosen B
        // later; choose B first for simplicity.
        let b = {
            let mut rngs: Vec<&GatewayInfo> = b_candidates.iter().collect();
            rngs.shuffle(ctx.rng());
            rngs.first().map(|g| (*g).clone())
        }?;
        a_candidates.retain(|(n, _, _)| *n != b.node);
        if a_candidates.is_empty() {
            return None;
        }
        let a = a_candidates[ctx.rng().gen_range(0..a_candidates.len())].clone();

        // Intermediate extra mixes for paths longer than 2 (ablation):
        // additional P-nodes from the CB between A and B.
        let mut path: Vec<(PublicKey, Vec<u8>)> = Vec::with_capacity(self.cfg.mixes + 1);
        path.push((a.2.clone(), hop_addr(a.0, a.1)));
        if self.cfg.mixes > 2 {
            let extras: Vec<GatewayInfo> = nylon
                .cb()
                .publics()
                .filter(|e| {
                    e.node != a.0 && e.node != b.node && e.node != dest.node && e.node != me
                })
                .filter_map(|e| e.key.clone().map(|key| GatewayInfo { node: e.node, key }))
                .take(self.cfg.mixes - 2)
                .collect();
            if extras.len() < self.cfg.mixes - 2 {
                return None;
            }
            for extra in extras {
                path.push((extra.key, hop_addr(extra.node, true)));
            }
        }
        path.push((b.key.clone(), hop_addr(b.node, true)));
        path.push((dest.key.clone(), hop_addr(dest.node, dest.public)));

        let cost_before = whisper_crypto::costs::snapshot();
        let build_started = std::time::Instant::now();
        // With circuits enabled the onion doubles as circuit
        // establishment: each layer carries that hop's link key and
        // circuit ids.
        let established = if self.cfg.circuits {
            let (src_circuit, setups) = circuit::establish(path.len(), ctx.rng());
            Some((src_circuit, setups))
        } else {
            None
        };
        let built = match &established {
            Some((_, setups)) => {
                let exts: Vec<Vec<u8>> = setups.iter().map(|s| s.encode()).collect();
                onion::build_onion_ext(&path, payload, &exts, ctx.rng())
            }
            None => onion::build_onion(&path, payload, ctx.rng()),
        };
        let packet = match built {
            Ok(p) => p,
            Err(_) => return None,
        };
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        // Primary sample is the deterministic model cost; wall-clock is
        // kept as a secondary, explicitly excluded from determinism
        // traces (see DESIGN.md § "Deterministic crypto accounting").
        ctx.metrics().sample(
            "wcl.build_path_us",
            (cost.aes_model_ns() + cost.rsa_model_ns()) as f64 / 1000.0,
        );
        ctx.metrics().sample(
            "wcl.build_path_wall_us",
            build_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        let wire = WclPacket { header: packet.header, body: packet.body }.to_wire();
        ctx.metrics().count("wcl.paths_built", 1);
        let outcome = nylon.send_app(ctx, a.0, a.1, &[], wire);
        if outcome == SendOutcome::Failed {
            return None;
        }
        if let Some((src_circuit, _)) = established {
            // Cache for half the relay-side TTL: the source always
            // re-establishes well before any relay forgets the circuit.
            let expires =
                now + SimDuration::from_micros(self.cfg.circuit_ttl.as_micros() / 2);
            self.routes.insert(
                dest.node,
                CachedRoute {
                    circuit: src_circuit,
                    first_hop: (a.0, a.1),
                    mixes: (a.0, b.node),
                    expires,
                },
            );
            ctx.metrics().count("wcl.circuit_established", 1);
        }
        Some((a.0, b.node))
    }

    /// Processes an incoming Nylon `App` payload. If it is a WCL onion
    /// packet this node either relays it (one onion layer peeled) or
    /// delivers it (destination layer); if it is a circuit packet the node
    /// strips one CTR layer and forwards or delivers.
    ///
    /// Returns `None` if the payload is neither (the caller may try other
    /// parsers).
    pub fn on_app_payload(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        match data.first() {
            Some(&WCL_TAG) => self.on_onion_packet(ctx, nylon, data),
            Some(&CIRCUIT_TAG) => self.on_circuit_packet(ctx, nylon, data),
            _ => None,
        }
    }

    /// Handles a full RSA onion packet (first packet of a route, or every
    /// packet when circuits are disabled).
    fn on_onion_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        let packet = WclPacket::from_wire(data).ok()?;
        let keypair = nylon.keypair().clone();
        let cost_before = whisper_crypto::costs::snapshot();
        let peel_started = std::time::Instant::now();
        let peeled = onion::peel_with_body(&keypair, &packet.header, &packet.body);
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        // Primary sample is the deterministic model cost; wall-clock is
        // kept as a secondary, excluded from determinism traces.
        ctx.metrics().sample(
            "wcl.peel_us",
            (cost.aes_model_ns() + cost.rsa_model_ns()) as f64 / 1000.0,
        );
        ctx.metrics().sample(
            "wcl.peel_wall_us",
            peel_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        match peeled {
            Ok(PeelResult::Relay { next_hop, header, ext }) => {
                let Some((next, next_public)) = parse_hop_addr(&next_hop) else {
                    ctx.metrics().count("wcl.bad_next_hop", 1);
                    return None;
                };
                self.install_circuit(ctx, &ext, next_hop.clone());
                ctx.metrics().count("wcl.relayed", 1);
                let fwd = WclPacket { header, body: packet.body }.to_wire();
                // A mix reaches the next hop through an existing contact
                // (B → D relies on D's earlier ping) or directly when the
                // next hop is public. No rendezvous chains here: a mix
                // must not interrogate the network about the next hop.
                let outcome = nylon.send_app(ctx, next, next_public, &[], fwd);
                if outcome == SendOutcome::Failed {
                    ctx.metrics().count("wcl.relay_drop", 1);
                }
                None
            }
            Ok(PeelResult::Destination { payload, ext }) => {
                self.install_circuit(ctx, &ext, Vec::new());
                ctx.metrics().count("wcl.delivered", 1);
                Some(WclEvent::Delivered { payload })
            }
            Err(_) => {
                ctx.metrics().count("wcl.peel_failed", 1);
                None
            }
        }
    }

    /// Stores the circuit state a just-peeled onion layer delivered for
    /// this node (no-op for layers without an extension).
    fn install_circuit(&mut self, ctx: &mut Ctx<'_>, ext: &[u8], next_hop: Vec<u8>) {
        if ext.is_empty() {
            return;
        }
        let Some(setup) = HopSetup::decode(ext) else {
            ctx.metrics().count("wcl.circuit_bad_setup", 1);
            return;
        };
        let entry = CircuitEntry { key: setup.key, next_hop, cid_out: setup.cid_out };
        self.circuits.insert(ctx.now().as_micros(), setup.cid_in, entry);
        ctx.metrics().count("wcl.circuit_installed", 1);
    }

    /// Handles a steady-state circuit packet: one CTR layer stripped, then
    /// forwarded under the outbound circuit id or delivered. Unknown or
    /// expired circuit ids are silently dropped — the source's retry
    /// machinery recovers by re-establishing over RSA.
    fn on_circuit_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        nylon: &mut NylonCore,
        data: &[u8],
    ) -> Option<WclEvent> {
        let packet = CircuitPacket::from_wire(data).ok()?;
        let now_us = ctx.now().as_micros();
        let Some(entry) = self.circuits.lookup(now_us, packet.cid) else {
            ctx.metrics().count("wcl.circuit_miss_drop", 1);
            return None;
        };
        let entry = entry.clone();
        let cost_before = whisper_crypto::costs::snapshot();
        let wall_started = std::time::Instant::now();
        let body = circuit::peel_layer(&entry.key, &packet.nonce, &packet.body);
        let cost = whisper_crypto::costs::snapshot().since(cost_before);
        ctx.metrics().sample("wcl.circuit_fwd_us", cost.aes_model_ns() as f64 / 1000.0);
        ctx.metrics().sample(
            "wcl.circuit_fwd_wall_us",
            wall_started.elapsed().as_nanos() as f64 / 1000.0,
        );
        sample_crypto_cost(ctx, nylon.is_public(), &cost);
        match entry.cid_out {
            Some(cid_out) => {
                let Some((next, next_public)) = parse_hop_addr(&entry.next_hop) else {
                    ctx.metrics().count("wcl.bad_next_hop", 1);
                    return None;
                };
                ctx.metrics().count("wcl.relayed", 1);
                ctx.metrics().count("wcl.circuit_forwarded", 1);
                let fwd = CircuitPacket {
                    cid: cid_out,
                    nonce: circuit::next_nonce(&packet.nonce),
                    body,
                }
                .to_wire();
                let outcome = nylon.send_app(ctx, next, next_public, &[], fwd);
                if outcome == SendOutcome::Failed {
                    ctx.metrics().count("wcl.relay_drop", 1);
                }
                None
            }
            None => {
                ctx.metrics().count("wcl.delivered", 1);
                ctx.metrics().count("wcl.circuit_delivered", 1);
                Some(WclEvent::Delivered { payload: body })
            }
        }
    }
}

/// Samples the per-class crypto cost metrics (Table II) from a
/// [`whisper_crypto::costs::CryptoCosts`] delta, using the deterministic
/// model nanoseconds so traces are host-independent.
fn sample_crypto_cost(
    ctx: &mut Ctx<'_>,
    is_public: bool,
    cost: &whisper_crypto::costs::CryptoCosts,
) {
    ctx.metrics().sample(
        if is_public { "crypto.rsa_us.pnode" } else { "crypto.rsa_us.nnode" },
        cost.rsa_model_ns() as f64 / 1000.0,
    );
    ctx.metrics().sample(
        if is_public { "crypto.aes_us.pnode" } else { "crypto.aes_us.nnode" },
        cost.aes_model_ns() as f64 / 1000.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_token_round_trip() {
        let t = retry_token(42);
        assert_eq!(t & 0xFF, TIMER_WCL_RETRY);
        assert_eq!(msg_id_of_token(t), 42);
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut wcl = Wcl::new(WclConfig::default());
        let a = wcl.alloc_msg_id();
        let b = wcl.alloc_msg_id();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one mix")]
    fn zero_mixes_rejected() {
        Wcl::new(WclConfig { mixes: 0, ..WclConfig::default() });
    }

    #[test]
    fn wcl_packet_wire_round_trip() {
        let p = WclPacket { header: vec![1, 2, 3], body: vec![4, 5] };
        let bytes = p.to_wire();
        assert_eq!(WclPacket::from_wire(&bytes).unwrap(), p);
        assert!(WclPacket::from_wire(&[0xFF, 0, 0]).is_err());
    }

    #[test]
    fn circuit_packet_wire_round_trip() {
        let p = CircuitPacket {
            cid: CircuitId([7; 8]),
            nonce: CtrNonce([9; 8]),
            body: vec![1, 2, 3, 4],
        };
        let bytes = p.to_wire();
        assert_eq!(bytes[0], CIRCUIT_TAG);
        assert_eq!(CircuitPacket::from_wire(&bytes).unwrap(), p);
        // The two WCL wire formats never parse as each other.
        assert!(WclPacket::from_wire(&bytes).is_err());
        let onion = WclPacket { header: vec![1], body: vec![2] }.to_wire();
        assert!(CircuitPacket::from_wire(&onion).is_err());
    }

    #[test]
    fn flush_circuits_clears_all_state() {
        let mut wcl = Wcl::new(WclConfig::default());
        wcl.circuits.insert(
            0,
            CircuitId([1; 8]),
            CircuitEntry { key: whisper_crypto::aes::AesKey([0; 16]), next_hop: vec![], cid_out: None },
        );
        assert_eq!(wcl.carried_circuits(), 1);
        wcl.flush_circuits();
        assert_eq!(wcl.carried_circuits(), 0);
        assert!(wcl.routes.is_empty());
    }
}
