// The reference algorithms (FIPS 197, TAOCP 4.3.1, CIOS) are specified
// index-wise; keeping the indices makes them auditable against the spec.
#![allow(clippy::needless_range_loop)]

//! The AES-128 block cipher (FIPS 197) and a CTR stream mode, implemented
//! from scratch.
//!
//! WHISPER (paper §III-A) encrypts message contents with a random symmetric
//! key `k` using AES; the onion header carries `k` to the destination.
//!
//! ```
//! use whisper_crypto::aes::{Aes128, AesKey, CtrNonce};
//!
//! let key = AesKey([0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
//! let cipher = Aes128::new(&key);
//! let nonce = CtrNonce([0; 8]);
//! let ct = cipher.ctr_apply(&nonce, b"attack at dawn");
//! assert_eq!(cipher.ctr_apply(&nonce, &ct), b"attack at dawn");
//! ```

use whisper_rand::Rng;

/// A 128-bit AES key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AesKey(pub [u8; 16]);

impl AesKey {
    /// Draws a uniformly random key.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        let mut k = [0u8; 16];
        rng.fill(&mut k);
        AesKey(k)
    }
}

impl std::fmt::Debug for AesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "AesKey(..)")
    }
}

/// A 64-bit CTR nonce; the remaining 64 bits of the counter block count
/// blocks, limiting a single message to 2^64 blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct CtrNonce(pub [u8; 8]);

impl CtrNonce {
    /// Draws a uniformly random nonce.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        let mut n = [0u8; 8];
        rng.fill(&mut n);
        CtrNonce(n)
    }
}

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, computed at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Encryption T-tables: the fused SubBytes+MixColumns lookup of the
/// classic 32-bit AES formulation. `TE[r][x]` packs, for input byte `x`
/// arriving at row `r` of a column, its contribution to the four output
/// bytes of that column (byte `i` of the little-endian `u32` feeds output
/// row `i`). Derived from [`SBOX`] at first use; the byte-wise reference
/// path above stays as the specification the FIPS 197 vectors audit.
struct EncTables {
    te: [[u32; 256]; 4],
}

fn enc_tables() -> &'static EncTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<EncTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut te = [[0u32; 256]; 4];
        for x in 0..256 {
            let s = SBOX[x];
            let s2 = gmul(s, 2);
            let s3 = gmul(s, 3);
            // MixColumns rows for an input at row r (see `mix_columns`):
            // row 0 input multiplies into outputs (2, 1, 1, 3), row 1 into
            // (3, 2, 1, 1), and so on by rotation.
            te[0][x] = u32::from_le_bytes([s2, s, s, s3]);
            te[1][x] = u32::from_le_bytes([s3, s2, s, s]);
            te[2][x] = u32::from_le_bytes([s, s3, s2, s]);
            te[3][x] = u32::from_le_bytes([s, s, s3, s2]);
        }
        EncTables { te }
    })
}

/// Multiplication in GF(2^8) with the AES polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES-128 cipher instance (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// The same schedule as packed little-endian column words, for the
    /// T-table encryption path.
    rk32: [[u32; 4]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Aes128(..)")
    }
}

impl Aes128 {
    /// Expands `key` into the round key schedule.
    pub fn new(key: &AesKey) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key.0[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        let mut rk32 = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
                rk32[r][c] = u32::from_le_bytes(w[r * 4 + c]);
            }
        }
        Aes128 { round_keys, rk32 }
    }

    /// Encrypts one 16-byte block in place (T-table fast path; validated
    /// against the byte-wise reference by the FIPS 197 vectors and
    /// [`Aes128::decrypt_block`] round trips).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let t = &enc_tables().te;
        // State as four little-endian column words: byte i = row i.
        let mut c = [0u32; 4];
        for j in 0..4 {
            c[j] = u32::from_le_bytes([
                block[j * 4],
                block[j * 4 + 1],
                block[j * 4 + 2],
                block[j * 4 + 3],
            ]) ^ self.rk32[0][j];
        }
        for round in 1..10 {
            // ShiftRows moves the byte at row r of output column j in
            // from column (j + r) % 4; the T-tables fuse SubBytes and
            // MixColumns on top.
            let mut n = [0u32; 4];
            for j in 0..4 {
                n[j] = t[0][(c[j] & 0xff) as usize]
                    ^ t[1][((c[(j + 1) & 3] >> 8) & 0xff) as usize]
                    ^ t[2][((c[(j + 2) & 3] >> 16) & 0xff) as usize]
                    ^ t[3][(c[(j + 3) & 3] >> 24) as usize]
                    ^ self.rk32[round][j];
            }
            c = n;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        for j in 0..4 {
            let v = u32::from_le_bytes([
                SBOX[(c[j] & 0xff) as usize],
                SBOX[((c[(j + 1) & 3] >> 8) & 0xff) as usize],
                SBOX[((c[(j + 2) & 3] >> 16) & 0xff) as usize],
                SBOX[(c[(j + 3) & 3] >> 24) as usize],
            ]) ^ self.rk32[10][j];
            block[j * 4..j * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Encrypts one 16-byte block with the byte-wise FIPS 197 reference
    /// rounds; kept as the auditable specification of
    /// [`Aes128::encrypt_block`].
    #[cfg(test)]
    fn encrypt_block_reference(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Applies the CTR keystream; encryption and decryption are the same
    /// operation. Returns a buffer of the same length as `data`.
    ///
    /// Elapsed time is accounted in [`crate::costs`].
    pub fn ctr_apply(&self, nonce: &CtrNonce, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.ctr_apply_in_place(nonce, &mut out);
        out
    }

    /// [`Aes128::ctr_apply`] without the output allocation: CTR is a pure
    /// length-preserving XOR, so a caller that owns its buffer can layer
    /// and strip in place. This is the relay hot path — one circuit hop
    /// costs exactly one in-place pass over the body.
    ///
    /// Elapsed time is accounted in [`crate::costs`].
    pub fn ctr_apply_in_place(&self, nonce: &CtrNonce, data: &mut [u8]) {
        let started = std::time::Instant::now();
        let mut counter_block = [0u8; 16];
        counter_block[..8].copy_from_slice(&nonce.0);
        for (block_idx, chunk) in data.chunks_mut(16).enumerate() {
            counter_block[8..].copy_from_slice(&(block_idx as u64).to_be_bytes());
            let mut keystream = counter_block;
            self.encrypt_block(&mut keystream);
            for (byte, &k) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= k;
            }
        }
        crate::costs::add_aes_blocks(data.len().div_ceil(16) as u64);
        crate::costs::add_aes(started.elapsed().as_nanos() as u64);
    }
}

/// State layout: column-major, `state[c*4 + r]` = row r, column c (matching
/// the byte order of FIPS 197 inputs).
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}
// The forward round helpers below survive only for the reference
// implementation the T-table fast path is validated against.
#[cfg(test)]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

#[cfg(test)]
fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[c * 4 + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[c * 4 + r] = row[(c + 4 - r) % 4];
        }
    }
}

#[cfg(test)]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[c * 4 + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[c * 4 + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[c * 4 + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[c * 4 + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    /// FIPS 197 Appendix B test vector.
    #[test]
    fn fips197_appendix_b() {
        let key = AesKey([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let cipher = Aes128::new(&key);
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        cipher.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19,
                0x6a, 0x0b, 0x32
            ]
        );
    }

    /// FIPS 197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key = AesKey([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let cipher = Aes128::new(&key);
        let mut block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        cipher.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a
            ]
        );
    }

    /// The T-table fast path agrees with the byte-wise FIPS 197 rounds on
    /// random keys and blocks.
    #[test]
    fn ttable_matches_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let cipher = Aes128::new(&AesKey::random(&mut rng));
            for _ in 0..20 {
                let mut fast = [0u8; 16];
                rng.fill(&mut fast);
                let mut reference = fast;
                cipher.encrypt_block(&mut fast);
                cipher.encrypt_block_reference(&mut reference);
                assert_eq!(fast, reference);
            }
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = AesKey::random(&mut rng);
        let cipher = Aes128::new(&key);
        for _ in 0..50 {
            let mut block = [0u8; 16];
            rng.fill(&mut block);
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn ctr_round_trip_all_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = AesKey::random(&mut rng);
        let nonce = CtrNonce::random(&mut rng);
        let cipher = Aes128::new(&key);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cipher.ctr_apply(&nonce, &data);
            assert_eq!(ct.len(), len);
            assert_eq!(cipher.ctr_apply(&nonce, &ct), data, "len {len}");
        }
    }

    #[test]
    fn ctr_different_nonces_differ() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = AesKey::random(&mut rng);
        let cipher = Aes128::new(&key);
        let data = vec![0u8; 64];
        let a = cipher.ctr_apply(&CtrNonce([0; 8]), &data);
        let b = cipher.ctr_apply(&CtrNonce([1, 0, 0, 0, 0, 0, 0, 0]), &data);
        assert_ne!(a, b);
    }

    #[test]
    fn gmul_spot_checks() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xab), 0);
    }

    #[test]
    fn sbox_inverse_is_consistent() {
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn debug_never_prints_key_material() {
        let key = AesKey([0xAA; 16]);
        assert!(!format!("{key:?}").contains("AA"));
        assert!(!format!("{:?}", Aes128::new(&key)).contains("170"));
    }
}
