//! Thread-local CPU cost accounting for cryptographic operations.
//!
//! The paper's Table II reports the CPU time nodes spend in AES and RSA
//! per PPSS cycle. To reproduce it honestly *and* deterministically, the
//! [`aes`](crate::aes) and [`rsa`](crate::rsa) modules account two kinds
//! of cost here:
//!
//! * **Deterministic operation counts** — AES blocks processed and RSA
//!   limb-operation units (one unit = one inner-loop step of a CIOS
//!   Montgomery multiplication, i.e. `n²` units for an `n`-limb modulus).
//!   These are pure functions of the work performed, identical on every
//!   host, and convert to "model nanoseconds" through the calibrated
//!   constants below. All metrics that feed determinism traces and the
//!   Table II / Fig. 7 reproductions use these.
//! * **Wall-clock nanoseconds** — `std::time::Instant` measurements of
//!   the same operations, kept as a secondary sanity signal (they vary
//!   with host speed and are excluded from determinism traces).
//!
//! The accounting is thread-local and costs a few `Cell` updates per
//! crypto operation. The sharded simulator may run protocol callbacks on
//! worker threads, but every consumer takes a [`snapshot`] before and
//! after a crypto operation *within one callback* — which never migrates
//! threads mid-call — so the [`CryptoCosts::since`] deltas it feeds into
//! metrics are exact on any thread. Absolute per-thread totals are not
//! comparable across threads and nothing reads them directly.

use std::cell::Cell;

thread_local! {
    static AES_NS: Cell<u64> = const { Cell::new(0) };
    static RSA_NS: Cell<u64> = const { Cell::new(0) };
    static AES_BLOCKS: Cell<u64> = const { Cell::new(0) };
    static RSA_LIMB_OPS: Cell<u64> = const { Cell::new(0) };
}

/// Model cost of one AES-128 block operation, in picoseconds.
///
/// Calibrated against the T-table implementation in [`crate::aes`] on the
/// reference machine: the `aes128_ctr/1024B` micro-benchmark measures
/// 3.6–3.9 µs for 64 blocks (≈56–61 ns/block, ≈250 MiB/s); 66 ns rounds
/// that up to a stable figure (≈230 MiB/s). The constant is fixed by
/// design — it must never be measured at runtime, or determinism would
/// break.
pub const AES_PS_PER_BLOCK: u64 = 66_000;

/// Model cost of one RSA limb-operation unit, in picoseconds.
///
/// One unit is one inner-loop step of a CIOS Montgomery multiplication
/// (`n²` units per `mont_mul` on an `n`-limb modulus). Calibrated against
/// the `rsa/decrypt/384` micro-benchmark — the simulation operating point
/// — where one CRT decrypt counts 5,193 units and measures 33–57 µs on
/// the reference machine across PR 7 → PR 10 runs (8.8 ns/unit ⇒ model
/// ≈45.7 µs, inside that window). At larger moduli the
/// per-multiplication overhead amortizes and the model overestimates
/// (measured `rsa/decrypt/1024` ≈324 µs vs ≈868 µs modeled); a single
/// constant cannot fit both, and the simulation size wins.
///
/// Re-checked for PR 10's cached Montgomery contexts
/// ([`crate::bignum::set_mont_cache`]): the cache removes one context
/// build (~1.4 µs, `rsa_mont_ab/mont_setup/1024` in `BENCH_pr10.json`)
/// per `modpow`, under 1% of a decrypt — no recalibration warranted.
/// The unit *counts* are untouched either way: `Montgomery` construction
/// performs no cost accounting, only `mont_mul` inner-loop steps do, so
/// the cache cannot perturb deterministic traces. Fixed by design, like
/// [`AES_PS_PER_BLOCK`].
pub const RSA_PS_PER_LIMB_OP: u64 = 8_800;

/// A snapshot of the accumulated costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoCosts {
    /// Wall-clock time spent in AES operations, in nanoseconds
    /// (host-dependent; secondary signal).
    pub aes_ns: u64,
    /// Wall-clock time spent in RSA operations, in nanoseconds
    /// (host-dependent; secondary signal).
    pub rsa_ns: u64,
    /// AES blocks processed (deterministic).
    pub aes_blocks: u64,
    /// RSA limb-operation units executed (deterministic).
    pub rsa_limb_ops: u64,
}

impl CryptoCosts {
    /// Element-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: CryptoCosts) -> CryptoCosts {
        CryptoCosts {
            aes_ns: self.aes_ns.saturating_sub(earlier.aes_ns),
            rsa_ns: self.rsa_ns.saturating_sub(earlier.rsa_ns),
            aes_blocks: self.aes_blocks.saturating_sub(earlier.aes_blocks),
            rsa_limb_ops: self.rsa_limb_ops.saturating_sub(earlier.rsa_limb_ops),
        }
    }

    /// Deterministic model cost of the AES work, in nanoseconds.
    pub fn aes_model_ns(self) -> u64 {
        self.aes_blocks.saturating_mul(AES_PS_PER_BLOCK) / 1000
    }

    /// Deterministic model cost of the RSA work, in nanoseconds.
    pub fn rsa_model_ns(self) -> u64 {
        self.rsa_limb_ops.saturating_mul(RSA_PS_PER_LIMB_OP) / 1000
    }
}

/// Reads the accumulated counters for this thread.
pub fn snapshot() -> CryptoCosts {
    CryptoCosts {
        aes_ns: AES_NS.get(),
        rsa_ns: RSA_NS.get(),
        aes_blocks: AES_BLOCKS.get(),
        rsa_limb_ops: RSA_LIMB_OPS.get(),
    }
}

/// Resets the counters for this thread.
pub fn reset() {
    AES_NS.set(0);
    RSA_NS.set(0);
    AES_BLOCKS.set(0);
    RSA_LIMB_OPS.set(0);
}

pub(crate) fn add_aes(ns: u64) {
    AES_NS.set(AES_NS.get().wrapping_add(ns));
}

pub(crate) fn add_rsa(ns: u64) {
    RSA_NS.set(RSA_NS.get().wrapping_add(ns));
}

pub(crate) fn add_aes_blocks(blocks: u64) {
    AES_BLOCKS.set(AES_BLOCKS.get().wrapping_add(blocks));
}

pub(crate) fn add_rsa_limb_ops(units: u64) {
    RSA_LIMB_OPS.set(RSA_LIMB_OPS.get().wrapping_add(units));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        add_aes(10);
        add_rsa(20);
        add_aes(5);
        add_aes_blocks(3);
        add_rsa_limb_ops(7);
        let c = snapshot();
        assert_eq!(
            c,
            CryptoCosts { aes_ns: 15, rsa_ns: 20, aes_blocks: 3, rsa_limb_ops: 7 }
        );
        reset();
        assert_eq!(snapshot(), CryptoCosts::default());
    }

    #[test]
    fn since_is_saturating_difference() {
        let a = CryptoCosts { aes_ns: 10, rsa_ns: 5, aes_blocks: 1, rsa_limb_ops: 2 };
        let b = CryptoCosts { aes_ns: 25, rsa_ns: 5, aes_blocks: 4, rsa_limb_ops: 2 };
        assert_eq!(
            b.since(a),
            CryptoCosts { aes_ns: 15, rsa_ns: 0, aes_blocks: 3, rsa_limb_ops: 0 }
        );
        assert_eq!(a.since(b), CryptoCosts::default());
    }

    #[test]
    fn model_costs_scale_with_counts() {
        let c = CryptoCosts { aes_blocks: 1000, rsa_limb_ops: 1000, ..Default::default() };
        assert_eq!(c.aes_model_ns(), AES_PS_PER_BLOCK);
        assert_eq!(c.rsa_model_ns(), RSA_PS_PER_LIMB_OP);
    }

    #[test]
    fn real_operations_are_accounted() {
        use crate::aes::{Aes128, AesKey, CtrNonce};
        use crate::rsa::{KeyPair, RsaKeySize};
        use whisper_rand::SeedableRng;
        reset();
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(1);
        let cipher = Aes128::new(&AesKey::random(&mut rng));
        let _ = cipher.ctr_apply(&CtrNonce::random(&mut rng), &[0u8; 4096]);
        let aes_only = snapshot();
        assert!(aes_only.aes_ns > 0, "AES time recorded");
        assert_eq!(aes_only.aes_blocks, 256, "4096 bytes = 256 blocks");
        assert_eq!(aes_only.rsa_ns, 0);
        assert_eq!(aes_only.rsa_limb_ops, 0);

        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let ct = kp.public().encrypt(b"x", &mut rng).unwrap();
        let _ = kp.decrypt(&ct).unwrap();
        let both = snapshot();
        assert!(both.rsa_ns > 0, "RSA time recorded");
        assert!(both.rsa_limb_ops > 0, "RSA limb ops recorded");
    }

    #[test]
    fn deterministic_counts_are_host_independent() {
        // The same operation twice yields exactly the same count delta —
        // the property the wall-clock counters cannot have.
        use crate::aes::{Aes128, AesKey, CtrNonce};
        let cipher = Aes128::new(&AesKey([7u8; 16]));
        reset();
        let _ = cipher.ctr_apply(&CtrNonce([1u8; 8]), &[0u8; 100]);
        let first = snapshot().aes_blocks;
        let _ = cipher.ctr_apply(&CtrNonce([1u8; 8]), &[0u8; 100]);
        let second = snapshot().aes_blocks - first;
        assert_eq!(first, second);
        assert_eq!(first, 7, "100 bytes = ceil(100/16) = 7 blocks");
    }
}
