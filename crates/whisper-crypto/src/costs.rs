//! Thread-local CPU cost accounting for cryptographic operations.
//!
//! The paper's Table II reports the CPU time nodes spend in AES and RSA
//! per PPSS cycle. To reproduce it honestly, the [`aes`](crate::aes) and
//! [`rsa`](crate::rsa) modules time their own hot operations with
//! `std::time::Instant` and accumulate the elapsed nanoseconds here; the
//! experiment harness snapshots the counters around each protocol
//! operation and attributes the delta to the node that executed it.
//!
//! The accounting is thread-local (the simulator is single-threaded) and
//! costs nothing when nobody reads it beyond two `Instant::now()` calls
//! per crypto operation.

use std::cell::Cell;

thread_local! {
    static AES_NS: Cell<u64> = const { Cell::new(0) };
    static RSA_NS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the accumulated costs, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoCosts {
    /// Time spent in AES operations.
    pub aes_ns: u64,
    /// Time spent in RSA operations (modular exponentiations).
    pub rsa_ns: u64,
}

impl CryptoCosts {
    /// Element-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: CryptoCosts) -> CryptoCosts {
        CryptoCosts {
            aes_ns: self.aes_ns.saturating_sub(earlier.aes_ns),
            rsa_ns: self.rsa_ns.saturating_sub(earlier.rsa_ns),
        }
    }
}

/// Reads the accumulated counters for this thread.
pub fn snapshot() -> CryptoCosts {
    CryptoCosts { aes_ns: AES_NS.get(), rsa_ns: RSA_NS.get() }
}

/// Resets the counters for this thread.
pub fn reset() {
    AES_NS.set(0);
    RSA_NS.set(0);
}

pub(crate) fn add_aes(ns: u64) {
    AES_NS.set(AES_NS.get().wrapping_add(ns));
}

pub(crate) fn add_rsa(ns: u64) {
    RSA_NS.set(RSA_NS.get().wrapping_add(ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        add_aes(10);
        add_rsa(20);
        add_aes(5);
        let c = snapshot();
        assert_eq!(c, CryptoCosts { aes_ns: 15, rsa_ns: 20 });
        reset();
        assert_eq!(snapshot(), CryptoCosts::default());
    }

    #[test]
    fn since_is_saturating_difference() {
        let a = CryptoCosts { aes_ns: 10, rsa_ns: 5 };
        let b = CryptoCosts { aes_ns: 25, rsa_ns: 5 };
        assert_eq!(b.since(a), CryptoCosts { aes_ns: 15, rsa_ns: 0 });
        assert_eq!(a.since(b), CryptoCosts { aes_ns: 0, rsa_ns: 0 });
    }

    #[test]
    fn real_operations_are_accounted() {
        use crate::aes::{Aes128, AesKey, CtrNonce};
        use crate::rsa::{KeyPair, RsaKeySize};
        use whisper_rand::SeedableRng;
        reset();
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(1);
        let cipher = Aes128::new(&AesKey::random(&mut rng));
        let _ = cipher.ctr_apply(&CtrNonce::random(&mut rng), &[0u8; 4096]);
        let aes_only = snapshot();
        assert!(aes_only.aes_ns > 0, "AES time recorded");
        assert_eq!(aes_only.rsa_ns, 0);

        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let ct = kp.public().encrypt(b"x", &mut rng).unwrap();
        let _ = kp.decrypt(&ct).unwrap();
        let both = snapshot();
        assert!(both.rsa_ns > 0, "RSA time recorded");
    }
}
