use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The message is too large for the RSA modulus after padding.
    MessageTooLong {
        /// Size of the message that was submitted, in bytes.
        message_len: usize,
        /// Maximum payload the modulus can carry, in bytes.
        max_len: usize,
    },
    /// A ciphertext (or signature) did not decode to a validly padded block.
    InvalidPadding,
    /// A ciphertext value was numerically out of range for the modulus.
    CiphertextOutOfRange,
    /// A signature failed verification.
    BadSignature,
    /// An onion layer was malformed or was encrypted for a different key.
    MalformedOnion(&'static str),
    /// A sealed blob was truncated or structurally invalid.
    MalformedSealedBlob,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong { message_len, max_len } => write!(
                f,
                "message of {message_len} bytes exceeds the {max_len}-byte capacity of the modulus"
            ),
            CryptoError::InvalidPadding => write!(f, "invalid PKCS#1-style padding"),
            CryptoError::CiphertextOutOfRange => {
                write!(f, "ciphertext is not smaller than the modulus")
            }
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedOnion(what) => write!(f, "malformed onion layer: {what}"),
            CryptoError::MalformedSealedBlob => write!(f, "malformed sealed blob"),
        }
    }
}

impl Error for CryptoError {}
