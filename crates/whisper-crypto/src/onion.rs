//! The onion construction of paper §III-A.
//!
//! The source `S` draws a random symmetric key `k`, encrypts the content
//! with it, and builds a layered header: the innermost layer — sealed for
//! the destination `D` — carries `(k, ⊥)`; each outer layer — sealed for a
//! mix `M` — carries the identity of the next hop and the inner layer.
//! Every node on the path peels exactly one layer with its private key:
//! mixes learn only the next hop, and `D` learns it is the destination
//! because the next hop is `⊥`.
//!
//! Addresses are opaque byte strings here; the WCL layer above maps them
//! to node identifiers.
//!
//! ```
//! use whisper_crypto::onion::{build_onion, peel, PeelResult};
//! use whisper_crypto::rsa::{KeyPair, RsaKeySize};
//! use whisper_rand::SeedableRng;
//!
//! # fn main() -> Result<(), whisper_crypto::CryptoError> {
//! let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(5);
//! let mix = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
//! let dest = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
//! let path = [
//!     (mix.public().clone(), b"mix-addr".to_vec()),
//!     (dest.public().clone(), b"dst-addr".to_vec()),
//! ];
//! let packet = build_onion(&path, b"payload", &mut rng)?;
//! let PeelResult::Relay { next_hop, header, .. } = peel(&mix, &packet.header)? else {
//!     panic!("mix should relay");
//! };
//! assert_eq!(next_hop, b"dst-addr");
//! let PeelResult::Destination { payload, .. } = peel_with_body(&dest, &header, &packet.body)?
//! else {
//!     panic!("dest should terminate");
//! };
//! # use whisper_crypto::onion::peel_with_body;
//! assert_eq!(payload, b"payload");
//! # Ok(())
//! # }
//! ```

use crate::aes::{Aes128, AesKey, CtrNonce};
use crate::hybrid::{self, SealedBlob};
use crate::rsa::{KeyPair, PublicKey};
use crate::CryptoError;
use whisper_rand::Rng;

const TAG_DEST: u8 = 0;
const TAG_RELAY: u8 = 1;
// Extension-carrying variants: identical to the legacy layers plus an
// opaque per-hop extension blob (used by [`crate::circuit`] to deliver
// link-key setups). Layers with an empty extension keep the legacy tags,
// so extension-free onions are bit-for-bit the legacy format.
const TAG_DEST_EXT: u8 = 2;
const TAG_RELAY_EXT: u8 = 3;

/// A fully built onion: the layered routing header plus the AES-encrypted
/// body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnionPacket {
    /// Nested sealed layers; peel with [`peel`].
    pub header: Vec<u8>,
    /// Content encrypted under the session key carried by the innermost
    /// layer.
    pub body: Vec<u8>,
}

impl OnionPacket {
    /// Total wire size in bytes.
    pub fn wire_len(&self) -> usize {
        self.header.len() + self.body.len()
    }
}

/// Outcome of peeling one onion layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeelResult {
    /// This node is a mix: forward `header` (and the unchanged body) to
    /// `next_hop`.
    Relay {
        /// Opaque address of the next hop.
        next_hop: Vec<u8>,
        /// The inner header to forward.
        header: Vec<u8>,
        /// Per-hop extension delivered to this mix (empty for legacy
        /// layers); carries e.g. a circuit [`crate::circuit::HopSetup`].
        ext: Vec<u8>,
    },
    /// This node is the destination; `payload` is the decrypted content.
    Destination {
        /// The decrypted message content.
        payload: Vec<u8>,
        /// Per-hop extension delivered to the destination (empty for
        /// legacy layers).
        ext: Vec<u8>,
    },
}

/// Builds an onion over `path` (mixes in forwarding order, destination
/// last). The sender transmits the packet to `path[0]`; each layer `i`
/// carries the address of `path[i + 1]`.
///
/// # Errors
///
/// Propagates RSA errors (e.g. a modulus too small for the session
/// secret).
///
/// # Panics
///
/// Panics if `path` is empty.
pub fn build_onion<R: Rng>(
    path: &[(PublicKey, Vec<u8>)],
    payload: &[u8],
    rng: &mut R,
) -> Result<OnionPacket, CryptoError> {
    build_onion_ext(path, payload, &[], rng)
}

/// Like [`build_onion`], but layer `i` additionally carries the opaque
/// extension `exts[i]`, readable only by hop `i`. This is how circuit
/// establishment ([`crate::circuit`]) piggybacks per-hop link keys on the
/// first onion of a route. Layers whose extension is empty use the legacy
/// wire tags, so `exts = &[]` (or all-empty) reproduces [`build_onion`]
/// exactly.
///
/// # Errors
///
/// Propagates RSA errors (e.g. a modulus too small for the session
/// secret).
///
/// # Panics
///
/// Panics if `path` is empty, or if `exts` is non-empty and its length
/// differs from `path`'s.
pub fn build_onion_ext<R: Rng>(
    path: &[(PublicKey, Vec<u8>)],
    payload: &[u8],
    exts: &[Vec<u8>],
    rng: &mut R,
) -> Result<OnionPacket, CryptoError> {
    assert!(!path.is_empty(), "onion path must have at least one hop");
    assert!(
        exts.is_empty() || exts.len() == path.len(),
        "one extension per hop (or none at all)"
    );
    static NO_EXT: Vec<u8> = Vec::new();
    let ext_of = |i: usize| exts.get(i).unwrap_or(&NO_EXT);

    let key = AesKey::random(rng);
    let nonce = CtrNonce::random(rng);
    let body = Aes128::new(&key).ctr_apply(&nonce, payload);

    // Innermost layer, for the destination:
    // TAG_DEST ‖ k ‖ nonce, or TAG_DEST_EXT ‖ k ‖ nonce ‖ ext.
    let (dest_key, _) = path.last().expect("non-empty");
    let dest_ext = ext_of(path.len() - 1);
    let mut inner_plain = Vec::with_capacity(1 + 16 + 8 + dest_ext.len());
    inner_plain.push(if dest_ext.is_empty() { TAG_DEST } else { TAG_DEST_EXT });
    inner_plain.extend_from_slice(&key.0);
    inner_plain.extend_from_slice(&nonce.0);
    inner_plain.extend_from_slice(dest_ext);
    let mut header = hybrid::seal(dest_key, &inner_plain, rng)?.to_bytes();

    // Wrap for each mix in reverse order; layer for path[i] names path[i+1].
    for i in (0..path.len() - 1).rev() {
        let (mix_key, _) = &path[i];
        let (_, next_addr) = &path[i + 1];
        let ext = ext_of(i);
        let mut plain = Vec::with_capacity(5 + next_addr.len() + ext.len() + header.len());
        if ext.is_empty() {
            plain.push(TAG_RELAY);
            plain.extend_from_slice(&(next_addr.len() as u16).to_be_bytes());
            plain.extend_from_slice(next_addr);
        } else {
            plain.push(TAG_RELAY_EXT);
            plain.extend_from_slice(&(next_addr.len() as u16).to_be_bytes());
            plain.extend_from_slice(next_addr);
            plain.extend_from_slice(&(ext.len() as u16).to_be_bytes());
            plain.extend_from_slice(ext);
        }
        plain.extend_from_slice(&header);
        header = hybrid::seal(mix_key, &plain, rng)?.to_bytes();
    }

    Ok(OnionPacket { header, body })
}

/// Peels one layer of an onion header with this node's private key.
///
/// # Errors
///
/// Fails when the layer is encrypted for a different key or structurally
/// malformed.
pub fn peel(keypair: &KeyPair, header: &[u8]) -> Result<PeelResult, CryptoError> {
    let blob = SealedBlob::from_bytes(header)?;
    let plain = hybrid::open(keypair, &blob)?;
    match plain.split_first() {
        Some((&tag @ (TAG_DEST | TAG_DEST_EXT), rest)) => {
            if rest.len() < 24 || (tag == TAG_DEST && rest.len() != 24) {
                return Err(CryptoError::MalformedOnion("bad destination layer length"));
            }
            // `payload` here is the raw 24-byte session secret; callers
            // that hold the body should use `peel_with_body`, which turns
            // it into the decrypted content.
            Ok(PeelResult::Destination {
                payload: rest[..24].to_vec(),
                ext: rest[24..].to_vec(),
            })
        }
        Some((&tag @ (TAG_RELAY | TAG_RELAY_EXT), rest)) => {
            if rest.len() < 2 {
                return Err(CryptoError::MalformedOnion("truncated relay layer"));
            }
            let addr_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
            let next_hop = rest
                .get(2..2 + addr_len)
                .ok_or(CryptoError::MalformedOnion("truncated next-hop address"))?
                .to_vec();
            let mut at = 2 + addr_len;
            let ext = if tag == TAG_RELAY_EXT {
                let len_bytes = rest
                    .get(at..at + 2)
                    .ok_or(CryptoError::MalformedOnion("truncated extension length"))?;
                let ext_len = u16::from_be_bytes([len_bytes[0], len_bytes[1]]) as usize;
                at += 2;
                let ext = rest
                    .get(at..at + ext_len)
                    .ok_or(CryptoError::MalformedOnion("truncated extension"))?
                    .to_vec();
                at += ext_len;
                ext
            } else {
                Vec::new()
            };
            let header = rest[at..].to_vec();
            if header.is_empty() {
                return Err(CryptoError::MalformedOnion("missing inner header"));
            }
            Ok(PeelResult::Relay { next_hop, header, ext })
        }
        _ => Err(CryptoError::MalformedOnion("unknown layer tag")),
    }
}

/// Peels the final layer and decrypts the body: the variant of [`peel`]
/// used by the destination.
///
/// If the layer is a relay layer, behaves exactly like [`peel`]. If it is
/// the destination layer, returns the decrypted content.
///
/// # Errors
///
/// Same conditions as [`peel`].
pub fn peel_with_body(
    keypair: &KeyPair,
    header: &[u8],
    body: &[u8],
) -> Result<PeelResult, CryptoError> {
    match peel(keypair, header)? {
        PeelResult::Destination { payload: secret, ext } => {
            let mut key = [0u8; 16];
            key.copy_from_slice(&secret[..16]);
            let mut nonce = [0u8; 8];
            nonce.copy_from_slice(&secret[16..24]);
            let payload = Aes128::new(&AesKey(key)).ctr_apply(&CtrNonce(nonce), body);
            Ok(PeelResult::Destination { payload, ext })
        }
        relay => Ok(relay),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeySize;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn keys(n: usize, rng: &mut StdRng) -> Vec<KeyPair> {
        (0..n).map(|_| KeyPair::generate(RsaKeySize::Sim384, rng)).collect()
    }

    /// Builds the paper's canonical 4-node path S → A → B → D (S not in the
    /// onion) and walks the packet through it.
    #[test]
    fn full_path_walk() {
        let mut rng = StdRng::seed_from_u64(11);
        let ks = keys(3, &mut rng); // A, B, D
        let path: Vec<_> = ks
            .iter()
            .zip([b"A".to_vec(), b"B".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let packet = build_onion(&path, b"private view exchange", &mut rng).unwrap();

        let PeelResult::Relay { next_hop, header, .. } = peel(&ks[0], &packet.header).unwrap() else {
            panic!("A must relay");
        };
        assert_eq!(next_hop, b"B");

        let PeelResult::Relay { next_hop, header, .. } = peel(&ks[1], &header).unwrap() else {
            panic!("B must relay");
        };
        assert_eq!(next_hop, b"D");

        let PeelResult::Destination { payload, .. } =
            peel_with_body(&ks[2], &header, &packet.body).unwrap()
        else {
            panic!("D must terminate");
        };
        assert_eq!(payload, b"private view exchange");
    }

    #[test]
    fn single_hop_path() {
        let mut rng = StdRng::seed_from_u64(12);
        let ks = keys(1, &mut rng);
        let path = [(ks[0].public().clone(), b"D".to_vec())];
        let packet = build_onion(&path, b"direct", &mut rng).unwrap();
        let PeelResult::Destination { payload, .. } =
            peel_with_body(&ks[0], &packet.header, &packet.body).unwrap()
        else {
            panic!()
        };
        assert_eq!(payload, b"direct");
    }

    #[test]
    fn mix_cannot_read_content_or_inner_layers() {
        let mut rng = StdRng::seed_from_u64(13);
        let ks = keys(3, &mut rng);
        let path: Vec<_> = ks
            .iter()
            .zip([b"A".to_vec(), b"B".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let secret = b"the payload a mix must never see";
        let packet = build_onion(&path, secret, &mut rng).unwrap();

        // The body never contains the plaintext.
        assert!(!packet.body.windows(8).any(|w| secret.windows(8).any(|s| s == w)));

        // A peels its layer but what it forwards does not reveal D's
        // address or the payload.
        let PeelResult::Relay { next_hop, header, .. } = peel(&ks[0], &packet.header).unwrap() else {
            panic!()
        };
        assert_eq!(next_hop, b"B");
        assert!(peel(&ks[0], &header).is_err(), "A cannot peel B's layer");
    }

    #[test]
    fn wrong_key_cannot_peel() {
        let mut rng = StdRng::seed_from_u64(14);
        let ks = keys(2, &mut rng);
        let outsider = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let path: Vec<_> = ks
            .iter()
            .zip([b"A".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let packet = build_onion(&path, b"x", &mut rng).unwrap();
        assert!(peel(&outsider, &packet.header).is_err());
    }

    #[test]
    fn relay_cannot_tell_if_next_is_destination() {
        // The bytes a mix forwards look identical in structure whether the
        // next hop is another mix or the destination: both are SealedBlobs
        // of the same format. We verify that the forwarded header parses as
        // a SealedBlob in both cases and has no distinguishing tag in the
        // clear.
        let mut rng = StdRng::seed_from_u64(15);
        let ks = keys(3, &mut rng);
        // Path of length 2: A then D. A's forwarded header IS D's layer.
        let path2: Vec<_> = ks[..2]
            .iter()
            .zip([b"A".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let p2 = build_onion(&path2, b"x", &mut rng).unwrap();
        let PeelResult::Relay { header: h2, .. } = peel(&ks[0], &p2.header).unwrap() else {
            panic!()
        };
        // Path of length 3: A, B, D. A's forwarded header is B's (relay) layer.
        let path3: Vec<_> = ks
            .iter()
            .zip([b"A".to_vec(), b"B".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let p3 = build_onion(&path3, b"x", &mut rng).unwrap();
        let PeelResult::Relay { header: h3, .. } = peel(&ks[0], &p3.header).unwrap() else {
            panic!()
        };
        // Both are well-formed sealed blobs; the only visible difference is
        // length, which depends on remaining depth — the paper's 4-node
        // fixed-length paths make even that uniform.
        assert!(SealedBlob::from_bytes(&h2).is_ok());
        assert!(SealedBlob::from_bytes(&h3).is_ok());
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut rng = StdRng::seed_from_u64(16);
        let ks = keys(1, &mut rng);
        let path = [(ks[0].public().clone(), b"D".to_vec())];
        let packet = build_onion(&path, b"x", &mut rng).unwrap();
        let mut corrupted = packet.header.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x55;
        assert!(peel(&ks[0], &corrupted).is_err());
    }

    #[test]
    fn empty_payload_supported() {
        let mut rng = StdRng::seed_from_u64(17);
        let ks = keys(2, &mut rng);
        let path: Vec<_> = ks
            .iter()
            .zip([b"A".to_vec(), b"D".to_vec()])
            .map(|(k, a)| (k.public().clone(), a))
            .collect();
        let packet = build_onion(&path, b"", &mut rng).unwrap();
        assert!(packet.body.is_empty());
        let PeelResult::Relay { header, .. } = peel(&ks[0], &packet.header).unwrap() else {
            panic!()
        };
        let PeelResult::Destination { payload, .. } =
            peel_with_body(&ks[1], &header, &packet.body).unwrap()
        else {
            panic!()
        };
        assert!(payload.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        let mut rng = StdRng::seed_from_u64(18);
        let _ = build_onion(&[], b"x", &mut rng);
    }
}
