//! RSA key generation, encryption and signatures.
//!
//! The construction follows PKCS#1 v1.5 block formatting (type 1 blocks for
//! signatures, type 2 for encryption), with one simplification: signatures
//! embed the raw SHA-256 digest rather than an ASN.1 `DigestInfo`
//! structure. Private-key operations use the Chinese Remainder Theorem.
//!
//! # Key sizes
//!
//! The WHISPER paper uses 1 KB public keys on the wire. Reproducing
//! thousand-node experiments with full-size keys would spend most of the
//! wall clock in key *generation*, so [`RsaKeySize`] offers "sim-grade"
//! short moduli (384/512 bits) for large simulations next to the standard
//! 1024/2048-bit sizes used by the crypto cost benchmarks (Table II).
//!
//! ```
//! use whisper_crypto::rsa::{KeyPair, RsaKeySize};
//! use whisper_rand::SeedableRng;
//!
//! # fn main() -> Result<(), whisper_crypto::CryptoError> {
//! let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(1);
//! let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
//! let ct = kp.public().encrypt(b"hi", &mut rng)?;
//! assert_eq!(kp.decrypt(&ct)?, b"hi");
//! # Ok(())
//! # }
//! ```

use crate::bignum::{gen_prime, BigUint};
use crate::sha256::Sha256;
use crate::CryptoError;
use whisper_rand::Rng;

/// Supported RSA modulus sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RsaKeySize {
    /// 384-bit modulus — sim-grade, fast keygen, fits hybrid session keys.
    Sim384,
    /// 512-bit modulus — sim-grade.
    Sim512,
    /// 1024-bit modulus — the realistic size used for CPU-cost experiments.
    Std1024,
    /// 2048-bit modulus.
    Std2048,
}

impl RsaKeySize {
    /// Modulus size in bits.
    pub fn bits(self) -> usize {
        match self {
            RsaKeySize::Sim384 => 384,
            RsaKeySize::Sim512 => 512,
            RsaKeySize::Std1024 => 1024,
            RsaKeySize::Std2048 => 2048,
        }
    }

    /// Modulus size in bytes.
    pub fn bytes(self) -> usize {
        self.bits() / 8
    }
}

/// An RSA public key `(n, e)`.
///
/// The canonical wire serialization (`len(n) ‖ n ‖ len(e) ‖ e`) is
/// computed once at construction and cached, so the hot gossip paths
/// that ship the same unchanged key on every exchange never re-serialize
/// it — see [`wire_bytes`](Self::wire_bytes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
    k: usize, // modulus length in bytes
    /// Cached canonical serialization; a pure function of `(n, e)`, so
    /// the derived `PartialEq`/`Hash` stay consistent.
    wire: Vec<u8>,
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({} bits, fp {:02x?})", self.n.bits(), self.fingerprint())
    }
}

/// An RSA key pair with CRT acceleration parameters.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        write!(f, "KeyPair({} bits)", self.public.n.bits())
    }
}

const PUBLIC_EXPONENT: u64 = 65537;
/// Minimum PKCS#1 v1.5 padding overhead: 2 header bytes, >= 8 padding
/// bytes, 1 separator.
const PAD_OVERHEAD: usize = 11;

impl KeyPair {
    /// Generates a fresh key pair of the given size.
    pub fn generate<R: Rng>(size: RsaKeySize, rng: &mut R) -> Self {
        let half = size.bits() / 2;
        let e = BigUint::from(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(half, rng);
            if p == q {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            let Some(d) = e.modinv(&phi) else { continue };
            let n = p.mul(&q);
            debug_assert_eq!(n.bits(), size.bits());
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let qinv = q.modinv(&p).expect("p, q distinct primes");
            // Keep p > q irrelevant: CRT formula below handles either order
            // because (m1 - m2) is computed modulo p.
            return KeyPair {
                public: PublicKey::assemble(n, e, size.bytes()),
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// The public half of this key pair.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Raw CRT-accelerated private-key operation `c^d mod n`.
    ///
    /// Elapsed time is accounted in [`crate::costs`].
    fn private_op(&self, c: &BigUint) -> BigUint {
        let started = std::time::Instant::now();
        let m1 = c.modpow(&self.dp, &self.p);
        let m2 = c.modpow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub(&m2_mod_p)
        } else {
            m1.add(&self.p).sub(&m2_mod_p)
        };
        let h = self.qinv.mul(&diff).rem(&self.p);
        let out = m2.add(&h.mul(&self.q));
        crate::costs::add_rsa(started.elapsed().as_nanos() as u64);
        out
    }

    /// Decrypts a PKCS#1 v1.5 type-2 ciphertext produced by
    /// [`PublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::CiphertextOutOfRange`] if the ciphertext does
    /// not fit the modulus and [`CryptoError::InvalidPadding`] if the
    /// decrypted block is not well-formed (e.g. the ciphertext was produced
    /// for a different key).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(CryptoError::CiphertextOutOfRange);
        }
        let m = self.private_op(&c);
        let em = m.to_bytes_be_padded(self.public.k);
        // EM = 0x00 0x02 PS 0x00 M
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            // Padding string must be at least 8 bytes.
            return Err(CryptoError::InvalidPadding);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Serializes the full key pair as `len(p) ‖ p ‖ len(q) ‖ q ‖ len(e) ‖ e`
    /// (two-byte big-endian length prefixes). The CRT parameters are
    /// recomputed on load, so the encoding stays minimal (~3/2 the modulus
    /// size). Used by the PPSS group journal to persist a leader's group
    /// key across crash-restart; never sent on the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let p = self.p.to_bytes_be();
        let q = self.q.to_bytes_be();
        let e = self.public.e.to_bytes_be();
        let mut out = Vec::with_capacity(6 + p.len() + q.len() + e.len());
        for part in [&p, &q, &e] {
            out.extend_from_slice(&(part.len() as u16).to_be_bytes());
            out.extend_from_slice(part);
        }
        out
    }

    /// Parses a key pair serialized by [`to_bytes`](Self::to_bytes),
    /// rebuilding the CRT acceleration parameters. Returns `None` on
    /// malformed input (wrong framing, non-invertible exponent, or a
    /// modulus whose bit length is not a whole number of bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        fn take<'a>(bytes: &mut &'a [u8]) -> Option<&'a [u8]> {
            let len = u16::from_be_bytes([*bytes.first()?, *bytes.get(1)?]) as usize;
            let part = bytes.get(2..2 + len)?;
            *bytes = &bytes[2 + len..];
            Some(part)
        }
        let mut rest = bytes;
        let p = BigUint::from_bytes_be(take(&mut rest)?);
        let q = BigUint::from_bytes_be(take(&mut rest)?);
        let e = BigUint::from_bytes_be(take(&mut rest)?);
        if !rest.is_empty() || p.is_zero() || q.is_zero() || p == q {
            return None;
        }
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let phi = p1.mul(&q1);
        let d = e.modinv(&phi)?;
        let n = p.mul(&q);
        if !n.bits().is_multiple_of(8) {
            return None;
        }
        let dp = d.rem(&p1);
        let dq = d.rem(&q1);
        let qinv = q.modinv(&p)?;
        let k = n.bits() / 8;
        Some(KeyPair {
            public: PublicKey::assemble(n, e, k),
            p,
            q,
            dp,
            dq,
            qinv,
        })
    }

    /// Signs `message` (SHA-256 digest in a PKCS#1 v1.5 type-1 block).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let digest = Sha256::digest(message);
        let k = self.public.k;
        // EM = 0x00 0x01 0xFF...0xFF 0x00 digest
        let mut em = vec![0xFFu8; k];
        em[0] = 0x00;
        em[1] = 0x01;
        em[k - 33] = 0x00;
        em[k - 32..].copy_from_slice(&digest);
        let m = BigUint::from_bytes_be(&em);
        self.private_op(&m).to_bytes_be_padded(k)
    }
}

impl PublicKey {
    /// Builds a key from its parts, computing the cached canonical wire
    /// serialization. Every construction path funnels through here so the
    /// cache can never disagree with a fresh encode.
    fn assemble(n: BigUint, e: BigUint, k: usize) -> PublicKey {
        let n_bytes = n.to_bytes_be();
        let e_bytes = e.to_bytes_be();
        let mut wire = Vec::with_capacity(4 + n_bytes.len() + e_bytes.len());
        wire.extend_from_slice(&(n_bytes.len() as u16).to_be_bytes());
        wire.extend_from_slice(&n_bytes);
        wire.extend_from_slice(&(e_bytes.len() as u16).to_be_bytes());
        wire.extend_from_slice(&e_bytes);
        PublicKey { n, e, k, wire }
    }

    /// Maximum plaintext size for a single [`encrypt`](Self::encrypt) call.
    pub fn max_payload(&self) -> usize {
        self.k - PAD_OVERHEAD
    }

    /// Modulus length in bytes.
    pub fn modulus_bytes(&self) -> usize {
        self.k
    }

    /// Encrypts `message` with PKCS#1 v1.5 type-2 padding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] if `message` exceeds
    /// [`max_payload`](Self::max_payload).
    pub fn encrypt<R: Rng>(&self, message: &[u8], rng: &mut R) -> Result<Vec<u8>, CryptoError> {
        if message.len() > self.max_payload() {
            return Err(CryptoError::MessageTooLong {
                message_len: message.len(),
                max_len: self.max_payload(),
            });
        }
        let mut em = vec![0u8; self.k];
        em[1] = 0x02;
        let ps_len = self.k - 3 - message.len();
        for b in &mut em[2..2 + ps_len] {
            *b = rng.gen_range(1..=255u8);
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(message);
        let m = BigUint::from_bytes_be(&em);
        let started = std::time::Instant::now();
        let c = m.modpow(&self.e, &self.n);
        crate::costs::add_rsa(started.elapsed().as_nanos() as u64);
        Ok(c.to_bytes_be_padded(self.k))
    }

    /// Verifies a signature produced by [`KeyPair::sign`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] if the signature does not
    /// match `message` under this key.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let started = std::time::Instant::now();
        let v = s.modpow(&self.e, &self.n);
        crate::costs::add_rsa(started.elapsed().as_nanos() as u64);
        let em = v.to_bytes_be_padded(self.k);
        if em[0] != 0x00 || em[1] != 0x01 {
            return Err(CryptoError::BadSignature);
        }
        if em[2..self.k - 33].iter().any(|&b| b != 0xFF) || em[self.k - 33] != 0x00 {
            return Err(CryptoError::BadSignature);
        }
        let digest = Sha256::digest(message);
        if em[self.k - 32..] != digest {
            return Err(CryptoError::BadSignature);
        }
        Ok(())
    }

    /// Serializes the key as `len(n) ‖ n ‖ len(e) ‖ e` (two-byte
    /// big-endian length prefixes). Returns a copy of the cached blob;
    /// use [`wire_bytes`](Self::wire_bytes) to avoid the allocation.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.wire.clone()
    }

    /// The cached canonical serialization, borrowed. Writers embedding
    /// the key in a wire message can copy straight from this slice
    /// instead of re-serializing the (unchanged) key on every send.
    pub fn wire_bytes(&self) -> &[u8] {
        &self.wire
    }

    /// Parses a key serialized by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let n_len = u16::from_be_bytes([*bytes.first()?, *bytes.get(1)?]) as usize;
        let n_bytes = bytes.get(2..2 + n_len)?;
        let rest = &bytes[2 + n_len..];
        let e_len = u16::from_be_bytes([*rest.first()?, *rest.get(1)?]) as usize;
        let e_bytes = rest.get(2..2 + e_len)?;
        let n = BigUint::from_bytes_be(n_bytes);
        if !n.bits().is_multiple_of(8) || n.is_zero() {
            return None;
        }
        let k = n.bits() / 8;
        Some(PublicKey::assemble(n, BigUint::from_bytes_be(e_bytes), k))
    }

    /// Short (8-byte) SHA-256-based fingerprint, used as a compact key
    /// identifier in view entries.
    pub fn fingerprint(&self) -> [u8; 8] {
        let digest = Sha256::digest(&self.wire);
        let mut fp = [0u8; 8];
        fp.copy_from_slice(&digest[..8]);
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn keypair() -> KeyPair {
        KeyPair::generate(RsaKeySize::Sim384, &mut rng())
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut r = rng();
        let kp = keypair();
        for msg in [&b""[..], b"x", b"hello world", &[0u8; 37]] {
            let ct = kp.public().encrypt(msg, &mut r).unwrap();
            assert_eq!(ct.len(), kp.public().modulus_bytes());
            assert_eq!(kp.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn message_too_long_rejected() {
        let mut r = rng();
        let kp = keypair();
        let too_long = vec![1u8; kp.public().max_payload() + 1];
        assert!(matches!(
            kp.public().encrypt(&too_long, &mut r),
            Err(CryptoError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn decrypt_with_wrong_key_fails() {
        let mut r = rng();
        let kp1 = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        let kp2 = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        let ct = kp1.public().encrypt(b"secret", &mut r).unwrap();
        assert!(kp2.decrypt(&ct).is_err());
    }

    #[test]
    fn ciphertext_out_of_range_rejected() {
        let kp = keypair();
        let huge = vec![0xFF; kp.public().modulus_bytes() + 1];
        assert_eq!(kp.decrypt(&huge), Err(CryptoError::CiphertextOutOfRange));
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = keypair();
        let sig = kp.sign(b"the membership stays secret");
        kp.public().verify(b"the membership stays secret", &sig).unwrap();
    }

    #[test]
    fn tampered_message_fails_verification() {
        let kp = keypair();
        let sig = kp.sign(b"original");
        assert_eq!(
            kp.public().verify(b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_fails_verification() {
        let kp = keypair();
        let mut sig = kp.sign(b"original");
        sig[10] ^= 1;
        assert_eq!(
            kp.public().verify(b"original", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn signature_from_other_key_fails() {
        let mut r = rng();
        let kp1 = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        let kp2 = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        let sig = kp1.sign(b"msg");
        assert!(kp2.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn public_key_serialization_round_trip() {
        let kp = keypair();
        let bytes = kp.public().to_bytes();
        let parsed = PublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, kp.public());
        assert_eq!(parsed.fingerprint(), kp.public().fingerprint());
    }

    #[test]
    fn cached_wire_blob_matches_fresh_encode() {
        // The cached blob must equal a from-scratch serialization of
        // (n, e) on every construction path: generate, parse, and
        // key-pair reload.
        fn fresh_encode(key: &PublicKey) -> Vec<u8> {
            let n = key.n.to_bytes_be();
            let e = key.e.to_bytes_be();
            let mut out = Vec::with_capacity(4 + n.len() + e.len());
            out.extend_from_slice(&(n.len() as u16).to_be_bytes());
            out.extend_from_slice(&n);
            out.extend_from_slice(&(e.len() as u16).to_be_bytes());
            out.extend_from_slice(&e);
            out
        }
        let kp = keypair();
        assert_eq!(kp.public().wire_bytes(), fresh_encode(kp.public()).as_slice());
        assert_eq!(kp.public().to_bytes(), kp.public().wire_bytes());
        let parsed = PublicKey::from_bytes(&kp.public().to_bytes()).unwrap();
        assert_eq!(parsed.wire_bytes(), kp.public().wire_bytes());
        let reloaded = KeyPair::from_bytes(&kp.to_bytes()).unwrap();
        assert_eq!(reloaded.public().wire_bytes(), kp.public().wire_bytes());
    }

    #[test]
    fn keypair_serialization_round_trip() {
        let kp = keypair();
        let bytes = kp.to_bytes();
        let parsed = KeyPair::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.public(), kp.public());
        // The rebuilt CRT parameters must actually work.
        let sig = parsed.sign(b"journal replay");
        kp.public().verify(b"journal replay", &sig).unwrap();
        let mut r = rng();
        let ct = kp.public().encrypt(b"secret", &mut r).unwrap();
        assert_eq!(parsed.decrypt(&ct).unwrap(), b"secret");
    }

    #[test]
    fn keypair_from_garbage_is_none() {
        assert!(KeyPair::from_bytes(&[]).is_none());
        assert!(KeyPair::from_bytes(&[0x00, 0x02, 0x01]).is_none()); // truncated
        let mut bytes = keypair().to_bytes();
        bytes.push(0); // trailing garbage
        assert!(KeyPair::from_bytes(&bytes).is_none());
    }

    #[test]
    fn public_key_from_garbage_is_none() {
        assert!(PublicKey::from_bytes(&[]).is_none());
        assert!(PublicKey::from_bytes(&[0xFF]).is_none());
        assert!(PublicKey::from_bytes(&[0x00, 0x10, 0x01]).is_none()); // truncated
    }

    #[test]
    fn fingerprints_differ_between_keys() {
        let mut r = rng();
        let a = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        let b = KeyPair::generate(RsaKeySize::Sim384, &mut r);
        assert_ne!(a.public().fingerprint(), b.public().fingerprint());
    }

    #[test]
    fn sim512_works_too() {
        let mut r = rng();
        let kp = KeyPair::generate(RsaKeySize::Sim512, &mut r);
        let ct = kp.public().encrypt(b"512-bit modulus", &mut r).unwrap();
        assert_eq!(kp.decrypt(&ct).unwrap(), b"512-bit modulus");
        assert_eq!(kp.public().modulus_bytes(), 64);
    }

    #[test]
    fn key_sizes_report_bits() {
        assert_eq!(RsaKeySize::Sim384.bits(), 384);
        assert_eq!(RsaKeySize::Std1024.bytes(), 128);
    }

    #[test]
    fn debug_output_hides_private_material() {
        let kp = keypair();
        let s = format!("{kp:?}");
        assert!(s.contains("384"));
        assert!(!s.contains("dp"));
    }
}
