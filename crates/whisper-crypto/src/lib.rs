#![deny(missing_docs)]
//! Cryptographic substrate for the WHISPER middleware reproduction.
//!
//! This crate implements, from scratch, every cryptographic primitive the
//! WHISPER paper (ICDCS 2011) relies on:
//!
//! * [`bignum`] — arbitrary-precision unsigned integer arithmetic
//!   (schoolbook and Montgomery multiplication, Knuth division,
//!   Miller–Rabin primality, prime generation),
//! * [`rsa`] — RSA key generation, PKCS#1-v1.5-style encryption and
//!   signatures with CRT-accelerated private-key operations,
//! * [`aes`] — the AES-128 block cipher and a CTR stream mode,
//! * [`sha256`] — the SHA-256 hash function,
//! * [`hybrid`] — RSA-sealed AES session keys ("seal"/"open"),
//! * [`onion`] — the layered onion construction of paper §III-A: a small
//!   RSA-protected routing header plus an AES-protected body,
//! * [`circuit`] — circuit amortization: per-hop AES link keys established
//!   through the first onion so steady-state packets skip RSA entirely.
//!
//! # Security disclaimer
//!
//! This is a *research reproduction*. The implementations are functionally
//! correct (and extensively tested against their specifications) but are
//! **not constant-time, not side-channel hardened, and must not be used to
//! protect real data**. Simulation configurations additionally use short
//! RSA moduli (384–512 bits) so that thousand-node experiments finish in
//! reasonable time; see `RsaKeySize` in [`rsa`].
//!
//! # Example
//!
//! ```
//! use whisper_crypto::rsa::{KeyPair, RsaKeySize};
//! use whisper_crypto::hybrid;
//! use whisper_rand::SeedableRng;
//!
//! # fn main() -> Result<(), whisper_crypto::CryptoError> {
//! let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(42);
//! let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
//! let sealed = hybrid::seal(kp.public(), b"the content stays private", &mut rng)?;
//! let opened = hybrid::open(&kp, &sealed)?;
//! assert_eq!(opened, b"the content stays private");
//! # Ok(())
//! # }
//! ```

pub mod aes;
pub mod bignum;
pub mod circuit;
pub mod costs;
pub mod hybrid;
pub mod onion;
pub mod rsa;
pub mod sha256;

mod error;

pub use error::CryptoError;
