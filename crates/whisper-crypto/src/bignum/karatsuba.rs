//! Karatsuba multiplication for large operands.
//!
//! Schoolbook multiplication is O(n²) in the limb count; Karatsuba
//! recursion brings products of large values to O(n^1.58) by trading one
//! of the four half-size multiplications for a handful of additions:
//!
//! ```text
//! x·y = z2·B² + z1·B + z0     with  B = 2^(64·half)
//! z2 = xh·yh,  z0 = xl·yl,  z1 = (xh+xl)(yh+yl) − z2 − z0
//! ```
//!
//! RSA-sized operands (6–32 limbs) sit near the break-even point, so the
//! threshold below keeps small products on the schoolbook path;
//! [`BigUint::mul`] dispatches automatically.

use super::BigUint;

/// Operands with at least this many limbs on both sides take the
/// Karatsuba path. Below it, schoolbook's lower constant wins.
pub(crate) const KARATSUBA_THRESHOLD: usize = 16;

impl BigUint {
    /// Karatsuba product of `self` and `other`. Exposed crate-wide so the
    /// dispatching [`BigUint::mul`] and the tests can call it directly.
    pub(crate) fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        if self.limbs.len() < KARATSUBA_THRESHOLD || other.limbs.len() < KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        let half = n / 2;
        let (xl, xh) = self.split_at_limb(half);
        let (yl, yh) = other.split_at_limb(half);

        let z0 = xl.mul_karatsuba(&yl);
        let z2 = xh.mul_karatsuba(&yh);
        let z1 = xl
            .add(&xh)
            .mul_karatsuba(&yl.add(&yh))
            .sub(&z2)
            .sub(&z0);

        z2.shl(half * 128).add(&z1.shl(half * 64)).add(&z0)
    }

    /// Splits into (low `at` limbs, remaining high limbs).
    fn split_at_limb(&self, at: usize) -> (BigUint, BigUint) {
        if self.limbs.len() <= at {
            return (self.clone(), BigUint::zero());
        }
        (
            BigUint::from_limbs(self.limbs[..at].to_vec()),
            BigUint::from_limbs(self.limbs[at..].to_vec()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::{Rng, SeedableRng};

    fn random_big(limbs: usize, rng: &mut StdRng) -> BigUint {
        BigUint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
    }

    #[test]
    fn matches_schoolbook_across_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for (la, lb) in [(16, 16), (17, 23), (32, 32), (40, 8), (8, 40), (64, 64)] {
            let a = random_big(la, &mut rng);
            let b = random_big(lb, &mut rng);
            assert_eq!(
                a.mul_karatsuba(&b),
                a.mul_schoolbook(&b),
                "{la}x{lb} limbs"
            );
        }
    }

    #[test]
    fn degenerate_operands() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_big(20, &mut rng);
        assert_eq!(a.mul_karatsuba(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul_karatsuba(&BigUint::one()), a);
    }

    #[test]
    fn split_reassembles() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_big(20, &mut rng);
        for at in [0usize, 1, 10, 19, 20, 25] {
            let (lo, hi) = a.split_at_limb(at);
            assert_eq!(hi.shl(at * 64).add(&lo), a, "split at {at}");
        }
    }

    #[test]
    fn dispatching_mul_uses_it_transparently() {
        // The public `mul` must agree with both engines at the boundary.
        let mut rng = StdRng::seed_from_u64(4);
        for limbs in [15usize, 16, 17, 31, 33] {
            let a = random_big(limbs, &mut rng);
            let b = random_big(limbs, &mut rng);
            assert_eq!(a.mul(&b), a.mul_schoolbook(&b), "{limbs} limbs");
        }
    }
}
