//! Karatsuba multiplication for large operands.
//!
//! Schoolbook multiplication is O(n²) in the limb count; Karatsuba
//! recursion brings products of large values to O(n^1.58) by trading one
//! of the four half-size multiplications for a handful of additions:
//!
//! ```text
//! x·y = z2·B² + z1·B + z0     with  B = 2^(64·half)
//! z2 = xh·yh,  z0 = xl·yl,  z1 = (xh+xl)(yh+yl) − z2 − z0
//! ```
//!
//! RSA-sized operands (6–32 limbs) sit near the break-even point, so the
//! threshold below keeps small products on the schoolbook path;
//! [`BigUint::mul`] dispatches automatically.

use super::BigUint;

/// Operands with at least this many limbs on both sides take the
/// Karatsuba path. Below it, schoolbook's lower constant wins.
///
/// Re-tuned after the recombination switched to limb-aligned shifts
/// (`shl_limbs`). `bignum/mul` micro-benchmark on the reference machine
/// (minimum ns/iter across 20 samples, lower is better):
///
/// | threshold | 1024-bit | 2048-bit | 4096-bit |
/// |-----------|----------|----------|----------|
/// | 8         | 2,620    | 9,320    | 32,370   |
/// | 12        | 752      | 2,880    | 10,030   |
/// | 16 (old)  | 870      | 3,050    | 9,570    |
/// | 24        | 353      | 1,600    | 5,850    |
/// | 32        | 369      | 1,590    | 5,800    |
/// | 48        | 374      | 1,220    | 4,790    |
/// | 64        | 374      | 1,270    | 4,820    |
/// | 96        | 374      | 1,520    | 6,040    |
///
/// The measured break-even is far higher than the old threshold of 16:
/// this implementation's recursion allocates on every level (splits,
/// sums, shifts), so one Karatsuba level only pays for itself once the
/// schoolbook sub-products are ≥32 limbs each. 48 keeps every RSA-sized
/// operand (6–16 limbs) and 2048-bit products on the tight schoolbook
/// loop and wins ≈20 % at 4096 bits with a single recursion level.
pub(crate) const KARATSUBA_THRESHOLD: usize = 48;

impl BigUint {
    /// Karatsuba product of `self` and `other`. Exposed crate-wide so the
    /// dispatching [`BigUint::mul`] and the tests can call it directly.
    pub(crate) fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        if self.limbs.len() < KARATSUBA_THRESHOLD || other.limbs.len() < KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        let half = n / 2;
        let (xl, xh) = self.split_at_limb(half);
        let (yl, yh) = other.split_at_limb(half);

        let z0 = xl.mul_karatsuba(&yl);
        let z2 = xh.mul_karatsuba(&yh);
        let z1 = xl
            .add(&xh)
            .mul_karatsuba(&yl.add(&yh))
            .sub(&z2)
            .sub(&z0);

        z2.shl_limbs(half * 2).add(&z1.shl_limbs(half)).add(&z0)
    }

    /// Splits into (low `at` limbs, remaining high limbs).
    fn split_at_limb(&self, at: usize) -> (BigUint, BigUint) {
        if self.limbs.len() <= at {
            return (self.clone(), BigUint::zero());
        }
        (
            BigUint::from_limbs(self.limbs[..at].to_vec()),
            BigUint::from_limbs(self.limbs[at..].to_vec()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::{Rng, SeedableRng};

    fn random_big(limbs: usize, rng: &mut StdRng) -> BigUint {
        BigUint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
    }

    #[test]
    fn matches_schoolbook_across_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for (la, lb) in [(16, 16), (17, 23), (48, 48), (49, 63), (97, 8), (8, 97), (64, 64), (128, 128)] {
            let a = random_big(la, &mut rng);
            let b = random_big(lb, &mut rng);
            assert_eq!(
                a.mul_karatsuba(&b),
                a.mul_schoolbook(&b),
                "{la}x{lb} limbs"
            );
        }
    }

    #[test]
    fn degenerate_operands() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_big(20, &mut rng);
        assert_eq!(a.mul_karatsuba(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul_karatsuba(&BigUint::one()), a);
    }

    #[test]
    fn split_reassembles() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_big(20, &mut rng);
        for at in [0usize, 1, 10, 19, 20, 25] {
            let (lo, hi) = a.split_at_limb(at);
            assert_eq!(hi.shl(at * 64).add(&lo), a, "split at {at}");
        }
    }

    #[test]
    fn dispatching_mul_uses_it_transparently() {
        // The public `mul` must agree with both engines at the boundary.
        let mut rng = StdRng::seed_from_u64(4);
        for limbs in [15usize, 47, 48, 49, 65] {
            let a = random_big(limbs, &mut rng);
            let b = random_big(limbs, &mut rng);
            assert_eq!(a.mul(&b), a.mul_schoolbook(&b), "{limbs} limbs");
        }
    }
}
