// The reference algorithms (FIPS 197, TAOCP 4.3.1, CIOS) are specified
// index-wise; keeping the indices makes them auditable against the spec.
#![allow(clippy::needless_range_loop)]

//! Primality testing (Miller–Rabin) and random prime generation.

use super::BigUint;
use whisper_rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Number of Miller–Rabin rounds; gives an error probability far below
/// 2^-80 for random candidates.
const MR_ROUNDS: usize = 24;

/// Tests `n` for primality with trial division plus Miller–Rabin.
///
/// Returns `true` if `n` is (very probably) prime. Deterministic and exact
/// for all `n` representable in `u64`.
pub fn is_probable_prime<R: Rng>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from(p);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);

    'witness: for round in 0..MR_ROUNDS {
        // Use fixed small bases first (strong for 64-bit inputs), then
        // random bases for larger candidates.
        let a = if round < SMALL_PRIMES.len().min(12) {
            BigUint::from(SMALL_PRIMES[round])
        } else {
            random_below(rng, &n_minus_1)
        };
        if a.is_zero() || a.is_one() {
            continue;
        }
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (so products of two such primes have
/// exactly `2*bits` bits, as RSA key generation requires) and the low bit
/// is forced to 1.
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn gen_prime<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        // Force exact bit length with the two top bits set, and oddness.
        candidate = candidate
            .add(&BigUint::one().shl(bits - 1))
            .add(&BigUint::one().shl(bits - 2));
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        // Trim in the unlikely event the additions overflowed the length.
        if candidate.bits() != bits {
            continue;
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Uniformly random value with at most `bits` bits (top two bits cleared so
/// `gen_prime` can set them without overflow).
fn random_bits<R: Rng>(rng: &mut R, bits: usize) -> BigUint {
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits - (limbs - 1) * 64;
    if top_bits < 64 {
        v[limbs - 1] &= (1u64 << top_bits) - 1;
    }
    let mut out = BigUint::from_limbs(v);
    // Clear the two top bit positions (they are re-set by the caller).
    for b in [bits - 1, bits - 2] {
        if out.bit(b) {
            out = out.sub(&BigUint::one().shl(b));
        }
    }
    out
}

/// Uniformly random value in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub(crate) fn random_below<R: Rng>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero());
    let bits = bound.bits();
    let limbs = bits.div_ceil(64);
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        if top_bits < 64 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        let out = BigUint::from_limbs(v);
        if out < *bound {
            return out;
        }
    }
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut tz = 0;
    for &limb in &n.limbs {
        if limb == 0 {
            tz += 64;
        } else {
            tz += limb.trailing_zeros() as usize;
            break;
        }
    }
    tz
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 101, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from(p), &mut r), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 91, 561, 41041, 1_000_000_008] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c}");
        }
    }

    #[test]
    fn generated_primes_have_exact_length() {
        let mut r = rng();
        for bits in [64usize, 128, 192] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit set");
        }
    }

    #[test]
    fn generated_prime_passes_independent_test() {
        let mut r = rng();
        let p = gen_prime(96, &mut r);
        let mut r2 = StdRng::seed_from_u64(999);
        assert!(is_probable_prime(&p, &mut r2));
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            let v = random_below(&mut r, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(trailing_zeros(&BigUint::from(8u64)), 3);
        assert_eq!(trailing_zeros(&BigUint::from(1u64)), 0);
        assert_eq!(trailing_zeros(&BigUint::from_limbs(vec![0, 4])), 66);
    }
}
