// The reference algorithms (FIPS 197, TAOCP 4.3.1, CIOS) are specified
// index-wise; keeping the indices makes them auditable against the spec.
#![allow(clippy::needless_range_loop)]

//! Basic arithmetic on [`BigUint`]: addition, subtraction, multiplication,
//! shifts and Knuth Algorithm D division.

use super::BigUint;

impl BigUint {
    /// Returns `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u128 = 0;
        for i in 0..long.len() {
            let s = long[i] as u128 + *short.get(i).unwrap_or(&0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Returns `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i128 = 0;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i128 - *other.limbs.get(i).unwrap_or(&0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Returns `self * other`.
    ///
    /// Dispatches to Karatsuba recursion for large operands and to
    /// schoolbook multiplication otherwise.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.limbs.len() >= super::karatsuba::KARATSUBA_THRESHOLD
            && other.limbs.len() >= super::karatsuba::KARATSUBA_THRESHOLD
        {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    /// Schoolbook O(n²) product.
    pub(crate) fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let s = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let s = out[k] as u128 + carry;
                out[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Returns `self << (limbs * 64)` by prepending zero limbs — a single
    /// allocation and `memcpy`, with none of the per-limb bit shifting
    /// [`BigUint::shl`] pays for unaligned amounts. This is the shift
    /// Karatsuba recombination needs.
    pub(crate) fn shl_limbs(&self, limbs: usize) -> BigUint {
        if self.is_zero() || limbs == 0 {
            return self.clone();
        }
        let mut out = vec![0u64; limbs + self.limbs.len()];
        out[limbs..].copy_from_slice(&self.limbs);
        BigUint::from_limbs(out)
    }

    /// Returns `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Returns `self >> bits` (bits shifted out are lost).
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// Uses short division for single-limb divisors and Knuth Algorithm D
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem: u128 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            return (BigUint::from_limbs(q), BigUint::from(rem as u64));
        }
        self.div_rem_knuth(divisor)
    }

    /// Returns `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        const B: u128 = 1u128 << 64;
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let vn = divisor.shl(shift).limbs;
        let mut un = self.shl(shift).limbs;
        un.push(0); // extra high limb for the algorithm
        let n = vn.len();
        let m = un.len() - 1 - n;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >= B
                || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= B {
                    break;
                }
            }

            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut k: i128 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u128;
                let t = un[i + j] as i128 - k - (p as u64) as i128;
                un[i + j] = t as u64;
                k = (p >> 64) as i128 - (t >> 64);
            }
            let t = un[j + n] as i128 - k;
            un[j + n] = t as u64;

            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let rem = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
        (BigUint::from_limbs(q), rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from(u64::MAX);
        let b = big(1);
        assert_eq!(a.add(&b), BigUint::from_limbs(vec![0, 1]));
    }

    #[test]
    fn add_zero_identity() {
        let a = big(12345);
        assert_eq!(a.add(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().add(&a), a);
    }

    #[test]
    fn sub_with_borrow() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = big(1);
        assert_eq!(a.sub(&b), BigUint::from(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow() {
        assert_eq!(big(3).checked_sub(&big(4)), None);
        assert_eq!(big(4).checked_sub(&big(4)), Some(BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        big(1).sub(&big(2));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(big(6).mul(&big(7)), big(42));
        assert_eq!(big(0).mul(&big(7)), BigUint::zero());
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let m = BigUint::from(u64::MAX);
        let sq = m.mul(&m);
        assert_eq!(sq, BigUint::from_limbs(vec![1, u64::MAX - 1]));
    }

    #[test]
    fn shifts() {
        let a = big(1);
        assert_eq!(a.shl(64), BigUint::from_limbs(vec![0, 1]));
        assert_eq!(a.shl(65).shr(65), a);
        assert_eq!(a.shr(1), BigUint::zero());
        let b = big(0b1011);
        assert_eq!(b.shl(3), big(0b1011000));
        assert_eq!(b.shr(2), big(0b10));
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!(q, big(14));
        assert_eq!(r, big(2));
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let (q, r) = big(3).div_rem(&big(10));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, big(3));
    }

    #[test]
    fn div_rem_multi_limb() {
        // (a * b + r) / b == a with remainder r for multi-limb values.
        let a = BigUint::from_limbs(vec![0xdeadbeef, 0x12345678, 0x1]);
        let b = BigUint::from_limbs(vec![0xcafebabe, 0x9]);
        let r = BigUint::from_limbs(vec![0x42, 0x3]);
        assert!(r < b);
        let n = a.mul(&b).add(&r);
        let (q, rem) = n.div_rem(&b);
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn div_rem_triggers_addback_path() {
        // A case engineered to exercise the rare add-back branch:
        // dividend = B^2 * (B/2) where divisor = (B/2 + 1) * B - 1 style
        // values; we simply check q*d + r == n and r < d on many awkward
        // shapes instead of asserting the branch itself.
        let b_half = 1u64 << 63;
        let d = BigUint::from_limbs(vec![u64::MAX, b_half]);
        let n = BigUint::from_limbs(vec![0, 0, b_half]);
        let (q, r) = n.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), n);
    }
}
