// The reference algorithms (FIPS 197, TAOCP 4.3.1, CIOS) are specified
// index-wise; keeping the indices makes them auditable against the spec.
#![allow(clippy::needless_range_loop)]

//! Modular arithmetic: Montgomery-accelerated exponentiation and modular
//! inverses.

use super::BigUint;
use std::cell::RefCell;
use std::rc::Rc;

/// Montgomery context for a fixed odd modulus.
///
/// Conversion into Montgomery form costs one division; each multiplication
/// inside the domain is then division-free (CIOS algorithm).
pub struct Montgomery {
    m: Vec<u64>,
    /// `-m[0]^-1 mod 2^64`.
    n0: u64,
    /// `R^2 mod m` where `R = 2^(64*len)` — used to enter the domain.
    r2: BigUint,
}

impl Montgomery {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or zero.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero() && !modulus.is_even(), "Montgomery modulus must be odd");
        let m = modulus.limbs.clone();
        let n0 = inv64(m[0]).wrapping_neg();
        // R^2 mod m computed as 2^(128*len) mod m via shifting.
        let r2 = BigUint::one().shl(m.len() * 64 * 2).rem(modulus);
        Montgomery { m, n0, r2 }
    }

    fn len(&self) -> usize {
        self.m.len()
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod m`.
    /// `a` and `b` are limb vectors of length `len()` (zero padded).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.len();
        let mut t = vec![0u64; n + 2];
        for i in 0..n {
            // t += a[i] * b
            let mut carry: u128 = 0;
            for j in 0..n {
                let s = t[j] as u128 + a[i] as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[n] as u128 + carry;
            t[n] = s as u64;
            t[n + 1] = (s >> 64) as u64;

            // Reduce: make t divisible by 2^64 and shift down one limb.
            let u = t[0].wrapping_mul(self.n0);
            let mut carry: u128 = (t[0] as u128 + u as u128 * self.m[0] as u128) >> 64;
            for j in 1..n {
                let s = t[j] as u128 + u as u128 * self.m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[n] as u128 + carry;
            t[n - 1] = s as u64;
            t[n] = t[n + 1] + (s >> 64) as u64;
            t[n + 1] = 0;
        }
        // Result is t[0..=n] and is < 2m: subtract m if needed.
        let needs_sub = t[n] != 0 || cmp_limbs(&t[..n], &self.m) != std::cmp::Ordering::Less;
        let mut out = t[..n].to_vec();
        if needs_sub {
            let mut borrow: i128 = 0;
            for i in 0..n {
                let d = out[i] as i128 - self.m[i] as i128 - borrow;
                if d < 0 {
                    out[i] = (d + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    out[i] = d as u64;
                    borrow = 0;
                }
            }
            debug_assert_eq!(borrow as u64, t[n]);
        }
        out
    }

    fn pad(&self, v: &BigUint) -> Vec<u64> {
        let mut l = v.limbs.clone();
        l.resize(self.len(), 0);
        l
    }

    /// Converts `v` (already `< m`) into the Montgomery domain.
    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        self.mont_mul(&self.pad(v), &self.pad(&self.r2))
    }

    /// Leaves the Montgomery domain.
    #[allow(clippy::wrong_self_convention)] // converts `v`, not `self`
    fn from_mont(&self, v: &[u64]) -> BigUint {
        let one = {
            let mut l = vec![0u64; self.len()];
            l[0] = 1;
            l
        };
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// Exponents below this many bits use plain square-and-multiply: the
    /// fixed-window table costs `WINDOW_TABLE_MULS` multiplications up
    /// front, which never amortizes for short, sparse exponents like the
    /// RSA public exponent 65537 (binary: 18 muls; windowed: ≈ 35).
    const WINDOW_MIN_BITS: usize = 64;

    /// Computes `base^exp mod m`.
    ///
    /// Long exponents (private-key operations: CRT decrypt, sign) run
    /// fixed-window left-to-right exponentiation with
    /// `2^WINDOW_BITS`-ary precomputation; short ones fall back to
    /// [`Montgomery::pow_binary`]. For a uniformly random `e`-bit
    /// exponent, binary costs `e` squarings plus `e/2` multiplies while
    /// the 4-bit window costs `e` squarings plus `e/4 · 15/16` table
    /// multiplies plus 14 precompute multiplies — ≈ 17% fewer `mont_mul`
    /// calls at RSA sizes.
    ///
    /// Accounts `n² × mont_mul-calls` deterministic limb-operation units
    /// in [`crate::costs`] (one unit per CIOS inner-loop step), so the
    /// cost model tracks the actual multiplication count of this exact
    /// exponent and window schedule.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.bits() < Self::WINDOW_MIN_BITS {
            return self.pow_binary(base, exp);
        }
        let base = base.rem(&BigUint::from_limbs(self.m.clone()));
        let mb = self.to_mont(&base);
        let mont_one = self.to_mont(&BigUint::one());
        let mut muls: u64 = 2; // the two to_mont conversions above

        // Precompute table[d] = base^d for d in 1..16 (table[0] unused;
        // zero windows are squarings only).
        const TABLE_SIZE: usize = 1 << WINDOW_BITS;
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(TABLE_SIZE);
        table.push(mont_one.clone());
        table.push(mb);
        for d in 2..TABLE_SIZE {
            table.push(self.mont_mul(&table[d - 1], &table[1]));
            muls += 1;
        }
        debug_assert_eq!(muls, 2 + WINDOW_TABLE_MULS);

        // Left-to-right over 4-bit windows, most significant first. The
        // top window may be short; processing it like any other keeps the
        // loop uniform (leading squarings of 1 are still mont_muls and
        // are accounted as such — the cost model charges what runs).
        let bits = exp.bits();
        let windows = bits.div_ceil(WINDOW_BITS);
        let mut acc = mont_one;
        for w in (0..windows).rev() {
            for _ in 0..WINDOW_BITS {
                acc = self.mont_mul(&acc, &acc);
                muls += 1;
            }
            let mut digit = 0usize;
            for b in 0..WINDOW_BITS {
                let bit_idx = w * WINDOW_BITS + (WINDOW_BITS - 1 - b);
                digit <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                muls += 1;
            }
        }
        muls += 1; // from_mont below
        let n = self.len() as u64;
        crate::costs::add_rsa_limb_ops(muls * n * n);
        self.from_mont(&acc)
    }

    /// Plain left-to-right binary square-and-multiply — the reference
    /// implementation the windowed path is validated (and benchmarked)
    /// against, and the fast path for short exponents. Same deterministic
    /// limb-op accounting as [`Montgomery::pow`].
    pub fn pow_binary(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&BigUint::from_limbs(self.m.clone()));
        }
        let base = base.rem(&BigUint::from_limbs(self.m.clone()));
        let mb = self.to_mont(&base);
        let mut acc = self.to_mont(&BigUint::one());
        let mut muls: u64 = 2; // the two to_mont conversions above
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            muls += 1;
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &mb);
                muls += 1;
            }
        }
        muls += 1; // from_mont below
        let n = self.len() as u64;
        crate::costs::add_rsa_limb_ops(muls * n * n);
        self.from_mont(&acc)
    }
}

/// Capacity of the thread-local [`Montgomery`] context cache. RSA
/// traffic concentrates on very few moduli at a time — a node's own
/// `n`/`p`/`q` on the CRT decrypt path, a handful of peer keys on the
/// encrypt path, and one candidate at a time during keygen — so a tiny
/// move-to-front list covers the working set.
const MONT_CACHE_CAP: usize = 8;

/// Thread-local LRU of Montgomery contexts keyed by modulus.
struct MontCache {
    enabled: bool,
    entries: Vec<Rc<Montgomery>>,
}

thread_local! {
    static MONT_CACHE: RefCell<MontCache> =
        const { RefCell::new(MontCache { enabled: true, entries: Vec::new() }) };
}

/// Turns the thread-local [`Montgomery`] context cache on or off (it is
/// on by default). The A/B knob for benchmarks: with the cache off every
/// [`BigUint::modpow`] call rebuilds its context — one full division for
/// `R² mod m` — exactly as before the cache existed.
///
/// Purely a wall-clock knob: context construction performs no
/// deterministic cost accounting (only `mont_mul` calls are charged), so
/// traces and the crypto cost model are identical either way. Disabling
/// also drops the cached contexts.
pub fn set_mont_cache(enabled: bool) {
    MONT_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.enabled = enabled;
        if !enabled {
            c.entries.clear();
        }
    });
}

/// Returns a (possibly cached) Montgomery context for `modulus`,
/// moving a hit to the front of the LRU list.
fn cached_montgomery(modulus: &BigUint) -> Rc<Montgomery> {
    MONT_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if !c.enabled {
            return Rc::new(Montgomery::new(modulus));
        }
        if let Some(i) = c.entries.iter().position(|m| m.m == modulus.limbs) {
            let hit = c.entries.remove(i);
            c.entries.insert(0, Rc::clone(&hit));
            return hit;
        }
        let fresh = Rc::new(Montgomery::new(modulus));
        c.entries.insert(0, Rc::clone(&fresh));
        c.entries.truncate(MONT_CACHE_CAP);
        fresh
    })
}

/// Window width of the fixed-window exponentiation (4 bits = hexadecimal
/// digits). 4 is the sweet spot at 512–2048-bit exponents: width 5 would
/// double the table cost (30 muls) for one fewer table multiply per 20
/// exponent bits.
const WINDOW_BITS: usize = 4;
/// Multiplications spent building the 2^[`WINDOW_BITS`]-entry power
/// table (entries 2..16; entry 0 is one, entry 1 is the base).
const WINDOW_TABLE_MULS: u64 = (1 << WINDOW_BITS) - 2;

fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

/// Inverse of an odd `m` modulo 2^64 by Newton iteration.
fn inv64(m: u64) -> u64 {
    debug_assert!(m & 1 == 1);
    let mut x = m; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
    }
    debug_assert_eq!(m.wrapping_mul(x), 1);
    x
}

impl BigUint {
    /// Computes `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication for odd moduli — with the context
    /// (the `R² mod m` division) served from a thread-local per-modulus
    /// cache (see [`set_mont_cache`]), since RSA hammers the same few
    /// moduli: CRT decrypt reuses `p` and `q` forever, and Miller–Rabin
    /// runs many bases against one candidate — and a generic
    /// square-and-multiply with explicit reduction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if !modulus.is_even() {
            return cached_montgomery(modulus).pow(self, exp);
        }
        // Rare in this codebase (RSA moduli and MR candidates are odd) but
        // kept for completeness.
        let mut acc = BigUint::one();
        let base = self.rem(modulus);
        for i in (0..exp.bits()).rev() {
            acc = acc.mul(&acc).rem(modulus);
            if exp.bit(i) {
                acc = acc.mul(&base).rem(modulus);
            }
        }
        acc
    }

    /// Computes the multiplicative inverse of `self` modulo `modulus`, if
    /// `gcd(self, modulus) == 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid, tracking only the Bezout coefficient of `self`.
        // Coefficients are signed; we carry (magnitude, negative?) pairs.
        let mut r0 = self.rem(modulus);
        let mut r1 = modulus.clone();
        if r0.is_zero() {
            return None;
        }
        let mut t0 = (BigUint::one(), false);
        let mut t1 = (BigUint::zero(), false);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // (t0, t1) = (t1, t0 - q * t1)
            let qt1 = (q.mul(&t1.0), t1.1);
            let new_t = signed_sub(&t0, &qt1);
            r0 = std::mem::replace(&mut r1, r);
            t0 = std::mem::replace(&mut t1, new_t);
        }
        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem(modulus);
        if neg && !mag.is_zero() {
            Some(modulus.sub(&mag))
        } else {
            Some(mag)
        }
    }

    /// Computes `gcd(self, other)` by the Euclidean algorithm.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = std::mem::replace(&mut b, r);
        }
        a
    }
}

/// `a - b` on (magnitude, negative?) signed pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false),  // a + |b|
        (true, false) => (a.0.add(&b.0), true),   // -(|a| + b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -|a| + |b|
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn modpow_small() {
        assert_eq!(big(2).modpow(&big(10), &big(1000)), big(24));
        assert_eq!(big(3).modpow(&big(0), &big(7)), big(1));
        assert_eq!(big(5).modpow(&big(117), &big(19)), big(1)); // 5^18 ≡ 1, 117 = 6*18+9 → 5^9 mod 19
    }

    #[test]
    fn modpow_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p.
        let p = big(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(big(a).modpow(&p.sub(&big(1)), &p), big(1));
        }
    }

    #[test]
    fn modpow_even_modulus() {
        assert_eq!(big(7).modpow(&big(3), &big(10)), big(3)); // 343 mod 10
        assert_eq!(big(7).modpow(&big(3), &big(1)), BigUint::zero());
    }

    #[test]
    fn modpow_multi_limb() {
        // Check Montgomery against the naive path on a multi-limb odd modulus.
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff61, 0x1234_5678_9abc_def1]);
        let base = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let exp = big(65537);
        let fast = base.modpow(&exp, &m);
        // Naive square-and-multiply with explicit reduction.
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mul(&acc).rem(&m);
            if exp.bit(i) {
                acc = acc.mul(&base).rem(&m);
            }
        }
        assert_eq!(fast, acc);
    }

    /// Deterministic pseudo-random limbs for exponentiation tests
    /// (splitmix64 — no RNG dependency inside the bignum module).
    fn mix_limbs(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn windowed_pow_matches_binary() {
        let mut m_limbs = mix_limbs(1, 4);
        m_limbs[0] |= 1; // odd modulus
        let m = BigUint::from_limbs(m_limbs);
        let ctx = Montgomery::new(&m);
        for seed in 2..8u64 {
            let base = BigUint::from_limbs(mix_limbs(seed, 3));
            // Exponents straddling the window threshold, including
            // multi-limb ones with long zero runs.
            for exp in [
                BigUint::from(65537u64),
                BigUint::from_limbs(mix_limbs(seed + 100, 2)),
                BigUint::from_limbs(vec![1, 0, 0, 0x8000_0000_0000_0000]),
                BigUint::from_limbs(mix_limbs(seed + 200, 8)),
            ] {
                assert_eq!(
                    ctx.pow(&base, &exp),
                    ctx.pow_binary(&base, &exp),
                    "windowed and binary exponentiation diverged (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn windowed_pow_costs_fewer_limb_ops_on_long_exponents() {
        let mut m_limbs = mix_limbs(9, 8);
        m_limbs[0] |= 1;
        let m = BigUint::from_limbs(m_limbs);
        let ctx = Montgomery::new(&m);
        let base = BigUint::from_limbs(mix_limbs(10, 7));
        let exp = BigUint::from_limbs(mix_limbs(11, 8)); // ~512-bit exponent
        let before = crate::costs::snapshot();
        let _ = ctx.pow_binary(&base, &exp);
        let binary = crate::costs::snapshot().since(before).rsa_limb_ops;
        let before = crate::costs::snapshot();
        let _ = ctx.pow(&base, &exp);
        let windowed = crate::costs::snapshot().since(before).rsa_limb_ops;
        // Expected ≈ 649/771 ≈ 0.84 of the binary cost for a random
        // 512-bit exponent; assert a conservative corridor.
        assert!(windowed < binary, "windowed ({windowed}) not cheaper than binary ({binary})");
        assert!(
            windowed * 100 <= binary * 92 && windowed * 100 >= binary * 70,
            "windowed/binary ratio out of corridor: {windowed}/{binary}"
        );
        // Short exponents take the binary path, so the table is never
        // wasted on e = 65537.
        let e = BigUint::from(65537u64);
        let before = crate::costs::snapshot();
        let _ = ctx.pow(&base, &e);
        let short_windowed = crate::costs::snapshot().since(before).rsa_limb_ops;
        let before = crate::costs::snapshot();
        let _ = ctx.pow_binary(&base, &e);
        let short_binary = crate::costs::snapshot().since(before).rsa_limb_ops;
        assert_eq!(short_windowed, short_binary, "short exponents must use the binary path");
    }

    #[test]
    fn inv64_works() {
        for m in [1u64, 3, 5, 0xffff_ffff_ffff_ffff, 0x1234_5678_9abc_def1] {
            assert_eq!(m.wrapping_mul(inv64(m)), 1);
        }
    }

    #[test]
    fn modinv_basic() {
        let inv = big(3).modinv(&big(7)).unwrap();
        assert_eq!(inv, big(5)); // 3*5 = 15 ≡ 1 mod 7
        assert_eq!(big(2).modinv(&big(4)), None); // gcd 2
        assert_eq!(big(0).modinv(&big(7)), None);
    }

    #[test]
    fn modinv_round_trip() {
        let m = big(1_000_000_007);
        for a in [2u64, 3, 999, 123_456_789] {
            let inv = big(a).modinv(&m).unwrap();
            assert_eq!(big(a).mul(&inv).rem(&m), big(1));
        }
    }

    #[test]
    fn modinv_multi_limb() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff61, 0x1234_5678_9abc_def1]);
        let a = BigUint::from_limbs(vec![0x1111_2222, 0x42]);
        let inv = a.modinv(&m).unwrap();
        assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
    }

    #[test]
    fn montgomery_round_trip() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff61, 0x1234_5678_9abc_def1]);
        let ctx = Montgomery::new(&m);
        let v = BigUint::from_limbs(vec![0xabcdef, 0x77]);
        let domain = ctx.to_mont(&v);
        assert_eq!(ctx.from_mont(&domain), v);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn montgomery_rejects_even() {
        Montgomery::new(&big(10));
    }

    #[test]
    fn mont_cache_is_invisible_to_results_and_costs() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff61, 0x1234_5678_9abc_def1]);
        let base = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let exp = BigUint::from_limbs(mix_limbs(42, 2));
        set_mont_cache(true);
        let before = crate::costs::snapshot();
        let warm1 = base.modpow(&exp, &m);
        let warm2 = base.modpow(&exp, &m); // second call hits the cache
        let cached_cost = crate::costs::snapshot().since(before).rsa_limb_ops;
        set_mont_cache(false);
        let before = crate::costs::snapshot();
        let cold1 = base.modpow(&exp, &m);
        let cold2 = base.modpow(&exp, &m);
        let uncached_cost = crate::costs::snapshot().since(before).rsa_limb_ops;
        set_mont_cache(true);
        assert_eq!(warm1, cold1);
        assert_eq!(warm2, cold2);
        assert_eq!(
            cached_cost, uncached_cost,
            "context caching must not change the deterministic cost model"
        );
    }

    #[test]
    fn mont_cache_evicts_beyond_capacity() {
        set_mont_cache(true);
        // Churn through more odd moduli than the cache holds; every result
        // must still be correct (eviction is pure wall-clock policy).
        for i in 0..(MONT_CACHE_CAP as u64 * 3) {
            let m = big(1_000_003 + 2 * i); // odd
            let got = big(7).modpow(&big(65537), &m);
            let mut acc = BigUint::one();
            let e = big(65537);
            for b in (0..e.bits()).rev() {
                acc = acc.mul(&acc).rem(&m);
                if e.bit(b) {
                    acc = acc.mul(&big(7)).rem(&m);
                }
            }
            assert_eq!(got, acc, "modulus churn broke the cached path at {i}");
        }
        MONT_CACHE.with(|c| {
            assert!(c.borrow().entries.len() <= MONT_CACHE_CAP, "LRU grew past capacity");
        });
    }
}
