//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] stores magnitudes as little-endian `u64` limbs with no
//! trailing zero limbs (zero is the empty limb vector). The module provides
//! everything RSA needs: schoolbook multiplication, Knuth Algorithm D
//! division, Montgomery-accelerated modular exponentiation, modular
//! inverses, Miller–Rabin primality testing and random prime generation.
//!
//! ```
//! use whisper_crypto::bignum::BigUint;
//!
//! let a = BigUint::from(10u64);
//! let b = BigUint::from(3u64);
//! let (q, r) = a.div_rem(&b);
//! assert_eq!(q, BigUint::from(3u64));
//! assert_eq!(r, BigUint::from(1u64));
//! ```

mod arith;
mod karatsuba;
mod modular;
mod prime;

pub use modular::{set_mont_cache, Montgomery};
pub use prime::{gen_prime, is_probable_prime};

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Limbs are little-endian `u64`s and the representation is always
/// normalized: the most significant limb, if any, is non-zero.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian indexing; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Constructs a value from big-endian bytes. Leading zero bytes are fine.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if cur != 0 {
            limbs.push(cur);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes with no leading zeros (zero -> empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the top limb only.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self})")
    }
}

impl fmt::Display for BigUint {
    /// Hexadecimal rendering (decimal conversion is not needed by the
    /// library and would require repeated division).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let v = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        let v = BigUint::from_bytes_be(&[0, 0, 0x12, 0x34]);
        assert_eq!(v.to_u64(), Some(0x1234));
        assert_eq!(v.to_bytes_be(), vec![0x12, 0x34]);
    }

    #[test]
    fn zero_round_trip() {
        assert!(BigUint::from_bytes_be(&[]).is_zero());
        assert!(BigUint::from_bytes_be(&[0, 0]).is_zero());
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0xABCDu64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0xAB, 0xCD]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        BigUint::from(0xABCDu64).to_bytes_be_padded(1);
    }

    #[test]
    fn bit_length() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(0x8000_0000_0000_0000u64).bits(), 64);
        let big = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(big.bits(), 65);
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(640));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn evenness() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert!(BigUint::from(2u64).is_even());
    }

    #[test]
    fn display_hex() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from(0xdeadbeefu64).to_string(), "deadbeef");
        let big = BigUint::from_limbs(vec![0x1, 0xab]);
        assert_eq!(big.to_string(), "ab0000000000000001");
    }
}
