//! Circuit amortization for onion routes: per-hop AES link keys that
//! remove RSA from the steady-state forwarding path.
//!
//! The paper's cost breakdown (Fig. 7, Table II) shows per-message RSA
//! dominating WCL crypto cost: every packet pays 3 hybrid seals at the
//! source and one RSA decrypt per hop, even when the same `S → A → B → D`
//! route is reused across a conversation. This module amortizes that the
//! way Tor and VPO-style overlays do:
//!
//! * The **first** packet on a route travels as a normal RSA onion whose
//!   layers additionally carry, for each hop, a [`HopSetup`]: a fresh
//!   AES-128 link key plus two local circuit ids (inbound and, for
//!   relays, outbound).
//! * Each hop stores `cid_in → (key, next hop, cid_out)` in a bounded,
//!   TTL'd [`CircuitTable`].
//! * **Subsequent** packets are layered AES-CTR only: the source applies
//!   one CTR layer per hop ([`seal_layers`]); each relay strips exactly
//!   one ([`peel_layer`]) and forwards under its outbound circuit id.
//!
//! # Unlinkability
//!
//! Relationship anonymity must not regress relative to the RSA-only
//! path, where a mix's two links already share no ciphertext bytes.
//! Three per-hop re-randomizations keep that true here:
//!
//! * **Circuit ids are per-hop local**: each hop sees its own `cid_in`
//!   and forwards under an independently drawn `cid_out` (as in Tor), so
//!   ids on adjacent links never match.
//! * **Nonces are chained**, not forwarded: hop `i + 1` receives
//!   `SHA-256(nonce_i)` truncated to 64 bits ([`next_nonce`]), so the
//!   nonce field also differs on every link while each hop can still
//!   derive its own keystream position.
//! * **The body changes at every hop** because each relay strips one CTR
//!   layer — unlike the RSA path, where the body is forwarded verbatim
//!   and only the header changes.
//!
//! Every field of a circuit packet — id, nonce, ciphertext — is therefore
//! bitwise unlinkable across hops; the regression test in
//! `tests/threat_model.rs` asserts exactly this.
//!
//! This module is deliberately free of networking types: time is a plain
//! microsecond count and next-hop addresses are opaque bytes, so the WCL
//! layer above owns all policy (TTLs, capacities, when to rebuild).

use crate::aes::{Aes128, AesKey, CtrNonce};
use crate::sha256::Sha256;
use std::collections::{BTreeMap, VecDeque};
use whisper_rand::Rng;

/// A local circuit identifier, meaningful only on one link. 64 bits keeps
/// accidental collision probability negligible at any realistic table
/// size while staying cheap on the wire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CircuitId(pub [u8; 8]);

impl CircuitId {
    /// Draws a uniformly random id.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        let mut id = [0u8; 8];
        rng.fill(&mut id);
        CircuitId(id)
    }
}

impl std::fmt::Debug for CircuitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cid:{:016x}", u64::from_be_bytes(self.0))
    }
}

/// Wire size of a relay-hop [`HopSetup`] (`cid_in ‖ cid_out ‖ key`).
pub const RELAY_SETUP_LEN: usize = 8 + 8 + 16;
/// Wire size of a destination [`HopSetup`] (`cid_in ‖ key`).
pub const DEST_SETUP_LEN: usize = 8 + 16;

/// The key material one hop extracts from its onion layer during circuit
/// establishment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopSetup {
    /// The circuit id under which this hop will receive packets.
    pub cid_in: CircuitId,
    /// The circuit id under which this hop forwards (`None` at the
    /// destination).
    pub cid_out: Option<CircuitId>,
    /// The per-hop AES-128 link key.
    pub key: AesKey,
}

impl HopSetup {
    /// Encodes for embedding in an onion layer extension. Relay and
    /// destination forms are distinguished by length alone, so a hop
    /// learns nothing extra from the encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RELAY_SETUP_LEN);
        out.extend_from_slice(&self.cid_in.0);
        if let Some(cid_out) = self.cid_out {
            out.extend_from_slice(&cid_out.0);
        }
        out.extend_from_slice(&self.key.0);
        out
    }

    /// Decodes an onion-layer extension; `None` for foreign lengths.
    pub fn decode(bytes: &[u8]) -> Option<HopSetup> {
        let (cid_in, cid_out, key_bytes) = match bytes.len() {
            RELAY_SETUP_LEN => (&bytes[..8], Some(&bytes[8..16]), &bytes[16..]),
            DEST_SETUP_LEN => (&bytes[..8], None, &bytes[8..]),
            _ => return None,
        };
        let mut cid = [0u8; 8];
        cid.copy_from_slice(cid_in);
        let cid_out = cid_out.map(|b| {
            let mut c = [0u8; 8];
            c.copy_from_slice(b);
            CircuitId(c)
        });
        let mut key = [0u8; 16];
        key.copy_from_slice(key_bytes);
        Some(HopSetup { cid_in: CircuitId(cid), cid_out, key: AesKey(key) })
    }
}

/// The source's view of an established circuit: the id the first hop
/// listens on and the link keys in forwarding order.
#[derive(Clone, Debug)]
pub struct SourceCircuit {
    /// Circuit id of the first hop's inbound link.
    pub first_cid: CircuitId,
    /// Per-hop link keys, `keys[0]` = first hop … `keys[n-1]` =
    /// destination.
    pub keys: Vec<AesKey>,
}

/// Draws fresh circuit state for an `n_hops` route: the source keeps the
/// [`SourceCircuit`], and `setups[i]` goes into hop `i`'s onion layer.
///
/// Every id and key is independently random — no hop can correlate its
/// ids or key with another hop's.
///
/// # Panics
///
/// Panics if `n_hops` is zero.
pub fn establish<R: Rng>(n_hops: usize, rng: &mut R) -> (SourceCircuit, Vec<HopSetup>) {
    assert!(n_hops >= 1, "a circuit needs at least one hop");
    let cids: Vec<CircuitId> = (0..n_hops).map(|_| CircuitId::random(rng)).collect();
    let keys: Vec<AesKey> = (0..n_hops).map(|_| AesKey::random(rng)).collect();
    let setups = (0..n_hops)
        .map(|i| HopSetup {
            cid_in: cids[i],
            cid_out: cids.get(i + 1).copied(),
            key: keys[i],
        })
        .collect();
    (SourceCircuit { first_cid: cids[0], keys }, setups)
}

/// Derives the nonce the next hop will use: `SHA-256(nonce)` truncated to
/// 64 bits. Chaining (instead of forwarding the same nonce) makes the
/// nonce field unlinkable across links while keeping every hop's
/// keystream position deterministic.
pub fn next_nonce(nonce: &CtrNonce) -> CtrNonce {
    let digest = Sha256::digest(&nonce.0);
    let mut n = [0u8; 8];
    n.copy_from_slice(&digest[..8]);
    CtrNonce(n)
}

/// Applies the source-side layering: one CTR pass per hop, innermost
/// (destination) first, so that hop `i` — peeling with `keys[i]` and the
/// `i`-th nonce in the [`next_nonce`] chain from `nonce0` — strips
/// exactly the outermost remaining layer.
pub fn seal_layers(keys: &[AesKey], nonce0: &CtrNonce, payload: &[u8]) -> Vec<u8> {
    let mut body = payload.to_vec();
    seal_layers_in_place(keys, nonce0, &mut body);
    body
}

/// [`seal_layers`] on a caller-owned buffer: CTR layers are
/// length-preserving, so the whole source-side layering runs in one
/// allocation-free pass per hop instead of one fresh buffer per layer.
pub fn seal_layers_in_place(keys: &[AesKey], nonce0: &CtrNonce, body: &mut [u8]) {
    let mut nonces = [CtrNonce([0; 8]); 8];
    let mut overflow; // paths longer than 8 hops fall back to a Vec
    let nonce_chain: &[CtrNonce] = if keys.len() <= nonces.len() {
        let mut n = *nonce0;
        for slot in nonces.iter_mut().take(keys.len()) {
            *slot = n;
            n = next_nonce(&n);
        }
        &nonces[..keys.len()]
    } else {
        overflow = Vec::with_capacity(keys.len());
        let mut n = *nonce0;
        for _ in keys {
            overflow.push(n);
            n = next_nonce(&n);
        }
        &overflow
    };
    for (key, nonce) in keys.iter().zip(nonce_chain.iter()).rev() {
        Aes128::new(key).ctr_apply_in_place(nonce, body);
    }
}

/// Strips one circuit layer — the entire steady-state crypto cost of a
/// hop.
pub fn peel_layer(key: &AesKey, nonce: &CtrNonce, body: &[u8]) -> Vec<u8> {
    Aes128::new(key).ctr_apply(nonce, body)
}

/// [`peel_layer`] on a caller-owned buffer: the relay forwarding path
/// strips its layer without allocating an output body.
pub fn peel_layer_in_place(key: &AesKey, nonce: &CtrNonce, body: &mut [u8]) {
    Aes128::new(key).ctr_apply_in_place(nonce, body);
}

/// Peels one hop's layer off a batch of packets, expanding the key
/// schedule **once** for the whole batch instead of once per packet —
/// the amortization a relay gets when several packets of the same
/// circuit are queued at one hop. Each packet carries its own nonce
/// (they are hash-chained per packet, not per batch).
pub fn peel_batch_in_place(key: &AesKey, packets: &mut [(CtrNonce, Vec<u8>)]) {
    let cipher = Aes128::new(key);
    for (nonce, body) in packets.iter_mut() {
        cipher.ctr_apply_in_place(nonce, body);
    }
}

/// What a hop remembers about one circuit.
///
/// The expanded AES key schedule is computed once at installation and
/// cached, so every subsequent packet on the circuit peels with zero
/// key-schedule work — the per-entry form of batched peeling (the
/// deterministic cost model is unaffected: only CTR block work is
/// accounted, never schedule expansion).
#[derive(Clone)]
pub struct CircuitEntry {
    key: AesKey,
    next_hop: Vec<u8>,
    cid_out: Option<CircuitId>,
    cipher: Aes128,
}

impl std::fmt::Debug for CircuitEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material (nor the cached schedule).
        f.debug_struct("CircuitEntry")
            .field("next_hop", &self.next_hop)
            .field("cid_out", &self.cid_out)
            .finish()
    }
}

impl CircuitEntry {
    /// Builds an entry, expanding and caching the link key's schedule.
    pub fn new(key: AesKey, next_hop: Vec<u8>, cid_out: Option<CircuitId>) -> CircuitEntry {
        let cipher = Aes128::new(&key);
        CircuitEntry { key, next_hop, cid_out, cipher }
    }

    /// The link key packets arriving on this circuit are sealed under.
    pub fn key(&self) -> &AesKey {
        &self.key
    }

    /// Opaque next-hop address (empty at the destination).
    pub fn next_hop(&self) -> &[u8] {
        &self.next_hop
    }

    /// Outbound circuit id (`None` at the destination).
    pub fn cid_out(&self) -> Option<CircuitId> {
        self.cid_out
    }

    /// Strips this circuit's layer using the cached key schedule.
    pub fn peel_in_place(&self, nonce: &CtrNonce, body: &mut [u8]) {
        self.cipher.ctr_apply_in_place(nonce, body);
    }
}

/// A bounded, TTL'd map of `cid_in → CircuitEntry`, with deterministic
/// insertion-order eviction (a `BTreeMap` plus an explicit FIFO queue, so
/// behavior never depends on hash iteration order — see DESIGN.md
/// § "Determinism & randomness").
#[derive(Debug)]
pub struct CircuitTable {
    cap: usize,
    ttl_us: u64,
    /// `cid → (entry, expires_at_us)`.
    entries: BTreeMap<CircuitId, (CircuitEntry, u64)>,
    /// Insertion order for capacity eviction; may contain ids already
    /// removed (lazily skipped).
    order: VecDeque<CircuitId>,
}

impl CircuitTable {
    /// Creates a table holding at most `cap` circuits, each expiring
    /// `ttl_us` microseconds after insertion.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize, ttl_us: u64) -> Self {
        assert!(cap >= 1, "circuit table capacity must be positive");
        CircuitTable { cap, ttl_us, entries: BTreeMap::new(), order: VecDeque::new() }
    }

    /// Number of stored circuits (including not-yet-collected expired
    /// ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or refreshes) a circuit, evicting the oldest insertion
    /// when full.
    pub fn insert(&mut self, now_us: u64, cid: CircuitId, entry: CircuitEntry) {
        if self.entries.remove(&cid).is_some() {
            self.order.retain(|c| *c != cid);
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break, // queue exhausted; cannot happen while entries is non-empty
            }
        }
        self.entries.insert(cid, (entry, now_us.saturating_add(self.ttl_us)));
        self.order.push_back(cid);
    }

    /// Looks up a live circuit; expired entries are dropped on access.
    pub fn lookup(&mut self, now_us: u64, cid: CircuitId) -> Option<&CircuitEntry> {
        if let Some((_, expires)) = self.entries.get(&cid) {
            if *expires <= now_us {
                self.entries.remove(&cid);
                self.order.retain(|c| *c != cid);
                return None;
            }
        }
        self.entries.get(&cid).map(|(e, _)| e)
    }

    /// Drops every stored circuit (simulates a relay losing state, e.g. a
    /// restart after churn).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn entry(b: u8) -> CircuitEntry {
        CircuitEntry::new(AesKey([b; 16]), vec![b], None)
    }

    fn cid(b: u8) -> CircuitId {
        CircuitId([b; 8])
    }

    #[test]
    fn establish_then_walk_all_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let (source, setups) = establish(3, &mut rng);
        assert_eq!(source.keys.len(), 3);
        assert_eq!(setups[0].cid_in, source.first_cid);
        // The chain of hop setups is consistent: each relay's cid_out is
        // the next hop's cid_in; the destination has none.
        assert_eq!(setups[0].cid_out, Some(setups[1].cid_in));
        assert_eq!(setups[1].cid_out, Some(setups[2].cid_in));
        assert_eq!(setups[2].cid_out, None);

        // Seal at the source, peel one layer per hop.
        let payload = b"steady-state private view exchange";
        let nonce0 = CtrNonce([9; 8]);
        let mut body = seal_layers(&source.keys, &nonce0, payload);
        let mut nonce = nonce0;
        for setup in &setups {
            body = peel_layer(&setup.key, &nonce, &body);
            nonce = next_nonce(&nonce);
        }
        assert_eq!(body, payload);
    }

    #[test]
    fn single_hop_circuit() {
        let mut rng = StdRng::seed_from_u64(2);
        let (source, setups) = establish(1, &mut rng);
        assert_eq!(setups.len(), 1);
        assert_eq!(setups[0].cid_out, None);
        let nonce0 = CtrNonce([1; 8]);
        let body = seal_layers(&source.keys, &nonce0, b"direct");
        assert_eq!(peel_layer(&setups[0].key, &nonce0, &body), b"direct");
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_circuit_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = establish(0, &mut rng);
    }

    #[test]
    fn intermediate_layers_hide_payload() {
        let mut rng = StdRng::seed_from_u64(4);
        let (source, setups) = establish(3, &mut rng);
        let payload = b"the payload no single relay may see, at any hop";
        let nonce0 = CtrNonce([7; 8]);
        let leaks = |bytes: &[u8]| {
            bytes.windows(8).any(|w| payload.windows(8).any(|p| p == w))
        };
        let mut body = seal_layers(&source.keys, &nonce0, payload);
        assert!(!leaks(&body));
        let mut nonce = nonce0;
        // After the first and second peels the payload is still covered
        // by at least one remaining layer.
        for setup in &setups[..2] {
            body = peel_layer(&setup.key, &nonce, &body);
            nonce = next_nonce(&nonce);
            assert!(!leaks(&body), "payload visible before the last hop");
        }
    }

    #[test]
    fn in_place_seal_and_peel_match_allocating_forms() {
        let mut rng = StdRng::seed_from_u64(11);
        // Cover both the stack-array nonce chain (≤ 8 hops) and the Vec
        // overflow path (> 8 hops).
        for hops in [1usize, 3, 8, 9, 12] {
            let (source, setups) = establish(hops, &mut rng);
            let payload: Vec<u8> = (0..100u8).collect();
            let nonce0 = CtrNonce([3; 8]);
            let sealed = seal_layers(&source.keys, &nonce0, &payload);
            let mut sealed_in_place = payload.clone();
            seal_layers_in_place(&source.keys, &nonce0, &mut sealed_in_place);
            assert_eq!(sealed, sealed_in_place, "{hops} hops: seal forms diverge");

            let mut nonce = nonce0;
            let mut body = sealed_in_place;
            for setup in &setups {
                let reference = peel_layer(&setup.key, &nonce, &body);
                peel_layer_in_place(&setup.key, &nonce, &mut body);
                assert_eq!(reference, body, "{hops} hops: peel forms diverge");
                nonce = next_nonce(&nonce);
            }
            assert_eq!(body, payload);
        }
    }

    #[test]
    fn batch_and_cached_entry_peels_match_single() {
        let key = AesKey([5; 16]);
        // Batch form: one schedule expansion, N packets.
        let mut packets: Vec<(CtrNonce, Vec<u8>)> =
            (0..4u8).map(|i| (CtrNonce([i; 8]), vec![i; 64])).collect();
        let mut reference = packets.clone();
        for (nonce, body) in reference.iter_mut() {
            peel_layer_in_place(&key, nonce, body);
        }
        peel_batch_in_place(&key, &mut packets);
        assert_eq!(packets, reference);
        // Cached-entry form: the schedule expanded at install time.
        let entry = CircuitEntry::new(key, vec![], None);
        let nonce = CtrNonce([7; 8]);
        let mut via_entry = vec![9u8; 64];
        let mut via_free = via_entry.clone();
        entry.peel_in_place(&nonce, &mut via_entry);
        peel_layer_in_place(&key, &nonce, &mut via_free);
        assert_eq!(via_entry, via_free);
    }

    #[test]
    fn nonce_chain_changes_every_hop() {
        let n0 = CtrNonce([0; 8]);
        let n1 = next_nonce(&n0);
        let n2 = next_nonce(&n1);
        assert_ne!(n0, n1);
        assert_ne!(n1, n2);
        assert_ne!(n0, n2);
        // Deterministic: the chain is a pure function of the start.
        assert_eq!(next_nonce(&n0), n1);
    }

    #[test]
    fn hop_setup_codec_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let relay = HopSetup {
            cid_in: CircuitId::random(&mut rng),
            cid_out: Some(CircuitId::random(&mut rng)),
            key: AesKey::random(&mut rng),
        };
        let dest = HopSetup { cid_out: None, ..relay.clone() };
        for setup in [&relay, &dest] {
            let bytes = setup.encode();
            assert_eq!(HopSetup::decode(&bytes).as_ref(), Some(setup));
        }
        assert_eq!(relay.encode().len(), RELAY_SETUP_LEN);
        assert_eq!(dest.encode().len(), DEST_SETUP_LEN);
        assert_eq!(HopSetup::decode(&[0u8; 7]), None);
        assert_eq!(HopSetup::decode(&[]), None);
    }

    #[test]
    fn table_lookup_hit_and_ttl_expiry() {
        let mut t = CircuitTable::new(8, 1_000);
        t.insert(0, cid(1), entry(1));
        assert_eq!(t.lookup(999, cid(1)).map(|e| e.next_hop().to_vec()), Some(vec![1]));
        // At exactly the expiry instant the entry is gone, and stays gone.
        assert!(t.lookup(1_000, cid(1)).is_none());
        assert!(t.lookup(0, cid(1)).is_none(), "expired entries are dropped, not revived");
        assert!(t.is_empty());
    }

    #[test]
    fn table_evicts_oldest_insertion_first() {
        let mut t = CircuitTable::new(2, u64::MAX);
        t.insert(0, cid(1), entry(1));
        t.insert(1, cid(2), entry(2));
        t.insert(2, cid(3), entry(3)); // evicts cid(1)
        assert!(t.lookup(3, cid(1)).is_none());
        assert!(t.lookup(3, cid(2)).is_some());
        assert!(t.lookup(3, cid(3)).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_reinsert_refreshes_position_and_expiry() {
        let mut t = CircuitTable::new(2, 100);
        t.insert(0, cid(1), entry(1));
        t.insert(1, cid(2), entry(2));
        t.insert(50, cid(1), entry(9)); // refresh: now newest, expires at 150
        t.insert(60, cid(3), entry(3)); // evicts cid(2), the oldest
        assert!(t.lookup(70, cid(2)).is_none());
        assert_eq!(t.lookup(140, cid(1)).map(|e| e.key().0[0]), Some(9));
        assert!(t.lookup(150, cid(1)).is_none(), "refreshed expiry honored");
    }

    #[test]
    fn table_eviction_is_deterministic() {
        // Same insertion sequence ⇒ same survivors, regardless of id
        // values (BTreeMap + FIFO, never hash order).
        let run = || {
            let mut t = CircuitTable::new(4, u64::MAX);
            for b in [9u8, 3, 7, 1, 8, 2] {
                t.insert(b as u64, cid(b), entry(b));
            }
            (0..=9u8).filter(|b| t.lookup(100, cid(*b)).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 2, 7, 8], "last four insertions survive");
    }

    #[test]
    fn clear_simulates_state_loss() {
        let mut t = CircuitTable::new(8, u64::MAX);
        t.insert(0, cid(1), entry(1));
        t.clear();
        assert!(t.lookup(1, cid(1)).is_none());
        assert!(t.is_empty());
    }
}
