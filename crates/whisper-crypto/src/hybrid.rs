//! Hybrid encryption: RSA-sealed AES session keys.
//!
//! An onion layer (or any message larger than an RSA block) is protected by
//! drawing a fresh AES-128 key `k` and CTR nonce, encrypting the payload
//! with AES-CTR, and sealing `k ‖ nonce` under the recipient's RSA public
//! key. This mirrors how WHISPER encodes content "using symmetric
//! encryption with a random key k" whose transport is protected by the
//! mixes' public keys (paper §III-A).

use crate::aes::{Aes128, AesKey, CtrNonce};
use crate::rsa::{KeyPair, PublicKey};
use crate::CryptoError;
use whisper_rand::Rng;

/// A hybrid-encrypted blob: RSA-encrypted header carrying the AES session
/// key, followed by the AES-CTR body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    /// RSA ciphertext of `key ‖ nonce` (length = modulus size).
    pub sealed_key: Vec<u8>,
    /// AES-CTR encrypted payload.
    pub body: Vec<u8>,
}

impl SealedBlob {
    /// Total wire size in bytes.
    pub fn wire_len(&self) -> usize {
        2 + self.sealed_key.len() + 4 + self.body.len()
    }

    /// Serializes to `len16(sealed_key) ‖ sealed_key ‖ len32(body) ‖ body`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&(self.sealed_key.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.sealed_key);
        out.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a blob serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSealedBlob`] on truncated or
    /// oversized input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = CryptoError::MalformedSealedBlob;
        if bytes.len() < 2 {
            return Err(err);
        }
        let klen = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        let sealed_key = bytes.get(2..2 + klen).ok_or(err.clone())?.to_vec();
        let rest = &bytes[2 + klen..];
        if rest.len() < 4 {
            return Err(err);
        }
        let blen = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let body = rest.get(4..4 + blen).ok_or(err.clone())?.to_vec();
        if rest.len() != 4 + blen {
            return Err(err);
        }
        Ok(SealedBlob { sealed_key, body })
    }
}

/// Size of the sealed header payload: 16-byte AES key + 8-byte CTR nonce.
const SESSION_SECRET_LEN: usize = 24;

/// Seals `plaintext` for `recipient`.
///
/// # Errors
///
/// Returns an error if the recipient's modulus is too small to carry a
/// session secret (all supported [`RsaKeySize`](crate::rsa::RsaKeySize)s
/// are large enough).
pub fn seal<R: Rng>(
    recipient: &PublicKey,
    plaintext: &[u8],
    rng: &mut R,
) -> Result<SealedBlob, CryptoError> {
    let key = AesKey::random(rng);
    let nonce = CtrNonce::random(rng);
    let mut secret = [0u8; SESSION_SECRET_LEN];
    secret[..16].copy_from_slice(&key.0);
    secret[16..].copy_from_slice(&nonce.0);
    let sealed_key = recipient.encrypt(&secret, rng)?;
    let body = Aes128::new(&key).ctr_apply(&nonce, plaintext);
    Ok(SealedBlob { sealed_key, body })
}

/// Opens a blob sealed for `keypair`'s public key.
///
/// # Errors
///
/// Fails with [`CryptoError::InvalidPadding`] or
/// [`CryptoError::MalformedSealedBlob`] when the blob was sealed for a
/// different key or has been corrupted.
pub fn open(keypair: &KeyPair, blob: &SealedBlob) -> Result<Vec<u8>, CryptoError> {
    let secret = keypair.decrypt(&blob.sealed_key)?;
    if secret.len() != SESSION_SECRET_LEN {
        return Err(CryptoError::MalformedSealedBlob);
    }
    let mut key = [0u8; 16];
    key.copy_from_slice(&secret[..16]);
    let mut nonce = [0u8; 8];
    nonce.copy_from_slice(&secret[16..]);
    Ok(Aes128::new(&AesKey(key)).ctr_apply(&CtrNonce(nonce), &blob.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeySize;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn setup() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        (kp, rng)
    }

    #[test]
    fn seal_open_round_trip() {
        let (kp, mut rng) = setup();
        for len in [0usize, 1, 100, 5000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let blob = seal(kp.public(), &msg, &mut rng).unwrap();
            assert_eq!(open(&kp, &blob).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn open_with_wrong_key_fails() {
        let (kp, mut rng) = setup();
        let other = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let blob = seal(kp.public(), b"secret", &mut rng).unwrap();
        assert!(open(&other, &blob).is_err());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (kp, mut rng) = setup();
        let msg = b"confidential group traffic".to_vec();
        let blob = seal(kp.public(), &msg, &mut rng).unwrap();
        assert_ne!(blob.body, msg);
        // No plaintext substring leaks into the body.
        assert!(!blob
            .body
            .windows(5)
            .any(|w| msg.windows(5).any(|m| m == w)));
    }

    #[test]
    fn sealing_twice_differs() {
        let (kp, mut rng) = setup();
        let a = seal(kp.public(), b"same message", &mut rng).unwrap();
        let b = seal(kp.public(), b"same message", &mut rng).unwrap();
        assert_ne!(a.sealed_key, b.sealed_key);
        assert_ne!(a.body, b.body);
    }

    #[test]
    fn wire_round_trip() {
        let (kp, mut rng) = setup();
        let blob = seal(kp.public(), b"wire format", &mut rng).unwrap();
        let bytes = blob.to_bytes();
        assert_eq!(bytes.len(), blob.wire_len());
        assert_eq!(SealedBlob::from_bytes(&bytes).unwrap(), blob);
    }

    #[test]
    fn truncated_wire_rejected() {
        let (kp, mut rng) = setup();
        let bytes = seal(kp.public(), b"wire format", &mut rng).unwrap().to_bytes();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(SealedBlob::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SealedBlob::from_bytes(&extended).is_err());
    }

    #[test]
    fn corrupted_header_fails_open() {
        let (kp, mut rng) = setup();
        let mut blob = seal(kp.public(), b"payload", &mut rng).unwrap();
        blob.sealed_key[5] ^= 0xFF;
        assert!(open(&kp, &blob).is_err());
    }
}
