//! Property-based tests for the cryptographic substrate: arithmetic laws
//! for the bignum, round-trip laws for AES/RSA/hybrid/onion, and
//! incremental-hash consistency for SHA-256.
//!
//! Written against `whisper_rand::check` — each property draws its inputs
//! from a seeded [`Gen`] and asserts with the ordinary `assert!` family;
//! failures are shrunk and reported with a reproduction seed.

use std::sync::OnceLock;
use whisper_crypto::aes::{Aes128, AesKey, CtrNonce};
use whisper_crypto::bignum::BigUint;
use whisper_crypto::hybrid;
use whisper_crypto::onion::{build_onion, peel, peel_with_body, PeelResult};
use whisper_crypto::rsa::{KeyPair, RsaKeySize};
use whisper_crypto::sha256::Sha256;
use whisper_rand::check::check;
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

/// Key generation is expensive; share a deterministic pool across cases.
fn test_keys() -> &'static [KeyPair; 3] {
    static KEYS: OnceLock<[KeyPair; 3]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        [
            KeyPair::generate(RsaKeySize::Sim384, &mut rng),
            KeyPair::generate(RsaKeySize::Sim384, &mut rng),
            KeyPair::generate(RsaKeySize::Sim512, &mut rng),
        ]
    })
}

#[test]
fn bytes_round_trip() {
    check(64, "bytes_round_trip", |g| {
        let bytes = g.bytes(63);
        let v = big(&bytes);
        let back = v.to_bytes_be();
        // Leading zeros are dropped; the numeric value is preserved.
        assert_eq!(big(&back), v);
    });
}

#[test]
fn addition_is_commutative_and_sub_inverts() {
    check(64, "addition_is_commutative_and_sub_inverts", |g| {
        let (a, b) = (big(&g.bytes(47)), big(&g.bytes(47)));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).sub(&b), a);
    });
}

#[test]
fn multiplication_distributes() {
    check(64, "multiplication_distributes", |g| {
        let (a, b, c) = (big(&g.bytes(31)), big(&g.bytes(31)), big(&g.bytes(31)));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.mul(&b), b.mul(&a));
    });
}

#[test]
fn division_invariant() {
    check(64, "division_invariant", |g| {
        let n = big(&g.bytes(63));
        let mut d_bytes = g.bytes(39);
        // Force a nonzero divisor instead of discarding the case.
        d_bytes.push(g.gen_range(1..=255u8));
        let d = big(&d_bytes);
        let (q, r) = n.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), n);
    });
}

#[test]
fn shifts_invert() {
    check(64, "shifts_invert", |g| {
        let v = big(&g.bytes(31));
        let s = g.gen_range(0..200usize);
        assert_eq!(v.shl(s).shr(s), v);
    });
}

#[test]
fn modpow_matches_naive() {
    check(64, "modpow_matches_naive", |g| {
        let base: u64 = g.gen();
        let exp = g.gen_range(0..64u64);
        let m = g.gen_range(3..u64::MAX) | 1; // odd: exercise the Montgomery path
        let fast = BigUint::from(base).modpow(&BigUint::from(exp), &BigUint::from(m));
        // Naive u128 square-and-multiply.
        let mut acc: u128 = 1;
        let b = (base % m) as u128;
        for i in (0..64).rev() {
            acc = acc * acc % m as u128;
            if (exp >> i) & 1 == 1 {
                acc = acc * b % m as u128;
            }
        }
        assert_eq!(fast.to_u64(), Some(acc as u64));
    });
}

#[test]
fn modinv_verifies() {
    check(64, "modinv_verifies", |g| {
        let a = BigUint::from(g.gen_range(1..u64::MAX));
        let m = BigUint::from(g.gen_range(3..u64::MAX));
        if let Some(inv) = a.modinv(&m) {
            assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
            assert!(inv < m);
        } else {
            assert!(!a.gcd(&m).is_one());
        }
    });
}

#[test]
fn aes_ctr_round_trips() {
    check(64, "aes_ctr_round_trips", |g| {
        let data = g.bytes(599);
        let key: [u8; 16] = g.gen();
        let nonce: [u8; 8] = g.gen();
        let cipher = Aes128::new(&AesKey(key));
        let n = CtrNonce(nonce);
        assert_eq!(cipher.ctr_apply(&n, &cipher.ctr_apply(&n, &data)), data);
    });
}

#[test]
fn aes_block_round_trips() {
    check(64, "aes_block_round_trips", |g| {
        let block: [u8; 16] = g.gen();
        let key: [u8; 16] = g.gen();
        let cipher = Aes128::new(&AesKey(key));
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        assert_eq!(b, block);
    });
}

#[test]
fn sha256_incremental_equals_oneshot() {
    check(64, "sha256_incremental_equals_oneshot", |g| {
        let data = g.bytes(499);
        let split = g.gen_range(0..500usize).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    });
}

#[test]
fn rsa_round_trips() {
    check(64, "rsa_round_trips", |g| {
        let msg = g.bytes(36);
        let seed: u64 = g.gen();
        let which = g.gen_range(0..3usize);
        let kp = &test_keys()[which];
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public().encrypt(&msg, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&ct).unwrap(), msg);
    });
}

#[test]
fn rsa_signatures_verify_and_bind() {
    check(64, "rsa_signatures_verify_and_bind", |g| {
        let msg = g.bytes(199);
        let which = g.gen_range(0..3usize);
        let kp = &test_keys()[which];
        let sig = kp.sign(&msg);
        assert!(kp.public().verify(&msg, &sig).is_ok());
        let mut other = msg.clone();
        other.push(0);
        assert!(kp.public().verify(&other, &sig).is_err());
    });
}

#[test]
fn hybrid_round_trips() {
    check(64, "hybrid_round_trips", |g| {
        let msg = g.bytes(1999);
        let seed: u64 = g.gen();
        let kp = &test_keys()[0];
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = hybrid::seal(kp.public(), &msg, &mut rng).unwrap();
        assert_eq!(hybrid::open(kp, &blob).unwrap(), msg);
    });
}

#[test]
fn onion_full_walk() {
    check(64, "onion_full_walk", |g| {
        let msg = g.bytes(499);
        let seed: u64 = g.gen();
        let keys = test_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let path: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.public().clone(), vec![i as u8 + 1]))
            .collect();
        let packet = build_onion(&path, &msg, &mut rng).unwrap();
        let mut header = packet.header.clone();
        for (i, k) in keys.iter().enumerate().take(keys.len() - 1) {
            match peel(k, &header).unwrap() {
                PeelResult::Relay { next_hop, header: inner, .. } => {
                    assert_eq!(next_hop, vec![i as u8 + 2]);
                    header = inner;
                }
                PeelResult::Destination { .. } => panic!("early destination"),
            }
        }
        match peel_with_body(&keys[keys.len() - 1], &header, &packet.body).unwrap() {
            PeelResult::Destination { payload, .. } => assert_eq!(payload, msg),
            PeelResult::Relay { .. } => panic!("expected destination"),
        }
    });
}

#[test]
fn rsa_decrypt_never_panics_on_garbage() {
    check(64, "rsa_decrypt_never_panics_on_garbage", |g| {
        let bytes = g.bytes(63);
        let kp = &test_keys()[0];
        let _ = kp.decrypt(&bytes); // must return Err, not panic
    });
}

#[test]
fn peel_never_panics_on_garbage() {
    check(64, "peel_never_panics_on_garbage", |g| {
        let bytes = g.bytes(199);
        let kp = &test_keys()[0];
        let _ = peel(kp, &bytes); // must return Err, not panic
    });
}
