//! Property-based tests for the cryptographic substrate: arithmetic laws
//! for the bignum, round-trip laws for AES/RSA/hybrid/onion, and
//! incremental-hash consistency for SHA-256.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use whisper_crypto::aes::{Aes128, AesKey, CtrNonce};
use whisper_crypto::bignum::BigUint;
use whisper_crypto::hybrid;
use whisper_crypto::onion::{build_onion, peel, peel_with_body, PeelResult};
use whisper_crypto::rsa::{KeyPair, RsaKeySize};
use whisper_crypto::sha256::Sha256;

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

/// Key generation is expensive; share a deterministic pool across cases.
fn test_keys() -> &'static [KeyPair; 3] {
    static KEYS: OnceLock<[KeyPair; 3]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        [
            KeyPair::generate(RsaKeySize::Sim384, &mut rng),
            KeyPair::generate(RsaKeySize::Sim384, &mut rng),
            KeyPair::generate(RsaKeySize::Sim512, &mut rng),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&bytes);
        let back = v.to_bytes_be();
        // Leading zeros are dropped; the numeric value is preserved.
        prop_assert_eq!(big(&back), v);
    }

    #[test]
    fn addition_is_commutative_and_sub_inverts(
        a in proptest::collection::vec(any::<u8>(), 0..48),
        b in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let (a, b) = (big(&a), big(&b));
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn multiplication_distributes(
        a in proptest::collection::vec(any::<u8>(), 0..32),
        b in proptest::collection::vec(any::<u8>(), 0..32),
        c in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let (a, b, c) = (big(&a), big(&b), big(&c));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn division_invariant(
        n in proptest::collection::vec(any::<u8>(), 0..64),
        d in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let n = big(&n);
        let d = big(&d);
        prop_assume!(!d.is_zero());
        let (q, r) = n.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), n);
    }

    #[test]
    fn shifts_invert(v in proptest::collection::vec(any::<u8>(), 0..32), s in 0usize..200) {
        let v = big(&v);
        prop_assert_eq!(v.shl(s).shr(s), v);
    }

    #[test]
    fn modpow_matches_naive(base in any::<u64>(), exp in 0u64..64, m in 3u64..u64::MAX) {
        prop_assume!(m % 2 == 1); // exercise the Montgomery path
        let fast = BigUint::from(base).modpow(&BigUint::from(exp), &BigUint::from(m));
        // Naive u128 square-and-multiply.
        let mut acc: u128 = 1;
        let b = (base % m) as u128;
        for i in (0..64).rev() {
            acc = acc * acc % m as u128;
            if (exp >> i) & 1 == 1 {
                acc = acc * b % m as u128;
            }
        }
        prop_assert_eq!(fast.to_u64(), Some(acc as u64));
    }

    #[test]
    fn modinv_verifies(a in 1u64..u64::MAX, m in 3u64..u64::MAX) {
        let (a, m) = (BigUint::from(a), BigUint::from(m));
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
            prop_assert!(inv < m);
        } else {
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn aes_ctr_round_trips(data in proptest::collection::vec(any::<u8>(), 0..600), key in any::<[u8;16]>(), nonce in any::<[u8;8]>()) {
        let cipher = Aes128::new(&AesKey(key));
        let n = CtrNonce(nonce);
        prop_assert_eq!(cipher.ctr_apply(&n, &cipher.ctr_apply(&n, &data)), data);
    }

    #[test]
    fn aes_block_round_trips(block in any::<[u8;16]>(), key in any::<[u8;16]>()) {
        let cipher = Aes128::new(&AesKey(key));
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn rsa_round_trips(msg in proptest::collection::vec(any::<u8>(), 0..37), seed in any::<u64>(), which in 0usize..3) {
        let kp = &test_keys()[which];
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public().encrypt(&msg, &mut rng).unwrap();
        prop_assert_eq!(kp.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn rsa_signatures_verify_and_bind(msg in proptest::collection::vec(any::<u8>(), 0..200), which in 0usize..3) {
        let kp = &test_keys()[which];
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig).is_ok());
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(kp.public().verify(&other, &sig).is_err());
    }

    #[test]
    fn hybrid_round_trips(msg in proptest::collection::vec(any::<u8>(), 0..2000), seed in any::<u64>()) {
        let kp = &test_keys()[0];
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = hybrid::seal(kp.public(), &msg, &mut rng).unwrap();
        prop_assert_eq!(hybrid::open(kp, &blob).unwrap(), msg);
    }

    #[test]
    fn onion_full_walk(msg in proptest::collection::vec(any::<u8>(), 0..500), seed in any::<u64>()) {
        let keys = test_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let path: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.public().clone(), vec![i as u8 + 1]))
            .collect();
        let packet = build_onion(&path, &msg, &mut rng).unwrap();
        let mut header = packet.header.clone();
        for (i, k) in keys.iter().enumerate().take(keys.len() - 1) {
            match peel(k, &header).unwrap() {
                PeelResult::Relay { next_hop, header: inner } => {
                    prop_assert_eq!(next_hop, vec![i as u8 + 2]);
                    header = inner;
                }
                PeelResult::Destination { .. } => prop_assert!(false, "early destination"),
            }
        }
        match peel_with_body(&keys[keys.len() - 1], &header, &packet.body).unwrap() {
            PeelResult::Destination { payload } => prop_assert_eq!(payload, msg),
            PeelResult::Relay { .. } => prop_assert!(false, "expected destination"),
        }
    }

    #[test]
    fn rsa_decrypt_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kp = &test_keys()[0];
        let _ = kp.decrypt(&bytes); // must return Err, not panic
    }

    #[test]
    fn peel_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let kp = &test_keys()[0];
        let _ = peel(kp, &bytes); // must return Err, not panic
    }
}
