//! Probabilistic broadcast inside a private group — the "private chat
//! room" application class the paper's introduction motivates.
//!
//! The protocol is a lightweight variant of lpbcast (Eugster et al. \[5\],
//! one of the PSS applications the paper cites): every member buffers the
//! most recent events it has seen; each cycle it pushes its digest (and
//! any events the partner is missing) to a few random members of its
//! private view. Events are identified by `(origin, sequence)`; duplicate
//! suppression makes delivery idempotent and the push-with-recovery
//! exchange makes dissemination complete w.h.p. within a few cycles —
//! all of it over confidential WCL routes.

use std::collections::{BTreeMap, BTreeSet};
use whisper_core::{GroupApp, GroupId, WhisperApi};
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration};

/// Identifier of a broadcast event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// The publishing member.
    pub origin: NodeId,
    /// The publisher's sequence number.
    pub seq: u64,
}

impl WireEncode for EventId {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.origin);
        w.put_u64(self.seq);
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl WireDecode for EventId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EventId { origin: r.take()?, seq: r.take_u64()? })
    }
}

/// A broadcast event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Identifier.
    pub id: EventId,
    /// Application payload (e.g. a chat line).
    pub payload: Vec<u8>,
}

impl WireEncode for Event {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.id);
        w.put_bytes(&self.payload);
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + whisper_net::wire::bytes_len(&self.payload)
    }
}

impl WireDecode for Event {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Event { id: r.take()?, payload: r.take_bytes()?.to_vec() })
    }
}

#[derive(Clone, Debug, PartialEq)]
enum BcastMsg {
    /// Push: fresh events plus the sender's digest of known ids.
    /// `push` is true for spontaneous rounds (they elicit pulls and
    /// push-backs) and false for responses (which must not).
    Gossip { events: Vec<Event>, digest: Vec<EventId>, push: bool },
    /// Pull: ids the sender is missing (learned from a digest).
    Request { ids: Vec<EventId> },
}

impl WireEncode for BcastMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            BcastMsg::Gossip { events, digest, push } => {
                w.put_u8(1);
                w.put_seq(events);
                w.put_seq(digest);
                w.put(push);
            }
            BcastMsg::Request { ids } => {
                w.put_u8(2);
                w.put_seq(ids);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        use whisper_net::wire::seq_len;
        1 + match self {
            BcastMsg::Gossip { events, digest, .. } => seq_len(events) + seq_len(digest) + 1,
            BcastMsg::Request { ids } => seq_len(ids),
        }
    }
}

impl WireDecode for BcastMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => BcastMsg::Gossip {
                events: r.take_seq()?,
                digest: r.take_seq()?,
                push: r.take()?,
            },
            2 => BcastMsg::Request { ids: r.take_seq()? },
            _ => return Err(WireError::new("unknown broadcast tag")),
        })
    }
}

/// Configuration of the broadcast layer.
#[derive(Clone, Debug)]
pub struct BroadcastConfig {
    /// Gossip period.
    pub cycle: SimDuration,
    /// Members pushed to per cycle (fanout).
    pub fanout: usize,
    /// Fresh events shipped per push.
    pub events_per_push: usize,
    /// Event buffer capacity (events beyond it are forgotten, oldest
    /// first — late joiners recover only this window).
    pub buffer: usize,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            cycle: SimDuration::from_secs(15),
            fanout: 2,
            events_per_push: 8,
            buffer: 256,
        }
    }
}

const BCAST_TIMER: u64 = 3;

/// The probabilistic broadcast application.
#[derive(Debug)]
pub struct BroadcastApp {
    group: GroupId,
    cfg: BroadcastConfig,
    /// All known events, ordered by id (bounded by `cfg.buffer`).
    store: BTreeMap<EventId, Vec<u8>>,
    /// Ids seen (kept slightly longer than payloads for dedup).
    seen: BTreeSet<EventId>,
    /// Delivery log in arrival order.
    delivered: Vec<Event>,
    next_seq: u64,
    published: u64,
}

impl BroadcastApp {
    /// Creates the app for `group`.
    pub fn new(group: GroupId, cfg: BroadcastConfig) -> Self {
        BroadcastApp {
            group,
            cfg,
            store: BTreeMap::new(),
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            next_seq: 0,
            published: 0,
        }
    }

    /// Events delivered so far, in arrival order (includes own
    /// publications).
    pub fn delivered(&self) -> &[Event] {
        &self.delivered
    }

    /// Number of events this node published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Publishes `payload` to the group. Returns the event id.
    pub fn publish(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        payload: Vec<u8>,
    ) -> EventId {
        let id = EventId { origin: api.id(), seq: self.next_seq };
        self.next_seq += 1;
        self.published += 1;
        self.accept(Event { id, payload });
        // Eager push to kick off dissemination without waiting a cycle.
        self.push_round(ctx, api);
        id
    }

    fn accept(&mut self, event: Event) -> bool {
        if !self.seen.insert(event.id) {
            return false;
        }
        self.store.insert(event.id, event.payload.clone());
        self.delivered.push(event);
        while self.store.len() > self.cfg.buffer {
            let oldest = *self.store.keys().next().expect("non-empty");
            self.store.remove(&oldest);
        }
        true
    }

    fn digest(&self) -> Vec<EventId> {
        self.store.keys().copied().collect()
    }

    fn freshest_events(&self) -> Vec<Event> {
        self.delivered
            .iter()
            .rev()
            .take(self.cfg.events_per_push)
            .filter(|e| self.store.contains_key(&e.id))
            .cloned()
            .collect()
    }

    fn push_round(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>) {
        let view = api.private_view(self.group);
        if view.is_empty() {
            return;
        }
        let mut targets: Vec<NodeId> = view.iter().map(|e| e.node).collect();
        use whisper_rand::seq::SliceRandom;
        targets.shuffle(ctx.rng());
        let msg = BcastMsg::Gossip {
            events: self.freshest_events(),
            digest: self.digest(),
            push: true,
        };
        let wire = msg.to_wire();
        for target in targets.into_iter().take(self.cfg.fanout) {
            // Ship our entry so receivers can pull missing events from us
            // even when we are absent from their private view.
            api.send_private(ctx, self.group, target, wire.clone(), true);
        }
    }
}

impl GroupApp for BroadcastApp {
    fn on_joined(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            api.set_app_timer(ctx, self.cfg.cycle, BCAST_TIMER);
        }
    }

    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>, _api: &mut WhisperApi<'_>) {
        // The payload buffer is volatile — anti-entropy refills it from
        // peers. The dedup set, delivery log and sequence counter model
        // the app's own durable journal: a publisher that reused
        // sequence numbers after a crash would collide with its pre-crash
        // event ids and silently lose events at every subscriber.
        self.store.clear();
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, token: u64) {
        if token != BCAST_TIMER {
            return;
        }
        api.set_app_timer(ctx, self.cfg.cycle, BCAST_TIMER);
        self.push_round(ctx, api);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        from: NodeId,
        data: &[u8],
        reply_entry: Option<whisper_core::PrivateEntry>,
    ) {
        if group != self.group {
            return;
        }
        let Ok(msg) = BcastMsg::from_wire(data) else {
            return;
        };
        match msg {
            BcastMsg::Gossip { events, digest, push } => {
                for event in events {
                    self.accept(event);
                }
                if !push {
                    return; // a pull/push-back response; never answer it
                }
                // Anti-entropy runs both ways. Pull: recover anything the
                // digest shows that we lack.
                let missing: Vec<EventId> = digest
                    .iter()
                    .filter(|id| !self.seen.contains(id))
                    .copied()
                    .collect();
                if !missing.is_empty() {
                    let req = BcastMsg::Request { ids: missing }.to_wire();
                    match &reply_entry {
                        Some(entry) => {
                            api.send_private_to_entry(ctx, self.group, entry, req, true);
                        }
                        None => {
                            api.send_private(ctx, self.group, from, req, true);
                        }
                    }
                }
                // Push-back: hand the pusher whatever it is missing — this
                // is how a member that appears in few views still recovers
                // (its own outgoing pushes expose its digest).
                let digest_set: BTreeSet<EventId> = digest.into_iter().collect();
                let they_lack: Vec<Event> = self
                    .store
                    .iter()
                    .filter(|(id, _)| !digest_set.contains(id))
                    .take(2 * self.cfg.events_per_push)
                    .map(|(id, payload)| Event { id: *id, payload: payload.clone() })
                    .collect();
                if !they_lack.is_empty() {
                    let back =
                        BcastMsg::Gossip { events: they_lack, digest: vec![], push: false }
                            .to_wire();
                    match &reply_entry {
                        Some(entry) => {
                            api.send_private_to_entry(ctx, self.group, entry, back, false);
                        }
                        None => {
                            api.send_private(ctx, self.group, from, back, false);
                        }
                    }
                }
            }
            BcastMsg::Request { ids } => {
                let events: Vec<Event> = ids
                    .into_iter()
                    .filter_map(|id| {
                        self.store.get(&id).map(|p| Event { id, payload: p.clone() })
                    })
                    .collect();
                if !events.is_empty() {
                    let resp =
                        BcastMsg::Gossip { events, digest: vec![], push: false }.to_wire();
                    match &reply_entry {
                        Some(entry) => {
                            api.send_private_to_entry(ctx, self.group, entry, resp, false);
                        }
                        None => {
                            api.send_private(ctx, self.group, from, resp, false);
                        }
                    }
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(origin: u64, seq: u64, payload: &[u8]) -> Event {
        Event { id: EventId { origin: NodeId(origin), seq }, payload: payload.to_vec() }
    }

    #[test]
    fn accept_dedupes() {
        let mut app = BroadcastApp::new(GroupId(1), BroadcastConfig::default());
        assert!(app.accept(event(1, 0, b"hello")));
        assert!(!app.accept(event(1, 0, b"hello")));
        assert_eq!(app.delivered().len(), 1);
    }

    #[test]
    fn buffer_bounded_but_seen_remembered() {
        let cfg = BroadcastConfig { buffer: 4, ..BroadcastConfig::default() };
        let mut app = BroadcastApp::new(GroupId(1), cfg);
        for seq in 0..10 {
            app.accept(event(1, seq, b"x"));
        }
        assert_eq!(app.store.len(), 4);
        assert_eq!(app.delivered().len(), 10, "deliveries are not forgotten");
        assert!(!app.accept(event(1, 0, b"x")), "evicted events stay deduplicated");
    }

    #[test]
    fn digest_lists_store_contents() {
        let mut app = BroadcastApp::new(GroupId(1), BroadcastConfig::default());
        app.accept(event(1, 0, b"a"));
        app.accept(event(2, 5, b"b"));
        let digest = app.digest();
        assert_eq!(digest.len(), 2);
        assert!(digest.contains(&EventId { origin: NodeId(2), seq: 5 }));
    }

    #[test]
    fn freshest_events_are_the_most_recent() {
        let cfg = BroadcastConfig { events_per_push: 2, ..BroadcastConfig::default() };
        let mut app = BroadcastApp::new(GroupId(1), cfg);
        for seq in 0..5 {
            app.accept(event(1, seq, b"x"));
        }
        let fresh = app.freshest_events();
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[0].id.seq, 4);
        assert_eq!(fresh[1].id.seq, 3);
    }

    #[test]
    fn wire_round_trips() {
        let msg = BcastMsg::Gossip {
            events: vec![event(1, 2, b"payload")],
            digest: vec![EventId { origin: NodeId(1), seq: 2 }],
            push: true,
        };
        assert_eq!(BcastMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        let msg = BcastMsg::Request { ids: vec![EventId { origin: NodeId(9), seq: 0 }] };
        assert_eq!(BcastMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        assert!(BcastMsg::from_wire(&[9, 9]).is_err());
    }
}
