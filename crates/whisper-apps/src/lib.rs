#![warn(missing_docs)]
//! Applications and higher-level gossip protocols running on top of the
//! WHISPER PPSS.
//!
//! These serve two roles in the paper:
//!
//! * **building blocks** — [`aggregation`] implements the gossip-based
//!   aggregation of Jelasity et al. used for leader election (§IV-A) and
//!   network size estimation;
//! * **the chat-room class** — [`broadcast`] implements a probabilistic
//!   broadcast (lpbcast-style, the paper's reference \[5\]) for private
//!   chat rooms and live-stream control channels;
//! * **the demo application** — [`chord`] + [`tman`] + [`tchord`]
//!   reproduce §V-G: a private Chord DHT bootstrapped with T-Chord (the
//!   T-Man-based gossip construction of the Chord ring), where every
//!   message travels over confidential WCL routes and query replies come
//!   back over a single WCL path using contact info shipped with the
//!   query.

pub mod aggregation;
pub mod broadcast;
pub mod chord;
pub mod gosskip;
pub mod tchord;
pub mod tman;
