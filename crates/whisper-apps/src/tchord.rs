//! T-Chord (Montresor, Jelasity, Babaoglu \[15\]): gossip-based
//! construction of a Chord ring inside a WHISPER private group — the
//! application experiment of paper §V-G.
//!
//! Every node derives its ring position from its identifier, then runs a
//! T-Man exchange over the PPSS: view exchanges ship `(key, entry)`
//! descriptors; ranking by ring proximity makes views converge to the
//! true ring neighbourhood within a few cycles, while a descriptor
//! directory provides the long links used as fingers. Lookups route
//! greedily (closest preceding neighbour); the reply travels back to the
//! querying node over a *single* WCL path, using the contact information
//! (identity, public key, Π gateway P-nodes) the query ships along —
//! exactly the pattern described for Fig. 9.

use crate::chord::{ChordKey, RingNeighbors};
use crate::tman::{Descriptor, TManView};
use std::collections::HashMap;
use whisper_core::{GroupApp, GroupId, PrivateEntry, WhisperApi};
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration, SimTime};

/// A T-Chord descriptor: a ring position plus the PPSS entry needed to
/// open a confidential route to the node.
#[derive(Clone, Debug, PartialEq)]
pub struct ChordDescriptor {
    /// The node's ring key.
    pub key: ChordKey,
    /// Its private-view entry.
    pub entry: PrivateEntry,
}

impl Descriptor for ChordDescriptor {
    fn node(&self) -> NodeId {
        self.entry.node
    }
}

impl WireEncode for ChordDescriptor {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.key.0);
        w.put(&self.entry);
    }

    fn encoded_len(&self) -> usize {
        8 + self.entry.encoded_len()
    }
}

impl WireDecode for ChordDescriptor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChordDescriptor { key: ChordKey(r.take_u64()?), entry: r.take()? })
    }
}

/// T-Chord wire messages (inside PPSS `AppData`).
#[derive(Clone, Debug, PartialEq)]
enum TChordMsg {
    Exchange { descriptors: Vec<ChordDescriptor>, respond: bool },
    Lookup { query_id: u64, key: ChordKey, origin: ChordDescriptor, hops: u8 },
    LookupReply { query_id: u64, owner: NodeId, owner_key: ChordKey, hops: u8 },
}

impl WireEncode for TChordMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            TChordMsg::Exchange { descriptors, respond } => {
                w.put_u8(1);
                w.put_seq(descriptors);
                w.put(respond);
            }
            TChordMsg::Lookup { query_id, key, origin, hops } => {
                w.put_u8(2);
                w.put_u64(*query_id);
                w.put_u64(key.0);
                w.put(origin);
                w.put_u8(*hops);
            }
            TChordMsg::LookupReply { query_id, owner, owner_key, hops } => {
                w.put_u8(3);
                w.put_u64(*query_id);
                w.put(owner);
                w.put_u64(owner_key.0);
                w.put_u8(*hops);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            TChordMsg::Exchange { descriptors, .. } => {
                whisper_net::wire::seq_len(descriptors) + 1
            }
            TChordMsg::Lookup { origin, .. } => 8 + 8 + origin.encoded_len() + 1,
            TChordMsg::LookupReply { .. } => 8 + 8 + 8 + 1,
        }
    }
}

impl WireDecode for TChordMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => TChordMsg::Exchange { descriptors: r.take_seq()?, respond: r.take()? },
            2 => TChordMsg::Lookup {
                query_id: r.take_u64()?,
                key: ChordKey(r.take_u64()?),
                origin: r.take()?,
                hops: r.take_u8()?,
            },
            3 => TChordMsg::LookupReply {
                query_id: r.take_u64()?,
                owner: r.take()?,
                owner_key: ChordKey(r.take_u64()?),
                hops: r.take_u8()?,
            },
            _ => return Err(WireError::new("unknown T-Chord tag")),
        })
    }
}

/// T-Chord configuration.
#[derive(Clone, Debug)]
pub struct TChordConfig {
    /// T-Man exchange period.
    pub cycle: SimDuration,
    /// Ranked-view capacity.
    pub view_cap: usize,
    /// Descriptors shipped per exchange.
    pub exchange_len: usize,
    /// Successor-list length.
    pub successors: usize,
    /// Lookup hop budget.
    pub lookup_ttl: u8,
    /// Re-issue a lookup if no reply arrived after this long.
    pub lookup_retry: SimDuration,
    /// Give up after this many (re-)issues.
    pub lookup_attempts: u32,
}

impl Default for TChordConfig {
    fn default() -> Self {
        TChordConfig {
            cycle: SimDuration::from_secs(30),
            view_cap: 20,
            exchange_len: 8,
            successors: 3,
            lookup_ttl: 32,
            lookup_retry: SimDuration::from_secs(15),
            lookup_attempts: 4,
        }
    }
}

/// A completed lookup, as recorded at the querying node.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupResult {
    /// The query.
    pub query_id: u64,
    /// The key looked up.
    pub key: ChordKey,
    /// The responding owner.
    pub owner: NodeId,
    /// Routing hops taken.
    pub hops: u8,
    /// End-to-end delay (issue → reply).
    pub delay: whisper_net::SimDuration,
}

const TCHORD_TIMER: u64 = 2;

#[derive(Clone, Debug)]
struct PendingLookup {
    key: ChordKey,
    started: SimTime,
    last_sent: SimTime,
    attempts: u32,
}

/// The T-Chord application.
#[derive(Debug)]
pub struct TChordApp {
    group: GroupId,
    cfg: TChordConfig,
    my_key: Option<ChordKey>,
    view: TManView<ChordDescriptor>,
    directory: HashMap<NodeId, ChordDescriptor>,
    neighbors: RingNeighbors,
    pending: HashMap<u64, PendingLookup>,
    completed: Vec<LookupResult>,
    next_query: u64,
    cycles: u64,
}

impl TChordApp {
    /// Creates the app for `group`.
    pub fn new(group: GroupId, cfg: TChordConfig) -> Self {
        let view_cap = cfg.view_cap;
        TChordApp {
            group,
            cfg,
            my_key: None,
            view: TManView::new(view_cap),
            directory: HashMap::new(),
            neighbors: RingNeighbors::default(),
            pending: HashMap::new(),
            completed: Vec::new(),
            next_query: 1,
            cycles: 0,
        }
    }

    /// This node's ring key (known after start).
    pub fn my_key(&self) -> Option<ChordKey> {
        self.my_key
    }

    /// The current ring neighbour selection.
    pub fn neighbors(&self) -> &RingNeighbors {
        &self.neighbors
    }

    /// Completed lookups, in completion order.
    pub fn completed(&self) -> &[LookupResult] {
        &self.completed
    }

    /// Outstanding lookups.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// T-Man cycles run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Issues a lookup for `key`; the result lands in
    /// [`completed`](Self::completed). Returns the query id, or `None`
    /// when the node has no routing state yet.
    pub fn lookup(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        key: ChordKey,
    ) -> Option<u64> {
        let me = self.ensure_key(api);
        let query_id = self.next_query;
        self.next_query += 1;
        if self.neighbors.owns(me, key) {
            // We hold the key ourselves: zero network hops.
            self.completed.push(LookupResult {
                query_id,
                key,
                owner: api.id(),
                hops: 0,
                delay: whisper_net::SimDuration::ZERO,
            });
            return Some(query_id);
        }
        let origin = ChordDescriptor { key: me, entry: api.my_entry() };
        let msg = TChordMsg::Lookup { query_id, key, origin, hops: 0 };
        self.pending.insert(
            query_id,
            PendingLookup { key, started: ctx.now(), last_sent: ctx.now(), attempts: 1 },
        );
        if !self.route(ctx, api, key, &msg) {
            self.pending.remove(&query_id);
            return None;
        }
        Some(query_id)
    }

    /// Re-issues lookups whose replies are overdue (confidential routes
    /// are lossy under stale gateway information; the issuer retries,
    /// mirroring the WCL's alternative-path policy).
    fn retry_stale_lookups(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>) {
        let now = ctx.now();
        let retry_after = self.cfg.lookup_retry;
        let max_attempts = self.cfg.lookup_attempts;
        let me = self.ensure_key(api);
        let stale: Vec<(u64, ChordKey)> = self
            .pending
            .iter()
            .filter(|(_, p)| now.since(p.last_sent) >= retry_after)
            .map(|(id, p)| (*id, p.key))
            .collect();
        for (query_id, key) in stale {
            let p = self.pending.get_mut(&query_id).expect("listed");
            if p.attempts >= max_attempts {
                self.pending.remove(&query_id);
                ctx.metrics().count("tchord.lookups_abandoned", 1);
                continue;
            }
            p.attempts += 1;
            p.last_sent = now;
            let origin = ChordDescriptor { key: me, entry: api.my_entry() };
            let msg = TChordMsg::Lookup { query_id, key, origin, hops: 0 };
            ctx.metrics().count("tchord.lookups_retried", 1);
            self.route(ctx, api, key, &msg);
        }
    }

    fn ensure_key(&mut self, api: &WhisperApi<'_>) -> ChordKey {
        *self.my_key.get_or_insert_with(|| ChordKey::of_node(api.id()))
    }

    fn rank_of(me: ChordKey, d: &ChordDescriptor) -> u64 {
        // Symmetric ring proximity: keeps both successors and
        // predecessors; fingers come from the directory.
        me.cw_distance(d.key).min(d.key.cw_distance(me))
    }

    fn absorb(&mut self, api: &WhisperApi<'_>, descriptors: Vec<ChordDescriptor>) {
        let me = self.ensure_key(api);
        let my_id = api.id();
        for d in &descriptors {
            if d.node() != my_id {
                self.directory.insert(d.node(), d.clone());
            }
        }
        self.view.merge(descriptors, my_id, |d| Self::rank_of(me, d));
        self.reselect(me);
    }

    fn reselect(&mut self, me: ChordKey) {
        let candidates: Vec<(ChordKey, NodeId)> =
            self.directory.values().map(|d| (d.key, d.node())).collect();
        self.neighbors = RingNeighbors::select(me, &candidates, self.cfg.successors);
    }

    /// Seeds the candidate pool from the PPSS private view.
    fn seed_from_ppss(&mut self, api: &WhisperApi<'_>) {
        let entries: Vec<PrivateEntry> = api.private_view(self.group).to_vec();
        let descriptors: Vec<ChordDescriptor> = entries
            .into_iter()
            .map(|entry| ChordDescriptor { key: ChordKey::of_node(entry.node), entry })
            .collect();
        self.absorb(api, descriptors);
    }

    fn my_descriptor(&mut self, api: &WhisperApi<'_>) -> ChordDescriptor {
        ChordDescriptor { key: self.ensure_key(api), entry: api.my_entry() }
    }

    /// Routes `msg` greedily towards `key`. Returns `false` when no next
    /// hop is known.
    fn route(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        key: ChordKey,
        msg: &TChordMsg,
    ) -> bool {
        let me = self.ensure_key(api);
        let Some((_, next)) = self.neighbors.next_hop(me, key) else {
            ctx.metrics().count("tchord.no_route", 1);
            return false;
        };
        let Some(target) = self.directory.get(&next).cloned() else {
            ctx.metrics().count("tchord.no_route", 1);
            return false;
        };
        api.send_private_to_entry(ctx, self.group, &target.entry, msg.to_wire(), false)
    }
}

impl GroupApp for TChordApp {
    fn on_joined(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            self.ensure_key(api);
            api.set_app_timer(ctx, self.cfg.cycle, TCHORD_TIMER);
        }
    }

    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>, _api: &mut WhisperApi<'_>) {
        // In-flight lookups reference WCL message state that died with
        // the process; the routing view, directory and ring neighbours
        // are volatile caches the T-Man cycle regrows from the PPSS.
        // Completed lookups were already surfaced to the caller and the
        // ring key is re-derived deterministically from the node id.
        self.pending.clear();
        self.view.clear();
        self.directory.clear();
        self.neighbors = RingNeighbors::default();
    }

    fn on_view_updated(&mut self, _ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            self.seed_from_ppss(api);
        }
    }

    fn on_member_unreachable(
        &mut self,
        _ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        node: NodeId,
    ) {
        if group != self.group {
            return;
        }
        // Drop the dead member from all routing state and re-derive the
        // ring neighbours (Chord stabilization on failure).
        self.directory.remove(&node);
        self.view.remove(node);
        let me = self.ensure_key(api);
        self.reselect(me);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, token: u64) {
        if token != TCHORD_TIMER {
            return;
        }
        api.set_app_timer(ctx, self.cfg.cycle, TCHORD_TIMER);
        self.cycles += 1;
        self.seed_from_ppss(api);
        self.retry_stale_lookups(ctx, api);
        // Alternate partners: the best-ranked ring candidate on even
        // cycles (refines the ring), a random PPSS member on odd cycles
        // (keeps long links flowing) — T-Chord's dual source of peers.
        let partner: Option<ChordDescriptor> = if self.cycles.is_multiple_of(2) {
            self.view.best().cloned()
        } else {
            let view = api.private_view(self.group);
            if view.is_empty() {
                None
            } else {
                let pick = whisper_rand::Rng::gen_range(ctx.rng(), 0..view.len());
                let entry = view[pick].clone();
                Some(ChordDescriptor { key: ChordKey::of_node(entry.node), entry })
            }
        };
        let Some(partner) = partner else { return };
        let mut descriptors = self.view.buffer(self.cfg.exchange_len);
        descriptors.insert(0, self.my_descriptor(api));
        let msg = TChordMsg::Exchange { descriptors, respond: true };
        ctx.metrics().count("tchord.exchanges", 1);
        api.send_private_to_entry(ctx, self.group, &partner.entry, msg.to_wire(), false);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        _from: NodeId,
        data: &[u8],
        _reply_entry: Option<PrivateEntry>,
    ) {
        if group != self.group {
            return;
        }
        let Ok(msg) = TChordMsg::from_wire(data) else {
            return;
        };
        match msg {
            TChordMsg::Exchange { descriptors, respond } => {
                let reply_to = descriptors.first().cloned();
                self.absorb(api, descriptors);
                if respond {
                    if let Some(partner) = reply_to {
                        let mut mine = self.view.buffer(self.cfg.exchange_len);
                        mine.insert(0, self.my_descriptor(api));
                        let resp = TChordMsg::Exchange { descriptors: mine, respond: false };
                        api.send_private_to_entry(
                            ctx,
                            self.group,
                            &partner.entry,
                            resp.to_wire(),
                            false,
                        );
                    }
                }
            }
            TChordMsg::Lookup { query_id, key, origin, hops } => {
                let me = self.ensure_key(api);
                // Learn the originator on the way (free ring maintenance).
                self.directory.insert(origin.node(), origin.clone());
                if self.neighbors.owns(me, key) {
                    let reply = TChordMsg::LookupReply {
                        query_id,
                        owner: api.id(),
                        owner_key: me,
                        hops: hops + 1,
                    };
                    ctx.metrics().count("tchord.lookups_answered", 1);
                    // Single WCL path straight back to the querying node,
                    // using the shipped contact info.
                    api.send_private_to_entry(
                        ctx,
                        self.group,
                        &origin.entry,
                        reply.to_wire(),
                        false,
                    );
                } else if hops >= self.cfg.lookup_ttl {
                    ctx.metrics().count("tchord.lookups_ttl_exceeded", 1);
                } else {
                    let fwd = TChordMsg::Lookup { query_id, key, origin, hops: hops + 1 };
                    ctx.metrics().count("tchord.lookups_forwarded", 1);
                    self.route(ctx, api, key, &fwd);
                }
            }
            TChordMsg::LookupReply { query_id, owner, owner_key, hops } => {
                if let Some(p) = self.pending.remove(&query_id) {
                    let _ = owner_key;
                    self.completed.push(LookupResult {
                        query_id,
                        key: p.key,
                        owner,
                        hops,
                        delay: ctx.now().since(p.started),
                    });
                    ctx.metrics().count("tchord.lookups_completed", 1);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_wire_round_trip() {
        use whisper_rand::SeedableRng;
        use whisper_crypto::rsa::{KeyPair, RsaKeySize};
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let d = ChordDescriptor {
            key: ChordKey(42),
            entry: PrivateEntry {
                node: NodeId(7),
                age: 0,
                public: true,
                key: kp.public().clone(),
                gateways: vec![],
            },
        };
        assert_eq!(ChordDescriptor::from_wire(&d.to_wire()).unwrap(), d);
        let msg = TChordMsg::Lookup {
            query_id: 9,
            key: ChordKey(1),
            origin: d.clone(),
            hops: 3,
        };
        assert_eq!(TChordMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        let msg = TChordMsg::LookupReply {
            query_id: 9,
            owner: NodeId(3),
            owner_key: ChordKey(1),
            hops: 4,
        };
        assert_eq!(TChordMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        let msg = TChordMsg::Exchange { descriptors: vec![d], respond: true };
        assert_eq!(TChordMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        assert!(TChordMsg::from_wire(&[7]).is_err());
    }

    #[test]
    fn config_defaults() {
        let c = TChordConfig::default();
        assert_eq!(c.cycle.as_secs(), 30);
        assert!(c.view_cap >= c.exchange_len);
    }
}
