//! A generic T-Man view (Jelasity et al. \[12\]): gossip-based overlay
//! topology construction driven by a ranking function.
//!
//! T-Man maintains, per node, a bounded view of peer descriptors ordered
//! by a problem-specific *ranking*. Each cycle a node exchanges its best
//! descriptors with a well-ranked partner and keeps the best of the
//! union; with an appropriate ranking the views converge in a few cycles
//! to the target topology (a ring for T-Chord, a sorted list for GosSkip,
//! and so on).
//!
//! The ranking is supplied per call: it usually depends on the local
//! node's own position (e.g. ring distance from the local Chord key).

use whisper_net::NodeId;

/// A peer descriptor usable in a T-Man view.
pub trait Descriptor: Clone {
    /// The node this descriptor names (views are deduplicated by node).
    fn node(&self) -> NodeId;
}

/// A bounded, ranking-ordered view of descriptors.
#[derive(Clone, Debug)]
pub struct TManView<D: Descriptor> {
    entries: Vec<D>,
    cap: usize,
}

impl<D: Descriptor> TManView<D> {
    /// Creates an empty view bounded to `cap` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "T-Man view capacity must be positive");
        TManView { entries: Vec::new(), cap }
    }

    /// The current descriptors, best-ranked first (after the last merge).
    pub fn entries(&self) -> &[D] {
        &self.entries
    }

    /// Drops every descriptor (crash-restart: the view is a volatile
    /// cache the gossip cycle regrows).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of descriptors held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a descriptor for `node` is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|d| d.node() == node)
    }

    /// Removes the descriptor for `node` (e.g. it was detected dead).
    pub fn remove(&mut self, node: NodeId) {
        self.entries.retain(|d| d.node() != node);
    }

    /// Merges `incoming` descriptors, deduplicates by node (an incoming
    /// descriptor replaces a held one for the same node), ranks with
    /// `rank` (smaller is better) and truncates to capacity.
    ///
    /// `me` is always excluded.
    pub fn merge(&mut self, incoming: impl IntoIterator<Item = D>, me: NodeId, rank: impl Fn(&D) -> u64) {
        for d in incoming {
            if d.node() == me {
                continue;
            }
            match self.entries.iter_mut().find(|e| e.node() == d.node()) {
                Some(existing) => *existing = d,
                None => self.entries.push(d),
            }
        }
        self.entries
            .sort_by_key(|d| (rank(d), d.node()));
        self.entries.truncate(self.cap);
    }

    /// The best `len` descriptors to ship to a partner (T-Man ships its
    /// best candidates so the partner's view improves fastest).
    pub fn buffer(&self, len: usize) -> Vec<D> {
        self.entries.iter().take(len).cloned().collect()
    }

    /// The best-ranked descriptor.
    pub fn best(&self) -> Option<&D> {
        self.entries.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Item {
        node: NodeId,
        value: u64,
    }

    impl Descriptor for Item {
        fn node(&self) -> NodeId {
            self.node
        }
    }

    fn item(node: u64, value: u64) -> Item {
        Item { node: NodeId(node), value }
    }

    #[test]
    fn merge_ranks_and_truncates() {
        let mut v = TManView::new(3);
        v.merge(
            vec![item(1, 50), item(2, 10), item(3, 30), item(4, 20)],
            NodeId(0),
            |d| d.value,
        );
        let nodes: Vec<u64> = v.entries().iter().map(|d| d.node.0).collect();
        assert_eq!(nodes, vec![2, 4, 3], "ranked ascending, capped at 3");
    }

    #[test]
    fn merge_replaces_per_node() {
        let mut v = TManView::new(4);
        v.merge(vec![item(1, 50)], NodeId(0), |d| d.value);
        v.merge(vec![item(1, 5)], NodeId(0), |d| d.value);
        assert_eq!(v.len(), 1);
        assert_eq!(v.best().unwrap().value, 5);
    }

    #[test]
    fn self_excluded() {
        let mut v = TManView::new(4);
        v.merge(vec![item(7, 1)], NodeId(7), |d| d.value);
        assert!(v.is_empty());
    }

    #[test]
    fn buffer_ships_best() {
        let mut v = TManView::new(10);
        v.merge((0..8).map(|i| item(i, 100 - i)), NodeId(99), |d| d.value);
        let buf = v.buffer(2);
        assert_eq!(buf.len(), 2);
        assert!(buf[0].value <= buf[1].value);
    }

    #[test]
    fn remove_and_contains() {
        let mut v = TManView::new(4);
        v.merge(vec![item(1, 1), item(2, 2)], NodeId(0), |d| d.value);
        assert!(v.contains(NodeId(1)));
        v.remove(NodeId(1));
        assert!(!v.contains(NodeId(1)));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn converges_to_target_topology() {
        // Simulate T-Man convergence to a sorted line: 20 nodes with
        // random values; ranking = |value - mine|. After a few rounds of
        // all-pairs gossip each node's two best entries are its true
        // line neighbours.
        let values: Vec<u64> = vec![
            55, 3, 78, 12, 91, 44, 67, 23, 88, 5, 31, 72, 19, 60, 97, 8, 40, 83, 27, 50,
        ];
        let n = values.len();
        let mut views: Vec<TManView<Item>> = (0..n).map(|_| TManView::new(4)).collect();
        // Bootstrap: everyone knows node 0.
        for i in 1..n {
            views[i].merge(vec![item(0, values[0])], NodeId(i as u64), |d| {
                d.value.abs_diff(values[i])
            });
            views[0].merge(vec![item(i as u64, values[i])], NodeId(0), |d| {
                d.value.abs_diff(values[0])
            });
        }
        for round in 0..20 {
            for i in 0..n {
                // Alternate ranked and random partners, as T-Man does to
                // avoid local optima.
                let partner = if round % 2 == 0 {
                    views[i].best().map(|d| d.node().0 as usize)
                } else {
                    Some((i + round + 3) % n)
                };
                let Some(partner) = partner.filter(|p| *p != i) else {
                    continue;
                };
                let mut mine = views[i].buffer(4);
                mine.push(item(i as u64, values[i]));
                let mut theirs = views[partner].buffer(4);
                theirs.push(item(partner as u64, values[partner]));
                views[partner].merge(mine, NodeId(partner as u64), |d| {
                    d.value.abs_diff(values[partner])
                });
                views[i].merge(theirs, NodeId(i as u64), |d| d.value.abs_diff(values[i]));
            }
        }
        // Check: each node's best entry is its true nearest neighbour.
        let mut correct = 0;
        for i in 0..n {
            let true_nearest = (0..n)
                .filter(|j| *j != i)
                .min_by_key(|j| values[*j].abs_diff(values[i]))
                .unwrap();
            if views[i].best().map(|d| d.node().0) == Some(true_nearest as u64) {
                correct += 1;
            }
        }
        assert!(correct >= n - 2, "{correct}/{n} nodes found their neighbour");
    }
}
