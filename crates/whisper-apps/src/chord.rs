//! Chord ring arithmetic, neighbour selection and greedy routing
//! (Stoica et al. \[24\]), used by the T-Chord construction of §V-G.
//!
//! Keys live on a 64-bit identifier ring. This module is pure logic: the
//! gossip-based construction lives in [`crate::tchord`], and an *ideal*
//! ring ([`IdealRing`]) provides the ground truth that tests and the
//! Fig. 9 harness compare against.

use whisper_crypto::sha256::Sha256;
use whisper_net::NodeId;

/// Number of finger-table entries (one per bit of the key space).
pub const FINGER_BITS: usize = 64;

/// A position on the Chord ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChordKey(pub u64);

impl std::fmt::Debug for ChordKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

impl ChordKey {
    /// The canonical key of a node: a hash of its identifier.
    pub fn of_node(node: NodeId) -> ChordKey {
        let digest = Sha256::digest(&node.to_bytes());
        ChordKey(u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")))
    }

    /// The canonical key of an arbitrary data item.
    pub fn of_data(data: &[u8]) -> ChordKey {
        let digest = Sha256::digest(data);
        ChordKey(u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")))
    }

    /// Clockwise distance from `self` to `other` (0 for equal keys).
    pub fn cw_distance(self, other: ChordKey) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the clockwise-open interval `(from, to]`.
    pub fn in_interval_oc(self, from: ChordKey, to: ChordKey) -> bool {
        if from == to {
            return true; // full circle
        }
        from.cw_distance(self) != 0 && from.cw_distance(self) <= from.cw_distance(to)
    }

    /// The finger start `self + 2^i`.
    pub fn finger_start(self, i: usize) -> ChordKey {
        debug_assert!(i < FINGER_BITS);
        ChordKey(self.0.wrapping_add(1u64 << i))
    }
}

/// A node's Chord neighbour set, derived from an arbitrary candidate set
/// (the output of the T-Chord gossip, or of an ideal global view).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RingNeighbors {
    /// Immediate successors, closest first.
    pub successors: Vec<(ChordKey, NodeId)>,
    /// Immediate predecessor.
    pub predecessor: Option<(ChordKey, NodeId)>,
    /// Finger table: for each populated level, the first node clockwise
    /// of `me + 2^i`. Deduplicated and sorted by level.
    pub fingers: Vec<(ChordKey, NodeId)>,
}

impl RingNeighbors {
    /// Selects successors, predecessor and fingers for `me` from
    /// `candidates` (the T-Man ranking step of T-Chord).
    pub fn select(
        me: ChordKey,
        candidates: &[(ChordKey, NodeId)],
        successor_count: usize,
    ) -> RingNeighbors {
        let mut others: Vec<(ChordKey, NodeId)> = candidates
            .iter()
            .copied()
            .filter(|(k, _)| *k != me)
            .collect();
        others.sort_unstable();
        others.dedup();
        if others.is_empty() {
            return RingNeighbors::default();
        }
        // Successors: smallest clockwise distance from me.
        let mut by_cw = others.clone();
        by_cw.sort_by_key(|(k, _)| me.cw_distance(*k));
        let successors: Vec<(ChordKey, NodeId)> =
            by_cw.iter().copied().take(successor_count).collect();
        // Predecessor: largest clockwise distance (= closest ccw).
        let predecessor = by_cw.last().copied();
        // Fingers: first node at or after each finger start.
        let mut fingers: Vec<(ChordKey, NodeId)> = Vec::new();
        for i in 0..FINGER_BITS {
            let start = me.finger_start(i);
            let best = others
                .iter()
                .copied()
                .min_by_key(|(k, _)| start.cw_distance(*k));
            if let Some(f) = best {
                if fingers.last() != Some(&f) {
                    fingers.push(f);
                }
            }
        }
        fingers.dedup();
        RingNeighbors { successors, predecessor, fingers }
    }

    /// All distinct neighbours (successors + predecessor + fingers).
    pub fn all(&self) -> Vec<(ChordKey, NodeId)> {
        let mut out = self.successors.clone();
        out.extend(self.predecessor);
        out.extend(self.fingers.iter().copied());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `me` owns `key` — i.e. `key ∈ (predecessor, me]`.
    pub fn owns(&self, me: ChordKey, key: ChordKey) -> bool {
        match self.predecessor {
            Some((pred, _)) => key.in_interval_oc(pred, me),
            None => true, // alone on the ring
        }
    }

    /// Greedy routing step: the closest preceding neighbour of `key` —
    /// the known node inside `(me, key]` farthest clockwise from `me`.
    /// When no neighbour lies in that arc the first successor is used
    /// (it then owns the key, or knows better than we do).
    pub fn next_hop(&self, me: ChordKey, key: ChordKey) -> Option<(ChordKey, NodeId)> {
        let to_key = me.cw_distance(key);
        self.all()
            .into_iter()
            .filter(|(k, _)| {
                let d = me.cw_distance(*k);
                d != 0 && d <= to_key
            })
            .max_by_key(|(k, _)| me.cw_distance(*k))
            .or_else(|| self.successors.first().copied())
    }
}

/// The perfect Chord ring over a known member set: ground truth for
/// convergence tests and the ideal-routing baseline of Fig. 9.
#[derive(Clone, Debug)]
pub struct IdealRing {
    members: Vec<(ChordKey, NodeId)>,
}

impl IdealRing {
    /// Builds the ring for `nodes`.
    pub fn new(nodes: &[NodeId]) -> IdealRing {
        let mut members: Vec<(ChordKey, NodeId)> =
            nodes.iter().map(|n| (ChordKey::of_node(*n), *n)).collect();
        members.sort_unstable();
        IdealRing { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member owning `key` (its successor on the ring).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn owner(&self, key: ChordKey) -> (ChordKey, NodeId) {
        assert!(!self.members.is_empty(), "owner() on empty ring");
        match self.members.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.members[i],
            Err(i) => self.members[i % self.members.len()],
        }
    }

    /// The true successor of `node`.
    pub fn successor_of(&self, node: NodeId) -> Option<(ChordKey, NodeId)> {
        let key = ChordKey::of_node(node);
        let pos = self.members.iter().position(|(_, n)| *n == node)?;
        let _ = key;
        Some(self.members[(pos + 1) % self.members.len()])
    }

    /// The true predecessor of `node`.
    pub fn predecessor_of(&self, node: NodeId) -> Option<(ChordKey, NodeId)> {
        let pos = self.members.iter().position(|(_, n)| *n == node)?;
        Some(self.members[(pos + self.members.len() - 1) % self.members.len()])
    }

    /// Members in ring order.
    pub fn members(&self) -> &[(ChordKey, NodeId)] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn keys_are_stable_and_spread() {
        let a = ChordKey::of_node(NodeId(1));
        assert_eq!(a, ChordKey::of_node(NodeId(1)));
        assert_ne!(a, ChordKey::of_node(NodeId(2)));
        assert_ne!(ChordKey::of_data(b"x"), ChordKey::of_data(b"y"));
    }

    #[test]
    fn interval_logic() {
        let a = ChordKey(10);
        let b = ChordKey(20);
        assert!(ChordKey(15).in_interval_oc(a, b));
        assert!(ChordKey(20).in_interval_oc(a, b));
        assert!(!ChordKey(10).in_interval_oc(a, b));
        assert!(!ChordKey(25).in_interval_oc(a, b));
        // Wrapping interval.
        let hi = ChordKey(u64::MAX - 5);
        let lo = ChordKey(5);
        assert!(ChordKey(u64::MAX).in_interval_oc(hi, lo));
        assert!(ChordKey(3).in_interval_oc(hi, lo));
        assert!(!ChordKey(100).in_interval_oc(hi, lo));
        // Degenerate full circle.
        assert!(ChordKey(42).in_interval_oc(a, a));
    }

    #[test]
    fn cw_distance_wraps() {
        assert_eq!(ChordKey(10).cw_distance(ChordKey(15)), 5);
        assert_eq!(ChordKey(15).cw_distance(ChordKey(10)), u64::MAX - 4);
        assert_eq!(ChordKey(7).cw_distance(ChordKey(7)), 0);
    }

    #[test]
    fn neighbor_selection_matches_ideal_ring() {
        let ns = nodes(50);
        let ring = IdealRing::new(&ns);
        let candidates: Vec<(ChordKey, NodeId)> = ring.members().to_vec();
        for &node in &ns {
            let me = ChordKey::of_node(node);
            let sel = RingNeighbors::select(me, &candidates, 3);
            assert_eq!(
                sel.successors[0],
                ring.successor_of(node).unwrap(),
                "successor of {node}"
            );
            assert_eq!(
                sel.predecessor,
                ring.predecessor_of(node),
                "predecessor of {node}"
            );
        }
    }

    #[test]
    fn ownership_partitioning_is_exact() {
        let ns = nodes(20);
        let ring = IdealRing::new(&ns);
        let candidates: Vec<(ChordKey, NodeId)> = ring.members().to_vec();
        for probe in 0..500u64 {
            let key = ChordKey::of_data(&probe.to_be_bytes());
            let (_, true_owner) = ring.owner(key);
            // Exactly one node claims ownership.
            let claimants: Vec<NodeId> = ns
                .iter()
                .copied()
                .filter(|n| {
                    let me = ChordKey::of_node(*n);
                    RingNeighbors::select(me, &candidates, 3).owns(me, key)
                })
                .collect();
            assert_eq!(claimants, vec![true_owner], "key {key:?}");
        }
    }

    #[test]
    fn greedy_routing_reaches_owner_in_log_hops() {
        let ns = nodes(128);
        let ring = IdealRing::new(&ns);
        let candidates: Vec<(ChordKey, NodeId)> = ring.members().to_vec();
        // Precompute everyone's neighbours from the ideal candidate set.
        let neighbours: std::collections::HashMap<NodeId, RingNeighbors> = ns
            .iter()
            .map(|n| (*n, RingNeighbors::select(ChordKey::of_node(*n), &candidates, 3)))
            .collect();
        for probe in 0..100u64 {
            let key = ChordKey::of_data(&probe.to_be_bytes());
            let (_, owner) = ring.owner(key);
            let mut at = ns[(probe % 128) as usize];
            let mut hops = 0;
            loop {
                let me = ChordKey::of_node(at);
                let nb = &neighbours[&at];
                if nb.owns(me, key) {
                    break;
                }
                let (_, next) = nb.next_hop(me, key).expect("route exists");
                assert_ne!(next, at, "routing made no progress");
                at = next;
                hops += 1;
                assert!(hops <= 20, "too many hops for key {key:?}");
            }
            assert_eq!(at, owner, "key {key:?} routed to wrong owner");
            assert!(hops <= 10, "expected O(log 128) hops, got {hops}");
        }
    }

    #[test]
    fn ideal_ring_owner_wraps() {
        let ring = IdealRing::new(&nodes(5));
        // A key beyond the largest member key wraps to the smallest.
        let largest = ring.members().last().unwrap().0;
        let probe = ChordKey(largest.0.wrapping_add(1));
        assert_eq!(ring.owner(probe), ring.members()[0]);
    }

    #[test]
    fn empty_candidates_yield_default() {
        let sel = RingNeighbors::select(ChordKey(1), &[], 3);
        assert!(sel.successors.is_empty());
        assert!(sel.owns(ChordKey(1), ChordKey(99)), "alone: owns everything");
        assert_eq!(sel.next_hop(ChordKey(1), ChordKey(99)), None);
    }

    #[test]
    fn single_member_ring() {
        let ring = IdealRing::new(&[NodeId(7)]);
        let key = ChordKey::of_data(b"anything");
        assert_eq!(ring.owner(key).1, NodeId(7));
        assert_eq!(ring.successor_of(NodeId(7)).unwrap().1, NodeId(7));
    }
}
