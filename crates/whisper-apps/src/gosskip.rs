//! GosSkip (Guerraoui et al. \[13\]): a gossip-built, skip-list-like sorted
//! overlay — one of the overlay construction protocols the paper lists as
//! PPSS applications. Unlike Chord's hashed ring, GosSkip keeps
//! *application order*, so it answers range queries: "all members with
//! keys in `[a, b]`".
//!
//! Simplified construction, faithful in structure:
//!
//! * every member owns an application key (here: any `u64`);
//! * every member deterministically has a *level* `ℓ` with probability
//!   `2^-ℓ` (derived from a hash of its identifier, as in skip graphs);
//! * T-Man-style gossip converges each member's neighbour table towards
//!   its nearest left/right neighbours **per level**;
//! * searches descend: long hops at high levels, short hops at level 0;
//! * range queries walk the level-0 list.
//!
//! All traffic runs inside a private group over WCL routes.

use crate::tman::{Descriptor, TManView};
use std::collections::HashMap;
use whisper_core::{GroupApp, GroupId, PrivateEntry, WhisperApi};
use whisper_crypto::sha256::Sha256;
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration, SimTime};

/// The deterministic skip level of a node: number of trailing zero bits
/// of a hash of its id, capped. Level ℓ occurs with probability 2^-ℓ.
pub fn level_of(node: NodeId) -> u8 {
    let digest = Sha256::digest(&node.to_bytes());
    let v = u64::from_be_bytes(digest[8..16].try_into().expect("8 bytes"));
    (v.trailing_zeros() as u8).min(15)
}

/// A GosSkip descriptor: application key, skip level, contact entry.
#[derive(Clone, Debug, PartialEq)]
pub struct SkipDescriptor {
    /// The member's application key (sort order).
    pub key: u64,
    /// The member's skip level.
    pub level: u8,
    /// Contact information.
    pub entry: PrivateEntry,
}

impl Descriptor for SkipDescriptor {
    fn node(&self) -> NodeId {
        self.entry.node
    }
}

impl WireEncode for SkipDescriptor {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.key);
        w.put_u8(self.level);
        w.put(&self.entry);
    }

    fn encoded_len(&self) -> usize {
        8 + 1 + self.entry.encoded_len()
    }
}

impl WireDecode for SkipDescriptor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SkipDescriptor { key: r.take_u64()?, level: r.take_u8()?, entry: r.take()? })
    }
}

#[derive(Clone, Debug, PartialEq)]
enum SkipMsg {
    Exchange { descriptors: Vec<SkipDescriptor>, respond: bool },
    Search { query_id: u64, target: u64, origin: SkipDescriptor, hops: u8 },
    SearchReply { query_id: u64, owner: NodeId, owner_key: u64, hops: u8 },
    Range { query_id: u64, lo: u64, hi: u64, origin: SkipDescriptor, acc: Vec<u64>, hops: u8 },
    RangeReply { query_id: u64, keys: Vec<u64> },
}

impl WireEncode for SkipMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SkipMsg::Exchange { descriptors, respond } => {
                w.put_u8(1);
                w.put_seq(descriptors);
                w.put(respond);
            }
            SkipMsg::Search { query_id, target, origin, hops } => {
                w.put_u8(2);
                w.put_u64(*query_id);
                w.put_u64(*target);
                w.put(origin);
                w.put_u8(*hops);
            }
            SkipMsg::SearchReply { query_id, owner, owner_key, hops } => {
                w.put_u8(3);
                w.put_u64(*query_id);
                w.put(owner);
                w.put_u64(*owner_key);
                w.put_u8(*hops);
            }
            SkipMsg::Range { query_id, lo, hi, origin, acc, hops } => {
                w.put_u8(4);
                w.put_u64(*query_id);
                w.put_u64(*lo);
                w.put_u64(*hi);
                w.put(origin);
                w.put_seq(acc);
                w.put_u8(*hops);
            }
            SkipMsg::RangeReply { query_id, keys } => {
                w.put_u8(5);
                w.put_u64(*query_id);
                w.put_seq(keys);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        use whisper_net::wire::seq_len;
        1 + match self {
            SkipMsg::Exchange { descriptors, .. } => seq_len(descriptors) + 1,
            SkipMsg::Search { origin, .. } => 8 + 8 + origin.encoded_len() + 1,
            SkipMsg::SearchReply { .. } => 8 + 8 + 8 + 1,
            SkipMsg::Range { origin, acc, .. } => 8 + 8 + 8 + origin.encoded_len() + seq_len(acc) + 1,
            SkipMsg::RangeReply { keys, .. } => 8 + seq_len(keys),
        }
    }
}

impl WireDecode for SkipMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => SkipMsg::Exchange { descriptors: r.take_seq()?, respond: r.take()? },
            2 => SkipMsg::Search {
                query_id: r.take_u64()?,
                target: r.take_u64()?,
                origin: r.take()?,
                hops: r.take_u8()?,
            },
            3 => SkipMsg::SearchReply {
                query_id: r.take_u64()?,
                owner: r.take()?,
                owner_key: r.take_u64()?,
                hops: r.take_u8()?,
            },
            4 => SkipMsg::Range {
                query_id: r.take_u64()?,
                lo: r.take_u64()?,
                hi: r.take_u64()?,
                origin: r.take()?,
                acc: r.take_seq()?,
                hops: r.take_u8()?,
            },
            5 => SkipMsg::RangeReply { query_id: r.take_u64()?, keys: r.take_seq()? },
            _ => return Err(WireError::new("unknown GosSkip tag")),
        })
    }
}

/// GosSkip configuration.
#[derive(Clone, Debug)]
pub struct GosSkipConfig {
    /// Gossip period.
    pub cycle: SimDuration,
    /// Ranked-view capacity.
    pub view_cap: usize,
    /// Descriptors shipped per exchange.
    pub exchange_len: usize,
    /// Search/range hop budget.
    pub ttl: u8,
}

impl Default for GosSkipConfig {
    fn default() -> Self {
        GosSkipConfig {
            cycle: SimDuration::from_secs(30),
            view_cap: 20,
            exchange_len: 8,
            ttl: 48,
        }
    }
}

/// A completed point search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchResult {
    /// The query.
    pub query_id: u64,
    /// The target key.
    pub target: u64,
    /// The answering owner.
    pub owner: NodeId,
    /// The owner's key.
    pub owner_key: u64,
    /// Hops taken.
    pub hops: u8,
    /// End-to-end delay.
    pub delay: SimDuration,
}

/// A completed range query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeResult {
    /// The query.
    pub query_id: u64,
    /// Keys found in `[lo, hi]`.
    pub keys: Vec<u64>,
    /// End-to-end delay.
    pub delay: SimDuration,
}

const SKIP_TIMER: u64 = 4;

/// The GosSkip application.
#[derive(Debug)]
pub struct GosSkipApp {
    group: GroupId,
    cfg: GosSkipConfig,
    my_key: u64,
    my_level: Option<u8>,
    view: TManView<SkipDescriptor>,
    directory: HashMap<NodeId, SkipDescriptor>,
    pending_search: HashMap<u64, (u64, SimTime)>,
    pending_range: HashMap<u64, SimTime>,
    searches: Vec<SearchResult>,
    ranges: Vec<RangeResult>,
    next_query: u64,
    cycles: u64,
}

impl GosSkipApp {
    /// Creates the app for `group`; `key` is this member's application
    /// key (the sort dimension).
    pub fn new(group: GroupId, key: u64, cfg: GosSkipConfig) -> Self {
        let cap = cfg.view_cap;
        GosSkipApp {
            group,
            cfg,
            my_key: key,
            my_level: None,
            view: TManView::new(cap),
            directory: HashMap::new(),
            pending_search: HashMap::new(),
            pending_range: HashMap::new(),
            searches: Vec::new(),
            ranges: Vec::new(),
            next_query: 1,
            cycles: 0,
        }
    }

    /// This member's application key.
    pub fn key(&self) -> u64 {
        self.my_key
    }

    /// Completed point searches.
    pub fn searches(&self) -> &[SearchResult] {
        &self.searches
    }

    /// Completed range queries.
    pub fn ranges(&self) -> &[RangeResult] {
        &self.ranges
    }

    /// The current left/right neighbours at level 0, if known.
    pub fn list_neighbors(&self) -> (Option<&SkipDescriptor>, Option<&SkipDescriptor>) {
        let left = self
            .directory
            .values()
            .filter(|d| d.key < self.my_key)
            .max_by_key(|d| (d.key, d.node()));
        let right = self
            .directory
            .values()
            .filter(|d| d.key > self.my_key)
            .min_by_key(|d| (d.key, d.node()));
        (left, right)
    }

    fn my_descriptor(&mut self, api: &WhisperApi<'_>) -> SkipDescriptor {
        let level = *self.my_level.get_or_insert_with(|| level_of(api.id()));
        SkipDescriptor { key: self.my_key, level, entry: api.my_entry() }
    }

    fn rank(me: u64, d: &SkipDescriptor) -> u64 {
        // Nearest-in-key-space, with a bonus for high-level nodes so the
        // view keeps the long links a skip structure needs.
        let dist = me.abs_diff(d.key);
        dist >> d.level.min(8)
    }

    fn absorb(&mut self, api: &WhisperApi<'_>, descriptors: Vec<SkipDescriptor>) {
        let my_id = api.id();
        let me = self.my_key;
        for d in &descriptors {
            if d.node() != my_id {
                self.directory.insert(d.node(), d.clone());
            }
        }
        self.view.merge(descriptors, my_id, |d| Self::rank(me, d));
    }

    fn seed_from_ppss(&mut self, api: &WhisperApi<'_>) {
        // PPSS entries carry no application key; GosSkip only learns keys
        // from its own exchanges. The private view still provides gossip
        // partners for bootstrap via a synthetic descriptor (key unknown
        // yet: derive the same way members derive their default keys).
        let entries: Vec<PrivateEntry> = api.private_view(self.group).to_vec();
        for entry in entries {
            if !self.directory.contains_key(&entry.node) {
                // Descriptor with an *estimated* key: corrected as soon as
                // the member's own exchanges arrive.
                let d = SkipDescriptor {
                    key: default_key_of(entry.node),
                    level: level_of(entry.node),
                    entry,
                };
                self.directory.entry(d.node()).or_insert(d);
            }
        }
    }

    /// Greedy skip routing: the known node closest to `target` without
    /// regard to direction, strictly closer than us.
    fn next_hop(&self, target: u64) -> Option<&SkipDescriptor> {
        let my_dist = self.my_key.abs_diff(target);
        self.directory
            .values()
            .filter(|d| d.key.abs_diff(target) < my_dist)
            .min_by_key(|d| (d.key.abs_diff(target), d.node()))
    }

    /// Whether this member owns `target`: no known member is closer.
    fn owns(&self, target: u64) -> bool {
        self.next_hop(target).is_none()
    }

    /// Issues a point search for `target`.
    pub fn search(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        target: u64,
    ) -> Option<u64> {
        let query_id = self.next_query;
        self.next_query += 1;
        if self.owns(target) {
            self.searches.push(SearchResult {
                query_id,
                target,
                owner: api.id(),
                owner_key: self.my_key,
                hops: 0,
                delay: SimDuration::ZERO,
            });
            return Some(query_id);
        }
        let origin = self.my_descriptor(api);
        let msg = SkipMsg::Search { query_id, target, origin, hops: 0 };
        self.pending_search.insert(query_id, (target, ctx.now()));
        if !self.forward(ctx, api, target, &msg) {
            self.pending_search.remove(&query_id);
            return None;
        }
        Some(query_id)
    }

    /// Issues a range query for `[lo, hi]`: routes to the owner of `lo`,
    /// then walks right through level-0 successors accumulating keys.
    pub fn range(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        lo: u64,
        hi: u64,
    ) -> Option<u64> {
        assert!(lo <= hi, "empty range");
        let query_id = self.next_query;
        self.next_query += 1;
        let origin = self.my_descriptor(api);
        self.pending_range.insert(query_id, ctx.now());
        let msg = SkipMsg::Range { query_id, lo, hi, origin, acc: vec![], hops: 0 };
        // Deliver locally if we own `lo`.
        if self.owns(lo) {
            self.handle_range(ctx, api, msg);
            return Some(query_id);
        }
        if !self.forward(ctx, api, lo, &msg) {
            self.pending_range.remove(&query_id);
            return None;
        }
        Some(query_id)
    }

    fn forward(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        target: u64,
        msg: &SkipMsg,
    ) -> bool {
        let Some(next) = self.next_hop(target).cloned() else {
            ctx.metrics().count("gosskip.no_route", 1);
            return false;
        };
        api.send_private_to_entry(ctx, self.group, &next.entry, msg.to_wire(), false)
    }

    fn handle_range(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, msg: SkipMsg) {
        let SkipMsg::Range { query_id, lo, hi, origin, mut acc, hops } = msg else {
            return;
        };
        if (lo..=hi).contains(&self.my_key) {
            acc.push(self.my_key);
        }
        // Continue right along the sorted list while successors can still
        // fall inside the range.
        let right = self
            .directory
            .values()
            .filter(|d| d.key > self.my_key)
            .min_by_key(|d| (d.key, d.node()))
            .cloned();
        let continue_right = right.as_ref().is_some_and(|r| r.key <= hi);
        if continue_right && hops < self.cfg.ttl {
            let next = right.expect("checked");
            let fwd = SkipMsg::Range { query_id, lo, hi, origin, acc, hops: hops + 1 };
            api.send_private_to_entry(ctx, self.group, &next.entry, fwd.to_wire(), false);
        } else {
            // Done: report back to the origin over a single WCL path.
            let reply = SkipMsg::RangeReply { query_id, keys: acc };
            if origin.node() == api.id() {
                // Local origin: record directly.
                if let SkipMsg::RangeReply { query_id, keys } = reply {
                    if let Some(start) = self.pending_range.remove(&query_id) {
                        self.ranges.push(RangeResult {
                            query_id,
                            keys,
                            delay: ctx.now().since(start),
                        });
                    }
                }
            } else {
                api.send_private_to_entry(ctx, self.group, &origin.entry, reply.to_wire(), false);
            }
        }
    }
}

/// The default application key of a node when none is known yet: a hash
/// of its identifier (members using explicit keys override it through
/// their exchanges).
pub fn default_key_of(node: NodeId) -> u64 {
    let digest = Sha256::digest(&node.to_bytes());
    u64::from_be_bytes(digest[16..24].try_into().expect("8 bytes"))
}

impl GroupApp for GosSkipApp {
    fn on_joined(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            self.my_level = Some(level_of(api.id()));
            api.set_app_timer(ctx, self.cfg.cycle, SKIP_TIMER);
        }
    }

    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>, _api: &mut WhisperApi<'_>) {
        // Outstanding searches can never resolve (their reply path died
        // with the process); the skip-graph view and directory are
        // volatile caches regrown by the T-Man cycle. Results already
        // surfaced stay, and the level is re-derived from the node id.
        self.pending_search.clear();
        self.pending_range.clear();
        self.view.clear();
        self.directory.clear();
        self.my_level = None;
    }

    fn on_view_updated(&mut self, _ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            self.seed_from_ppss(api);
        }
    }

    fn on_member_unreachable(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _api: &mut WhisperApi<'_>,
        group: GroupId,
        node: NodeId,
    ) {
        if group != self.group {
            return;
        }
        self.directory.remove(&node);
        self.view.remove(node);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, token: u64) {
        if token != SKIP_TIMER {
            return;
        }
        api.set_app_timer(ctx, self.cfg.cycle, SKIP_TIMER);
        self.cycles += 1;
        self.seed_from_ppss(api);
        // Alternate best-ranked and random partners, like T-Chord.
        let partner: Option<SkipDescriptor> = if self.cycles.is_multiple_of(2) {
            self.view.best().cloned()
        } else {
            let view = api.private_view(self.group);
            if view.is_empty() {
                None
            } else {
                let pick = whisper_rand::Rng::gen_range(ctx.rng(), 0..view.len());
                let entry = view[pick].clone();
                Some(SkipDescriptor {
                    key: default_key_of(entry.node),
                    level: level_of(entry.node),
                    entry,
                })
            }
        };
        let Some(partner) = partner else { return };
        let mut descriptors = self.view.buffer(self.cfg.exchange_len);
        descriptors.insert(0, self.my_descriptor(api));
        let msg = SkipMsg::Exchange { descriptors, respond: true };
        ctx.metrics().count("gosskip.exchanges", 1);
        api.send_private_to_entry(ctx, self.group, &partner.entry, msg.to_wire(), false);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        _from: NodeId,
        data: &[u8],
        _reply_entry: Option<PrivateEntry>,
    ) {
        if group != self.group {
            return;
        }
        let Ok(msg) = SkipMsg::from_wire(data) else {
            return;
        };
        match msg {
            SkipMsg::Exchange { descriptors, respond } => {
                let reply_to = descriptors.first().cloned();
                self.absorb(api, descriptors);
                if respond {
                    if let Some(partner) = reply_to {
                        let mut mine = self.view.buffer(self.cfg.exchange_len);
                        mine.insert(0, self.my_descriptor(api));
                        let resp = SkipMsg::Exchange { descriptors: mine, respond: false };
                        api.send_private_to_entry(
                            ctx,
                            self.group,
                            &partner.entry,
                            resp.to_wire(),
                            false,
                        );
                    }
                }
            }
            SkipMsg::Search { query_id, target, origin, hops } => {
                self.directory.insert(origin.node(), origin.clone());
                if self.owns(target) {
                    let reply = SkipMsg::SearchReply {
                        query_id,
                        owner: api.id(),
                        owner_key: self.my_key,
                        hops: hops + 1,
                    };
                    ctx.metrics().count("gosskip.searches_answered", 1);
                    api.send_private_to_entry(
                        ctx,
                        self.group,
                        &origin.entry,
                        reply.to_wire(),
                        false,
                    );
                } else if hops < self.cfg.ttl {
                    let fwd = SkipMsg::Search { query_id, target, origin, hops: hops + 1 };
                    self.forward(ctx, api, target, &fwd);
                }
            }
            SkipMsg::SearchReply { query_id, owner, owner_key, hops } => {
                if let Some((target, start)) = self.pending_search.remove(&query_id) {
                    self.searches.push(SearchResult {
                        query_id,
                        target,
                        owner,
                        owner_key,
                        hops,
                        delay: ctx.now().since(start),
                    });
                }
            }
            msg @ SkipMsg::Range { .. } => {
                self.handle_range(ctx, api, msg);
            }
            SkipMsg::RangeReply { query_id, keys } => {
                if let Some(start) = self.pending_range.remove(&query_id) {
                    self.ranges.push(RangeResult {
                        query_id,
                        keys,
                        delay: ctx.now().since(start),
                    });
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_follow_geometric_distribution() {
        let mut by_level = [0usize; 16];
        for i in 0..4096u64 {
            by_level[level_of(NodeId(i)) as usize] += 1;
        }
        // Roughly half the nodes at level 0, a quarter at level 1, ...
        assert!((by_level[0] as f64 / 4096.0 - 0.5).abs() < 0.05);
        assert!((by_level[1] as f64 / 4096.0 - 0.25).abs() < 0.05);
        assert!(by_level[4] < by_level[1]);
    }

    #[test]
    fn wire_round_trips() {
        use whisper_rand::SeedableRng;
        use whisper_crypto::rsa::{KeyPair, RsaKeySize};
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let d = SkipDescriptor {
            key: 42,
            level: 3,
            entry: PrivateEntry {
                node: NodeId(7),
                age: 0,
                public: true,
                key: kp.public().clone(),
                gateways: vec![],
            },
        };
        for msg in [
            SkipMsg::Exchange { descriptors: vec![d.clone()], respond: true },
            SkipMsg::Search { query_id: 1, target: 9, origin: d.clone(), hops: 2 },
            SkipMsg::SearchReply { query_id: 1, owner: NodeId(3), owner_key: 8, hops: 3 },
            SkipMsg::Range {
                query_id: 2,
                lo: 1,
                hi: 5,
                origin: d,
                acc: vec![2, 3],
                hops: 1,
            },
            SkipMsg::RangeReply { query_id: 2, keys: vec![2, 3, 4] },
        ] {
            assert_eq!(SkipMsg::from_wire(&msg.to_wire()).unwrap(), msg);
        }
        assert!(SkipMsg::from_wire(&[77]).is_err());
    }

    #[test]
    fn default_keys_are_spread() {
        let a = default_key_of(NodeId(1));
        let b = default_key_of(NodeId(2));
        assert_ne!(a, b);
        assert_eq!(a, default_key_of(NodeId(1)));
    }
}
