//! Gossip-based aggregation (Jelasity, Montresor, Babaoglu \[8\]).
//!
//! Push-pull averaging / maximum computation over a gossip overlay. The
//! paper uses max-aggregation for leader election (§IV-A); the average
//! variant also yields decentralized network size estimation (every node
//! starts at 0 except one seed at 1; the average converges to `1/n`).
//!
//! [`AggregationState`] is the pure per-node state machine (unit-testable
//! without a network); [`AggregationApp`] runs it inside a private group
//! as a [`GroupApp`].

use whisper_core::{GroupApp, GroupId, WhisperApi};
use whisper_net::sim::Ctx;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::{NodeId, SimDuration};

/// Which aggregate is being computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// Converges to the global average of initial values.
    Average,
    /// Converges to the global maximum.
    Maximum,
}

/// The per-node aggregation state.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregationState {
    kind: AggregateKind,
    value: f64,
    exchanges: u64,
}

impl AggregationState {
    /// Creates state with an initial local value.
    pub fn new(kind: AggregateKind, initial: f64) -> Self {
        AggregationState { kind, value: initial, exchanges: 0 }
    }

    /// The current estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of exchanges performed (diagnostics).
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The initiator side of a push-pull exchange: combines with the
    /// partner's value and returns what the partner must adopt.
    pub fn exchange(&mut self, partner_value: f64) -> f64 {
        self.exchanges += 1;
        match self.kind {
            AggregateKind::Average => {
                let merged = (self.value + partner_value) / 2.0;
                self.value = merged;
                merged
            }
            AggregateKind::Maximum => {
                let merged = self.value.max(partner_value);
                self.value = merged;
                merged
            }
        }
    }

    /// The responder side: answers with its pre-merge value and adopts
    /// the merged one.
    pub fn respond(&mut self, initiator_value: f64) -> f64 {
        let mine = self.value;
        self.exchange(initiator_value);
        mine
    }
}

/// Wire format of the aggregation exchange.
#[derive(Clone, Debug, PartialEq)]
enum AggMsg {
    Request { value: f64 },
    Response { value: f64 },
}

impl WireEncode for AggMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            AggMsg::Request { value } => {
                w.put_u8(1);
                w.put_u64(value.to_bits());
            }
            AggMsg::Response { value } => {
                w.put_u8(2);
                w.put_u64(value.to_bits());
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + 8
    }
}

impl WireDecode for AggMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            1 => Ok(AggMsg::Request { value: f64::from_bits(r.take_u64()?) }),
            2 => Ok(AggMsg::Response { value: f64::from_bits(r.take_u64()?) }),
            _ => Err(WireError::new("unknown aggregation tag")),
        }
    }
}

const AGG_TIMER: u64 = 1;

/// Gossip aggregation as a private-group application.
#[derive(Debug)]
pub struct AggregationApp {
    group: GroupId,
    state: AggregationState,
    cycle: SimDuration,
}

impl AggregationApp {
    /// Creates the app for `group`, starting from `initial`.
    pub fn new(group: GroupId, kind: AggregateKind, initial: f64, cycle: SimDuration) -> Self {
        AggregationApp { group, state: AggregationState::new(kind, initial), cycle }
    }

    /// The current estimate.
    pub fn estimate(&self) -> f64 {
        self.state.value()
    }

    /// Exchanges performed so far.
    pub fn exchanges(&self) -> u64 {
        self.state.exchanges()
    }
}

impl GroupApp for AggregationApp {
    // No `on_crash_restart` override: the push-pull exchange keeps no
    // in-flight bookkeeping (a lost response simply leaves this node's
    // full value in place, which is the mass-conserving failure mode),
    // so the default no-op is the correct volatile-state reset.

    fn on_joined(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, group: GroupId) {
        if group == self.group {
            api.set_app_timer(ctx, self.cycle, AGG_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, api: &mut WhisperApi<'_>, token: u64) {
        if token != AGG_TIMER {
            return;
        }
        api.set_app_timer(ctx, self.cycle, AGG_TIMER);
        // Pick a random private-view member and push our value.
        let view = api.private_view(self.group);
        if view.is_empty() {
            return;
        }
        let pick = whisper_rand::Rng::gen_range(ctx.rng(), 0..view.len());
        let partner = view[pick].node;
        let msg = AggMsg::Request { value: self.state.value() }.to_wire();
        // Ship our entry so the partner can answer even when we are not
        // in its (small) private view — the push-pull exchange must be
        // atomic or mass conservation degrades into a random walk.
        api.send_private(ctx, self.group, partner, msg, true);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        from: NodeId,
        data: &[u8],
        reply_entry: Option<whisper_core::PrivateEntry>,
    ) {
        if group != self.group {
            return;
        }
        let Ok(msg) = AggMsg::from_wire(data) else {
            return;
        };
        match msg {
            AggMsg::Request { value } => {
                // Merge ONLY if the counter-value actually leaves for the
                // initiator: a one-sided merge destroys (or mints) mass.
                let resp = AggMsg::Response { value: self.state.value() }.to_wire();
                let sent = match &reply_entry {
                    Some(entry) => {
                        api.send_private_to_entry(ctx, self.group, entry, resp, false)
                    }
                    None => api.send_private(ctx, self.group, from, resp, false),
                };
                if sent {
                    self.state.exchange(value);
                } else {
                    ctx.metrics().count("agg.exchange_aborted", 1);
                }
            }
            AggMsg::Response { value } => {
                self.state.exchange(value);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_converges_pairwise() {
        // Emulate rounds of random pairwise exchanges; variance decays.
        let mut nodes: Vec<AggregationState> = (0..16)
            .map(|i| AggregationState::new(AggregateKind::Average, i as f64))
            .collect();
        let true_mean = 7.5;
        for round in 0..30 {
            for i in 0..nodes.len() {
                let j = (i + round + 1) % nodes.len();
                if i == j {
                    continue;
                }
                let (a, b) = if i < j {
                    let (l, r) = nodes.split_at_mut(j);
                    (&mut l[i], &mut r[0])
                } else {
                    let (l, r) = nodes.split_at_mut(i);
                    (&mut r[0], &mut l[j])
                };
                let theirs = b.respond(a.value());
                a.exchange(theirs);
            }
        }
        for n in &nodes {
            assert!((n.value() - true_mean).abs() < 0.01, "value {}", n.value());
        }
    }

    #[test]
    fn average_preserves_mass() {
        let mut a = AggregationState::new(AggregateKind::Average, 10.0);
        let mut b = AggregationState::new(AggregateKind::Average, 2.0);
        let before = a.value() + b.value();
        let theirs = b.respond(a.value());
        a.exchange(theirs);
        assert_eq!(a.value() + b.value(), before, "mass conservation");
        assert_eq!(a.value(), 6.0);
        assert_eq!(b.value(), 6.0);
    }

    #[test]
    fn maximum_spreads() {
        let mut a = AggregationState::new(AggregateKind::Maximum, 1.0);
        let mut b = AggregationState::new(AggregateKind::Maximum, 9.0);
        let theirs = b.respond(a.value());
        a.exchange(theirs);
        assert_eq!(a.value(), 9.0);
        assert_eq!(b.value(), 9.0);
    }

    #[test]
    fn exchange_counting() {
        let mut a = AggregationState::new(AggregateKind::Average, 0.0);
        a.exchange(2.0);
        a.exchange(2.0);
        assert_eq!(a.exchanges(), 2);
    }

    #[test]
    fn wire_round_trip() {
        let m = AggMsg::Request { value: 1.25 };
        assert_eq!(AggMsg::from_wire(&m.to_wire()).unwrap(), m);
        let m = AggMsg::Response { value: -7.5 };
        assert_eq!(AggMsg::from_wire(&m.to_wire()).unwrap(), m);
        assert!(AggMsg::from_wire(&[9]).is_err());
    }
}
