//! End-to-end tests of applications running inside WHISPER private
//! groups: T-Chord ring convergence and confidential lookups (paper
//! §V-G), and gossip aggregation used for size estimation.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper_apps::aggregation::{AggregateKind, AggregationApp};
use whisper_apps::chord::{ChordKey, IdealRing};
use whisper_apps::tchord::{TChordApp, TChordConfig};
use whisper_core::{GroupApp, GroupId, WhisperConfig, WhisperNode};
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::{NatDistribution, NatType};
use whisper_net::sim::{Sim, SimConfig};
use whisper_net::{NodeId, SimDuration};

/// Builds `n` nodes whose app plugin is produced by `make_app`, warms up
/// the PSS, then forms one group over `member_count` nodes led by node 3.
fn build_group(
    n: usize,
    member_count: usize,
    cfg: &WhisperConfig,
    sim_cfg: SimConfig,
    make_app: impl Fn(GroupId) -> Box<dyn GroupApp>,
    warmup: u64,
) -> (Sim, GroupId, NodeId, Vec<NodeId>) {
    let group = GroupId::from_name("app-group");
    let mut keyrng = StdRng::seed_from_u64(0xAB);
    let mut sim = Sim::new(sim_cfg);
    let dist = NatDistribution::paper_default();
    let mut ids = Vec::new();
    for i in 0..n {
        let mut node = WhisperNode::with_app(
            cfg.clone(),
            KeyPair::generate(cfg.nylon.rsa, &mut keyrng),
            make_app(group),
        );
        let nat = if i < 2 { NatType::Public } else { dist.sample(sim.rng()) };
        if i >= 2 {
            node.nylon_mut().set_bootstrap(vec![NodeId(0), NodeId(1)]);
        } else {
            node.nylon_mut().set_bootstrap(vec![NodeId((i as u64 + 1) % 2)]);
        }
        ids.push(sim.add_node(Box::new(node), nat));
    }
    sim.run_for_secs(warmup);

    let leader = ids[3];
    sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
        node.create_group(ctx, "app-group");
    });
    let members: Vec<NodeId> = ids[4..4 + member_count - 1].to_vec();
    for &m in &members {
        let inv = sim
            .node::<WhisperNode>(leader)
            .unwrap()
            .invite(group, m)
            .unwrap();
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| node.join_group(ctx, inv));
    }
    let mut all_members = vec![leader];
    all_members.extend(members);
    (sim, group, leader, all_members)
}

#[test]
fn tchord_ring_converges_and_lookups_find_owners() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let tcfg = TChordConfig { cycle: SimDuration::from_secs(20), ..TChordConfig::default() };
    let (mut sim, group, _leader, members) = build_group(
        30,
        12,
        &cfg,
        SimConfig::cluster(77),
        |g| Box::new(TChordApp::new(g, TChordConfig::default())),
        250,
    );
    let _ = tcfg;
    let _ = group;
    sim.run_for_secs(900); // PPSS + T-Man convergence

    // Which members actually joined?
    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 10, "{}/12 joined", joined.len());

    // Ring convergence: most members know their true successor.
    let ring = IdealRing::new(&joined);
    let mut correct_succ = 0;
    for &m in &joined {
        let node: &WhisperNode = sim.node(m).unwrap();
        let app: &TChordApp = node.app().expect("tchord app");
        if let (Some(sel), Some(truth)) =
            (app.neighbors().successors.first(), ring.successor_of(m))
        {
            if *sel == truth {
                correct_succ += 1;
            }
        }
    }
    assert!(
        correct_succ as f64 >= joined.len() as f64 * 0.75,
        "{correct_succ}/{} correct successors",
        joined.len()
    );

    // Lookups: every member queries random keys; owners must match the
    // ideal ring computed over the *joined* membership.
    let mut issued = 0;
    for (i, &m) in joined.iter().enumerate() {
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut TChordApp = app.as_any_mut().downcast_mut().unwrap();
                for q in 0..5u64 {
                    let key = ChordKey::of_data(&(i as u64 * 100 + q).to_be_bytes());
                    if app.lookup(ctx, api, key).is_some() {
                        issued += 1;
                    }
                }
            });
        });
    }
    assert!(issued >= 40, "only {issued} lookups issued");
    sim.run_for_secs(180);

    let mut completed = 0;
    let mut correct_owner = 0;
    for &m in &joined {
        let node: &WhisperNode = sim.node(m).unwrap();
        let app: &TChordApp = node.app().unwrap();
        for result in app.completed() {
            completed += 1;
            let (_, truth) = ring.owner(result.key);
            if truth == result.owner {
                correct_owner += 1;
            }
        }
    }
    assert!(
        completed as f64 >= issued as f64 * 0.8,
        "{completed}/{issued} lookups completed"
    );
    assert!(
        correct_owner as f64 >= completed as f64 * 0.9,
        "{correct_owner}/{completed} correct owners"
    );
}

#[test]
fn aggregation_estimates_group_size() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let group_size = 10usize;
    let (mut sim, group, leader, members) = build_group(
        24,
        group_size,
        &cfg,
        SimConfig::cluster(78),
        |g| {
            Box::new(AggregationApp::new(
                g,
                AggregateKind::Average,
                0.0,
                SimDuration::from_secs(20),
            ))
        },
        250,
    );
    // Seed: the leader holds 1.0, everyone else 0 → average = 1/n.
    sim.with_node_ctx::<WhisperNode>(leader, |node, _| {
        node.with_api(|_, app| {
            let app: &mut AggregationApp = app.as_any_mut().downcast_mut().unwrap();
            *app = AggregationApp::new(
                group,
                AggregateKind::Average,
                1.0,
                SimDuration::from_secs(20),
            );
        });
    });
    for _ in 0..12 {
        sim.run_for_secs(100);
        if std::env::var("AGG_DEBUG").is_ok() {
            let vals: Vec<f64> = members
                .iter()
                .filter_map(|m| sim.node::<WhisperNode>(*m))
                .filter_map(|n| n.app::<AggregationApp>())
                .map(|a| a.estimate())
                .collect();
            let sum: f64 = vals.iter().sum();
            eprintln!("t={} sum={:.4} vals={:?}", sim.now().as_secs(), sum,
                vals.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>());
        }
    }

    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= group_size - 2);

    // Mass conservation: the sum of estimates stays 1, so the average
    // estimate over members ≈ 1/|members| and size estimates are sane.
    let estimates: Vec<f64> = joined
        .iter()
        .map(|m| {
            sim.node::<WhisperNode>(*m)
                .unwrap()
                .app::<AggregationApp>()
                .unwrap()
                .estimate()
        })
        .collect();
    let exchanged: u64 = joined
        .iter()
        .map(|m| {
            sim.node::<WhisperNode>(*m)
                .unwrap()
                .app::<AggregationApp>()
                .unwrap()
                .exchanges()
        })
        .sum();
    assert!(exchanged > 50, "only {exchanged} exchanges");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let implied_size = 1.0 / mean;
    // Exchange atomicity is not guaranteed over lossy confidential
    // routes, so mass conservation (and hence the size estimate) is
    // approximate; an order-of-magnitude estimate is the realistic
    // guarantee (Jelasity et al. discuss exactly this failure mode).
    assert!(
        implied_size >= joined.len() as f64 / 2.5 && implied_size <= joined.len() as f64 * 2.5,
        "implied size {implied_size:.1} vs actual {}",
        joined.len()
    );
    // Convergence: estimates are close to each other.
    let max = estimates.iter().cloned().fold(f64::MIN, f64::max);
    let min = estimates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min.max(1e-9) < 10.0, "estimates spread too wide: {min}..{max}");
}

#[test]
fn broadcast_reaches_all_members() {
    use whisper_apps::broadcast::{BroadcastApp, BroadcastConfig};
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let (mut sim, group, leader, members) = build_group(
        26,
        10,
        &cfg,
        SimConfig::cluster(79),
        |g| Box::new(BroadcastApp::new(g, BroadcastConfig::default())),
        250,
    );
    sim.run_for_secs(250);
    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 8, "{} joined", joined.len());

    // Three members publish two events each.
    let mut published = 0;
    for &speaker in joined.iter().take(3) {
        sim.with_node_ctx::<WhisperNode>(speaker, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut BroadcastApp = app.as_any_mut().downcast_mut().unwrap();
                app.publish(ctx, api, b"one".to_vec());
                app.publish(ctx, api, b"two".to_vec());
                published += 2;
            });
        });
    }
    sim.run_for_secs(180); // a dozen broadcast cycles

    let mut full = 0;
    for &m in &joined {
        let app: &BroadcastApp = sim.node::<WhisperNode>(m).unwrap().app().unwrap();
        if std::env::var("BCAST_DEBUG").is_ok() {
            let node = sim.node::<WhisperNode>(m).unwrap();
            let view: Vec<_> = node.ppss().group(group).unwrap().view().iter().map(|e| e.node).collect();
            eprintln!("{m}: delivered={} view={:?}", app.delivered().len(), view);
        }
        if app.delivered().len() >= published {
            full += 1;
        }
    }
    assert!(
        full >= joined.len() - 1,
        "{full}/{} members received all {published} events",
        joined.len()
    );
    let _ = leader;
}

#[test]
fn gosskip_sorted_overlay_answers_point_and_range_queries() {
    use whisper_apps::gosskip::{GosSkipApp, GosSkipConfig};
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    // Application keys: spread deterministically; node id * 1000 keeps
    // the order obvious.
    let (mut sim, group, _leader, members) = build_group(
        26,
        12,
        &cfg,
        SimConfig::cluster(80),
        |g| Box::new(GosSkipApp::new(g, 0, GosSkipConfig::default())),
        250,
    );
    // Assign real keys now that ids are known (node id × 1000).
    for &m in &members {
        sim.with_node_ctx::<WhisperNode>(m, |node, _| {
            node.with_api(|_, app| {
                let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
                *app = GosSkipApp::new(group, m.0 * 1000, GosSkipConfig::default());
            });
        });
    }
    sim.run_for_secs(700);

    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 10, "{} joined", joined.len());
    let mut keys: Vec<u64> = joined.iter().map(|m| m.0 * 1000).collect();
    keys.sort_unstable();

    // Sorted-list convergence: most members know their true right
    // neighbour.
    let mut correct = 0;
    for &m in &joined {
        let app: &GosSkipApp = sim.node::<WhisperNode>(m).unwrap().app().unwrap();
        let my_key = m.0 * 1000;
        let truth = keys.iter().copied().find(|k| *k > my_key);
        let (_, right) = app.list_neighbors();
        if right.map(|d| d.key) == truth {
            correct += 1;
        }
    }
    assert!(
        correct as f64 >= joined.len() as f64 * 0.7,
        "{correct}/{} correct right neighbours",
        joined.len()
    );

    // Point searches from several members.
    let mut issued = 0;
    for (i, &m) in joined.iter().enumerate().take(6) {
        sim.with_node_ctx::<WhisperNode>(m, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
                let target = keys[(i * 3) % keys.len()] + 1; // between keys
                if app.search(ctx, api, target).is_some() {
                    issued += 1;
                }
            });
        });
    }
    // One range query covering roughly half the key space.
    let lo = keys[1];
    let hi = keys[keys.len() / 2];
    let asker = joined[0];
    sim.with_node_ctx::<WhisperNode>(asker, |node, ctx| {
        node.with_api(|api, app| {
            let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
            app.range(ctx, api, lo, hi);
        });
    });
    sim.run_for_secs(90);

    let mut completed = 0;
    for &m in &joined {
        let app: &GosSkipApp = sim.node::<WhisperNode>(m).unwrap().app().unwrap();
        completed += app.searches().len();
    }
    assert!(
        completed as f64 >= issued as f64 * 0.6,
        "{completed}/{issued} searches completed"
    );

    let app: &GosSkipApp = sim.node::<WhisperNode>(asker).unwrap().app().unwrap();
    if let Some(range) = app.ranges().first() {
        let expected: Vec<u64> = keys.iter().copied().filter(|k| (lo..=hi).contains(k)).collect();
        let mut got = range.keys.clone();
        got.sort_unstable();
        let hit = got.iter().filter(|k| expected.contains(k)).count();
        assert!(
            hit as f64 >= expected.len() as f64 * 0.6,
            "range returned {hit}/{} expected keys",
            expected.len()
        );
    }
}

// ---------------------------------------------------------------------
// Crash-restart regressions: every app's `on_crash_restart` must drop
// exactly the volatile state (in-flight bookkeeping, overlay caches) and
// keep exactly the durable state (surfaced results, sequence counters).
// ---------------------------------------------------------------------

#[test]
fn tchord_crash_restart_drops_inflight_and_regrows_the_ring() {
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let (mut sim, group, _leader, members) = build_group(
        26,
        10,
        &cfg,
        SimConfig::cluster(81),
        |g| Box::new(TChordApp::new(g, TChordConfig::default())),
        250,
    );
    sim.run_for_secs(700);
    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 8, "{} joined", joined.len());
    let subject = joined[1];

    // Create in-flight state, then crash the app.
    sim.with_node_ctx::<WhisperNode>(subject, |node, ctx| {
        node.with_api(|api, app| {
            {
                let tc: &mut TChordApp = app.as_any_mut().downcast_mut().unwrap();
                tc.lookup(ctx, api, ChordKey::of_data(b"doomed-query"));
                assert!(tc.pending_count() >= 1, "lookup is in flight");
                assert!(!tc.neighbors().successors.is_empty(), "ring formed");
            }
            app.on_crash_restart(ctx, api);
            let tc: &TChordApp = app.as_any().downcast_ref().unwrap();
            assert_eq!(tc.pending_count(), 0, "in-flight lookups died with the process");
            assert!(tc.neighbors().successors.is_empty(), "ring cache dropped");
            assert!(tc.neighbors().predecessor.is_none(), "predecessor dropped");
            assert!(tc.my_key().is_some(), "ring key re-derivable, kept");
        });
    });

    // The overlay is regrown from the PPSS within a few T-Man cycles —
    // the reset is a clean slate, not a dead end.
    sim.run_for_secs(400);
    let app: &TChordApp = sim.node::<WhisperNode>(subject).unwrap().app().unwrap();
    assert!(
        !app.neighbors().successors.is_empty(),
        "ring regrew after restart"
    );
}

#[test]
fn gosskip_crash_restart_keeps_surfaced_results_only() {
    use whisper_apps::gosskip::{GosSkipApp, GosSkipConfig};
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let (mut sim, group, _leader, members) = build_group(
        26,
        10,
        &cfg,
        SimConfig::cluster(82),
        |g| Box::new(GosSkipApp::new(g, 0, GosSkipConfig::default())),
        250,
    );
    for &m in &members {
        sim.with_node_ctx::<WhisperNode>(m, |node, _| {
            node.with_api(|_, app| {
                let app: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
                *app = GosSkipApp::new(group, m.0 * 1000, GosSkipConfig::default());
            });
        });
    }
    sim.run_for_secs(700);
    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 8, "{} joined", joined.len());
    let subject = joined[1];

    // Complete one search so a surfaced result exists.
    sim.with_node_ctx::<WhisperNode>(subject, |node, ctx| {
        node.with_api(|api, app| {
            let gs: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
            gs.search(ctx, api, joined[3].0 * 1000 + 1);
        });
    });
    sim.run_for_secs(90);
    let surfaced = sim
        .node::<WhisperNode>(subject)
        .unwrap()
        .app::<GosSkipApp>()
        .unwrap()
        .searches()
        .len();

    sim.with_node_ctx::<WhisperNode>(subject, |node, ctx| {
        node.with_api(|api, app| {
            {
                let gs: &mut GosSkipApp = app.as_any_mut().downcast_mut().unwrap();
                // Leave a search in flight when the crash hits.
                gs.search(ctx, api, joined[4].0 * 1000 + 1);
            }
            app.on_crash_restart(ctx, api);
            let gs: &GosSkipApp = app.as_any().downcast_ref().unwrap();
            assert_eq!(gs.searches().len(), surfaced, "surfaced results survive");
            let (left, right) = gs.list_neighbors();
            assert!(left.is_none() && right.is_none(), "overlay cache dropped");
        });
    });

    // The sorted overlay regrows; the orphaned search never resurfaces a
    // duplicate result.
    sim.run_for_secs(400);
    let app: &GosSkipApp = sim.node::<WhisperNode>(subject).unwrap().app().unwrap();
    let (_, right) = app.list_neighbors();
    assert!(right.is_some(), "overlay regrew after restart");
}

#[test]
fn broadcast_crash_restart_never_reuses_sequence_numbers() {
    use whisper_apps::broadcast::{BroadcastApp, BroadcastConfig};
    let mut cfg = WhisperConfig::default();
    cfg.ppss.cycle = SimDuration::from_secs(30);
    let (mut sim, group, _leader, members) = build_group(
        26,
        10,
        &cfg,
        SimConfig::cluster(83),
        |g| Box::new(BroadcastApp::new(g, BroadcastConfig::default())),
        250,
    );
    sim.run_for_secs(250);
    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            sim.node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(group).is_some())
        })
        .collect();
    assert!(joined.len() >= 8, "{} joined", joined.len());
    let speaker = joined[1];

    let mut pre_crash_seq = 0;
    sim.with_node_ctx::<WhisperNode>(speaker, |node, ctx| {
        node.with_api(|api, app| {
            let id = {
                let bc: &mut BroadcastApp = app.as_any_mut().downcast_mut().unwrap();
                bc.publish(ctx, api, b"before-crash".to_vec())
            };
            pre_crash_seq = id.seq;
            app.on_crash_restart(ctx, api);
            let bc: &mut BroadcastApp = app.as_any_mut().downcast_mut().unwrap();
            // The sequence counter is the app's durable journal: reusing
            // a pre-crash seq would collide event ids and silently lose
            // events at every subscriber's dedup set.
            let id2 = bc.publish(ctx, api, b"after-crash".to_vec());
            assert!(id2.seq > pre_crash_seq, "sequence numbers never reused");
            assert_eq!(bc.published(), 2, "publish count survives the crash");
        });
    });

    // Both events — including the pre-crash one, whose payload buffer
    // was wiped — reach the other members via anti-entropy from peers
    // that already held it.
    sim.run_for_secs(240);
    let mut got_both = 0;
    for &m in &joined {
        if m == speaker {
            continue;
        }
        let app: &BroadcastApp = sim.node::<WhisperNode>(m).unwrap().app().unwrap();
        let from_speaker = app
            .delivered()
            .iter()
            .filter(|e| e.id.origin == speaker)
            .count();
        if from_speaker >= 2 {
            got_both += 1;
        }
    }
    assert!(
        got_both >= joined.len() - 2,
        "{got_both}/{} members hold both events across the crash",
        joined.len() - 1
    );
}
