//! Wire messages of the Nylon PSS layer.
//!
//! Everything a node puts on the wire is one of these messages, serialized
//! with the `whisper-net` codec. Upper layers (WCL/PPSS) travel inside
//! [`NylonMsg::App`] payloads.

use crate::descriptors::DescriptorBlob;
use crate::view::ViewEntry;
use whisper_net::wire::{
    bytes_len, opt_len, seq_len, WireDecode, WireEncode, WireError, WireReader, WireWriter,
};
use whisper_net::{Endpoint, NodeId};

/// A Nylon-layer message.
#[derive(Clone, Debug, PartialEq)]
pub enum NylonMsg {
    /// Gossip exchange request: the initiator's buffer (its own fresh
    /// entry first), optionally piggybacking its public key (the key
    /// sampling service).
    GossipReq {
        /// Initiator.
        sender: NodeId,
        /// Whether the initiator is a P-node.
        sender_public: bool,
        /// Shipped view subset.
        entries: Vec<ViewEntry>,
        /// Serialized public key, if key sampling is on.
        key: Option<Vec<u8>>,
        /// Piggybacked group-descriptor blobs (relay-level anti-entropy).
        descs: Vec<DescriptorBlob>,
    },
    /// Gossip exchange response (same shape as the request).
    GossipResp {
        /// Responder.
        sender: NodeId,
        /// Whether the responder is a P-node.
        sender_public: bool,
        /// Shipped view subset.
        entries: Vec<ViewEntry>,
        /// Serialized public key, if key sampling is on.
        key: Option<Vec<u8>>,
        /// Piggybacked group-descriptor blobs (relay-level anti-entropy).
        descs: Vec<DescriptorBlob>,
    },
    /// A message relayed along a rendezvous chain. `remaining` lists the
    /// hops still to traverse; its last element is the final destination.
    /// `path_back` accumulates the hops traversed so far (origin first),
    /// giving the destination a working reverse route.
    Relayed {
        /// Originator.
        from: NodeId,
        /// Hops left; last element is the destination.
        remaining: Vec<NodeId>,
        /// Hops already traversed, origin first.
        path_back: Vec<NodeId>,
        /// Serialized inner [`NylonMsg`].
        inner: Vec<u8>,
    },
    /// Hole-punching request travelling along a rendezvous chain towards
    /// the target (the last element of `remaining`). The first relay fills
    /// `requester_ep` with the endpoint it observed.
    OpenReq {
        /// The node that wants to open a direct channel.
        requester: NodeId,
        /// Requester's externally observed endpoint (filled by the first
        /// relay).
        requester_ep: Option<Endpoint>,
        /// Hops left; last element is the target.
        remaining: Vec<NodeId>,
        /// Hops traversed, origin first.
        path_back: Vec<NodeId>,
    },
    /// Answer to [`NylonMsg::OpenReq`], travelling the reverse path. The
    /// first relay to forward it fills `target_ep`.
    OpenAck {
        /// The target that accepted the open request.
        target: NodeId,
        /// Target's externally observed endpoint (filled by the first
        /// relay on the way back).
        target_ep: Option<Endpoint>,
        /// Hops left on the reverse path; last element is the requester.
        remaining: Vec<NodeId>,
    },
    /// Hole-punching probe sent directly to a (guessed) endpoint.
    Punch {
        /// Sender.
        from: NodeId,
    },
    /// Acknowledgement of a [`NylonMsg::Punch`]; tells the puncher its
    /// probe traversed the NAT.
    PunchAck {
        /// Sender.
        from: NodeId,
    },
    /// The "empty message" of paper §III-A used when inserting a P-node
    /// into the connection backlog: opens the sender's NAT towards the
    /// P-node so that the P-node can later reach it.
    Ping {
        /// Sender.
        from: NodeId,
        /// Sender's serialized public key (the pinged P-node may need to
        /// seal onion layers back to us).
        key: Option<Vec<u8>>,
    },
    /// Reply to [`NylonMsg::Ping`], carrying the P-node's public key so
    /// the pinger can use it as an onion next-to-last hop.
    Pong {
        /// Sender (the P-node).
        from: NodeId,
        /// The P-node's serialized public key.
        key: Option<Vec<u8>>,
    },
    /// Opaque upper-layer payload (WCL packets, PPSS exchanges, ...).
    App {
        /// Originator.
        from: NodeId,
        /// Upper-layer bytes.
        payload: Vec<u8>,
    },
}

const TAG_GOSSIP_REQ: u8 = 1;
const TAG_GOSSIP_RESP: u8 = 2;
const TAG_RELAYED: u8 = 3;
const TAG_OPEN_REQ: u8 = 4;
const TAG_OPEN_ACK: u8 = 5;
const TAG_PUNCH: u8 = 6;
const TAG_PUNCH_ACK: u8 = 7;
const TAG_PING: u8 = 8;
const TAG_PONG: u8 = 9;
const TAG_APP: u8 = 10;

impl WireEncode for NylonMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            NylonMsg::GossipReq { sender, sender_public, entries, key, descs } => {
                w.put_u8(TAG_GOSSIP_REQ);
                w.put(sender);
                w.put(sender_public);
                w.put_seq(entries);
                w.put_opt(key);
                w.put_seq(descs);
            }
            NylonMsg::GossipResp { sender, sender_public, entries, key, descs } => {
                w.put_u8(TAG_GOSSIP_RESP);
                w.put(sender);
                w.put(sender_public);
                w.put_seq(entries);
                w.put_opt(key);
                w.put_seq(descs);
            }
            NylonMsg::Relayed { from, remaining, path_back, inner } => {
                w.put_u8(TAG_RELAYED);
                w.put(from);
                w.put_seq(remaining);
                w.put_seq(path_back);
                w.put_bytes(inner);
            }
            NylonMsg::OpenReq { requester, requester_ep, remaining, path_back } => {
                w.put_u8(TAG_OPEN_REQ);
                w.put(requester);
                w.put_opt(requester_ep);
                w.put_seq(remaining);
                w.put_seq(path_back);
            }
            NylonMsg::OpenAck { target, target_ep, remaining } => {
                w.put_u8(TAG_OPEN_ACK);
                w.put(target);
                w.put_opt(target_ep);
                w.put_seq(remaining);
            }
            NylonMsg::Punch { from } => {
                w.put_u8(TAG_PUNCH);
                w.put(from);
            }
            NylonMsg::PunchAck { from } => {
                w.put_u8(TAG_PUNCH_ACK);
                w.put(from);
            }
            NylonMsg::Ping { from, key } => {
                w.put_u8(TAG_PING);
                w.put(from);
                w.put_opt(key);
            }
            NylonMsg::Pong { from, key } => {
                w.put_u8(TAG_PONG);
                w.put(from);
                w.put_opt(key);
            }
            NylonMsg::App { from, payload } => {
                w.put_u8(TAG_APP);
                w.put(from);
                w.put_bytes(payload);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            NylonMsg::GossipReq { entries, key, descs, .. }
            | NylonMsg::GossipResp { entries, key, descs, .. } => {
                1 + 8 + 1 + seq_len(entries) + opt_len(key) + seq_len(descs)
            }
            NylonMsg::Relayed { remaining, path_back, inner, .. } => {
                1 + 8 + seq_len(remaining) + seq_len(path_back) + bytes_len(inner)
            }
            NylonMsg::OpenReq { requester_ep, remaining, path_back, .. } => {
                1 + 8 + opt_len(requester_ep) + seq_len(remaining) + seq_len(path_back)
            }
            NylonMsg::OpenAck { target_ep, remaining, .. } => {
                1 + 8 + opt_len(target_ep) + seq_len(remaining)
            }
            NylonMsg::Punch { .. } | NylonMsg::PunchAck { .. } => 1 + 8,
            NylonMsg::Ping { key, .. } | NylonMsg::Pong { key, .. } => 1 + 8 + opt_len(key),
            NylonMsg::App { payload, .. } => 1 + 8 + bytes_len(payload),
        }
    }
}

impl WireDecode for NylonMsg {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            TAG_GOSSIP_REQ => NylonMsg::GossipReq {
                sender: r.take()?,
                sender_public: r.take()?,
                entries: r.take_seq()?,
                key: r.take_opt()?,
                descs: r.take_seq()?,
            },
            TAG_GOSSIP_RESP => NylonMsg::GossipResp {
                sender: r.take()?,
                sender_public: r.take()?,
                entries: r.take_seq()?,
                key: r.take_opt()?,
                descs: r.take_seq()?,
            },
            TAG_RELAYED => NylonMsg::Relayed {
                from: r.take()?,
                remaining: r.take_seq()?,
                path_back: r.take_seq()?,
                inner: r.take_bytes()?.to_vec(),
            },
            TAG_OPEN_REQ => NylonMsg::OpenReq {
                requester: r.take()?,
                requester_ep: r.take_opt()?,
                remaining: r.take_seq()?,
                path_back: r.take_seq()?,
            },
            TAG_OPEN_ACK => NylonMsg::OpenAck {
                target: r.take()?,
                target_ep: r.take_opt()?,
                remaining: r.take_seq()?,
            },
            TAG_PUNCH => NylonMsg::Punch { from: r.take()? },
            TAG_PUNCH_ACK => NylonMsg::PunchAck { from: r.take()? },
            TAG_PING => NylonMsg::Ping { from: r.take()?, key: r.take_opt()? },
            TAG_PONG => NylonMsg::Pong { from: r.take()?, key: r.take_opt()? },
            TAG_APP => NylonMsg::App { from: r.take()?, payload: r.take_bytes()?.to_vec() },
            _ => return Err(WireError::new("unknown Nylon message tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_net::wire::{WireDecode, WireEncode};

    fn round_trip(msg: NylonMsg) {
        let bytes = msg.to_wire();
        assert_eq!(NylonMsg::from_wire(&bytes).unwrap(), msg);
    }

    #[test]
    fn gossip_round_trip() {
        round_trip(NylonMsg::GossipReq {
            sender: NodeId(1),
            sender_public: true,
            entries: vec![ViewEntry {
                node: NodeId(2),
                age: 3,
                public: false,
                route: vec![NodeId(4)],
            }],
            key: Some(vec![1, 2, 3]),
            descs: vec![DescriptorBlob { id: 7, version: 3, bytes: vec![9; 20] }],
        });
        round_trip(NylonMsg::GossipResp {
            sender: NodeId(1),
            sender_public: false,
            entries: vec![],
            key: None,
            descs: vec![],
        });
    }

    #[test]
    fn relayed_round_trip() {
        round_trip(NylonMsg::Relayed {
            from: NodeId(1),
            remaining: vec![NodeId(2), NodeId(3)],
            path_back: vec![NodeId(1)],
            inner: b"inner".to_vec(),
        });
    }

    #[test]
    fn open_handshake_round_trip() {
        round_trip(NylonMsg::OpenReq {
            requester: NodeId(1),
            requester_ep: Some(Endpoint { node: NodeId(1), port: 9 }),
            remaining: vec![NodeId(5)],
            path_back: vec![NodeId(1), NodeId(4)],
        });
        round_trip(NylonMsg::OpenAck {
            target: NodeId(5),
            target_ep: None,
            remaining: vec![NodeId(4), NodeId(1)],
        });
        round_trip(NylonMsg::Punch { from: NodeId(7) });
        round_trip(NylonMsg::PunchAck { from: NodeId(7) });
    }

    #[test]
    fn ping_pong_round_trip() {
        round_trip(NylonMsg::Ping { from: NodeId(1), key: Some(vec![9; 40]) });
        round_trip(NylonMsg::Pong { from: NodeId(2), key: None });
    }

    #[test]
    fn app_round_trip() {
        round_trip(NylonMsg::App { from: NodeId(1), payload: vec![0; 1000] });
    }

    #[test]
    fn garbage_rejected() {
        assert!(NylonMsg::from_wire(&[42]).is_err());
        assert!(NylonMsg::from_wire(&[]).is_err());
        // Valid message with trailing garbage.
        let mut bytes = NylonMsg::Punch { from: NodeId(1) }.to_wire();
        bytes.push(0);
        assert!(NylonMsg::from_wire(&bytes).is_err());
    }
}
