//! Overlay graph instrumentation for Fig. 5: in-degree distributions and
//! local clustering coefficients of the PSS graph.

use std::collections::{HashMap, HashSet};
use whisper_net::NodeId;

/// A snapshot of the overlay: each node with its out-neighbours (its
/// view).
#[derive(Clone, Debug, Default)]
pub struct OverlaySnapshot {
    edges: Vec<(NodeId, Vec<NodeId>)>,
}

impl OverlaySnapshot {
    /// Builds a snapshot from `(node, view nodes)` pairs.
    pub fn new(edges: Vec<(NodeId, Vec<NodeId>)>) -> Self {
        OverlaySnapshot { edges }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// In-degree of every node present in the snapshot (nodes nobody
    /// points to report 0).
    pub fn in_degrees(&self) -> HashMap<NodeId, usize> {
        let mut degrees: HashMap<NodeId, usize> =
            self.edges.iter().map(|(n, _)| (*n, 0)).collect();
        for (_, view) in &self.edges {
            for target in view {
                *degrees.entry(*target).or_insert(0) += 1;
            }
        }
        degrees
    }

    /// Local clustering coefficient per node, on the undirected version
    /// of the overlay (an edge exists if either endpoint lists the other).
    ///
    /// For a node with fewer than 2 neighbours the coefficient is 0.
    pub fn clustering_coefficients(&self) -> HashMap<NodeId, f64> {
        // Undirected adjacency.
        let mut adj: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        for (node, view) in &self.edges {
            for target in view {
                if node != target {
                    adj.entry(*node).or_default().insert(*target);
                    adj.entry(*target).or_default().insert(*node);
                }
            }
        }
        let mut out = HashMap::new();
        for (node, _) in &self.edges {
            let Some(neighbours) = adj.get(node) else {
                out.insert(*node, 0.0);
                continue;
            };
            let k = neighbours.len();
            if k < 2 {
                out.insert(*node, 0.0);
                continue;
            }
            let neighbours: Vec<NodeId> = neighbours.iter().copied().collect();
            let mut links = 0usize;
            for i in 0..neighbours.len() {
                for j in (i + 1)..neighbours.len() {
                    if adj
                        .get(&neighbours[i])
                        .is_some_and(|s| s.contains(&neighbours[j]))
                    {
                        links += 1;
                    }
                }
            }
            out.insert(*node, 2.0 * links as f64 / (k * (k - 1)) as f64);
        }
        out
    }

    /// Mean local clustering coefficient.
    pub fn mean_clustering(&self) -> f64 {
        let cc = self.clustering_coefficients();
        if cc.is_empty() {
            return 0.0;
        }
        cc.values().sum::<f64>() / cc.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn in_degrees_counted() {
        let snap = OverlaySnapshot::new(vec![
            (n(1), vec![n(2), n(3)]),
            (n(2), vec![n(3)]),
            (n(3), vec![]),
        ]);
        let d = snap.in_degrees();
        assert_eq!(d[&n(1)], 0);
        assert_eq!(d[&n(2)], 1);
        assert_eq!(d[&n(3)], 2);
    }

    #[test]
    fn triangle_has_full_clustering() {
        let snap = OverlaySnapshot::new(vec![
            (n(1), vec![n(2), n(3)]),
            (n(2), vec![n(3)]),
            (n(3), vec![n(1)]),
        ]);
        let cc = snap.clustering_coefficients();
        for i in 1..=3 {
            assert_eq!(cc[&n(i)], 1.0, "node {i}");
        }
        assert_eq!(snap.mean_clustering(), 1.0);
    }

    #[test]
    fn star_has_zero_clustering_at_center() {
        let snap = OverlaySnapshot::new(vec![
            (n(0), vec![n(1), n(2), n(3)]),
            (n(1), vec![]),
            (n(2), vec![]),
            (n(3), vec![]),
        ]);
        let cc = snap.clustering_coefficients();
        assert_eq!(cc[&n(0)], 0.0);
        assert_eq!(cc[&n(1)], 0.0, "leaf has one neighbour");
    }

    #[test]
    fn line_graph_partial_clustering() {
        // 1-2-3 plus edge 1-3 makes a triangle for 2; adding 4 hanging
        // off 3 dilutes 3's coefficient.
        let snap = OverlaySnapshot::new(vec![
            (n(1), vec![n(2), n(3)]),
            (n(2), vec![n(3)]),
            (n(3), vec![n(4)]),
            (n(4), vec![]),
        ]);
        let cc = snap.clustering_coefficients();
        assert_eq!(cc[&n(2)], 1.0);
        // 3's neighbours: 1, 2, 4 → one link (1-2) out of 3 possible.
        assert!((cc[&n(3)] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn self_loops_ignored() {
        let snap = OverlaySnapshot::new(vec![(n(1), vec![n(1), n(2)]), (n(2), vec![])]);
        let cc = snap.clustering_coefficients();
        assert_eq!(cc[&n(1)], 0.0);
    }

    #[test]
    fn empty_snapshot() {
        let snap = OverlaySnapshot::new(vec![]);
        assert!(snap.is_empty());
        assert_eq!(snap.mean_clustering(), 0.0);
        assert!(snap.in_degrees().is_empty());
    }
}
