#![warn(missing_docs)]
//! Nylon: a NAT-resilient gossip peer sampling service (PSS), plus the two
//! WHISPER-specific extensions of paper §III-B.
//!
//! The PSS provides every node with a continuously refreshed partial view
//! of the network that approximates a uniform random sample. This
//! implementation follows the Nylon design the paper builds on
//! (Kermarrec et al., ICDCS'09):
//!
//! * gossip exchanges use the *healer* strategy of the Jelasity et al.
//!   framework (exchange with the oldest entry, keep the freshest),
//! * view entries carry **rendezvous chains** — the reverse gossip path an
//!   entry travelled — so that any node in a view can be reached through a
//!   chain of relays even when it sits behind a NAT,
//! * connection establishment performs real **hole punching** through
//!   those rendezvous nodes, falling back to relaying when punching fails
//!   (which, with the emulated NAT devices of `whisper-net`, happens
//!   exactly for the symmetric/port-sensitive combinations).
//!
//! WHISPER's additions (paper §III-B):
//!
//! 1. **P-node availability enforcement** — view truncation is biased so
//!    that at least Π public nodes stay in every view (and, to bound the
//!    extra load on P-nodes, the oldest P-nodes *above* Π are discarded
//!    first).
//! 2. **Public key sampling** — gossip partners piggyback their public
//!    keys, giving every node the keys of its connection backlog.
//!
//! The crate also provides the **connection backlog** (CB) of paper
//! §III-A — the FIFO of recently contacted nodes from which WCL onion
//! paths are built — and the graph instrumentation (in-degree
//! distribution, clustering coefficient) used by Fig. 5.

pub mod backlog;
pub mod config;
pub mod descriptors;
pub mod graph;
pub mod messages;
pub mod nylon;
pub mod transport;
pub mod view;

pub use backlog::{CbEntry, ConnectionBacklog};
pub use config::NylonConfig;
pub use descriptors::{DescriptorBlob, DescriptorStore};
pub use nylon::{NylonCore, NylonEvent, NylonNode};
pub use view::{View, ViewEntry};
