//! The connection backlog (CB) of paper §III-A.
//!
//! A FIFO of the nodes most recently contacted through a *successful
//! gossip exchange* (bidirectional by construction, so a NAT-resilient
//! path exists both ways). The WCL draws the first onion hop `S → A` from
//! the source's CB and the next-to-last hop `B` from the destination's Π
//! P-node entries. The CB must therefore always contain at least Π
//! P-nodes; maintenance of that invariant is driven by
//! [`ConnectionBacklog::missing_publics`].

use std::collections::VecDeque;
use whisper_crypto::rsa::PublicKey;
use whisper_net::NodeId;

/// One backlog entry: a recently contacted peer whose public key is known
/// (learned through the key sampling service).
#[derive(Clone, Debug, PartialEq)]
pub struct CbEntry {
    /// The peer.
    pub node: NodeId,
    /// Whether the peer is a P-node.
    pub public: bool,
    /// The peer's public key, if key sampling is enabled.
    pub key: Option<PublicKey>,
}

/// The FIFO connection backlog (capacity 2 × c in the paper).
#[derive(Clone, Debug)]
pub struct ConnectionBacklog {
    entries: VecDeque<CbEntry>,
    capacity: usize,
}

impl ConnectionBacklog {
    /// Creates an empty backlog with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CB capacity must be positive");
        ConnectionBacklog { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries from freshest to oldest.
    pub fn iter(&self) -> impl Iterator<Item = &CbEntry> {
        self.entries.iter()
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// The entry for `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<&CbEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// Number of P-node entries.
    pub fn p_count(&self) -> usize {
        self.entries.iter().filter(|e| e.public).count()
    }

    /// The P-node entries, freshest first.
    pub fn publics(&self) -> impl Iterator<Item = &CbEntry> {
        self.entries.iter().filter(|e| e.public)
    }

    /// Inserts `entry` at the head (re-inserting an existing node moves it
    /// to the head and refreshes its key). Evicts from the tail beyond
    /// capacity, but never evicts a P-node while at most `pi` P-nodes
    /// remain — the tail-most N-node is evicted instead (paper: the CB
    /// must retain Π P-nodes for WCL path construction).
    pub fn insert(&mut self, entry: CbEntry, pi: usize) {
        self.entries.retain(|e| e.node != entry.node);
        self.entries.push_front(entry);
        while self.entries.len() > self.capacity {
            // Find the eviction victim from the tail: the oldest entry,
            // unless evicting it would leave fewer than Π P-nodes.
            let p_count = self.p_count();
            let victim = self
                .entries
                .iter()
                .rposition(|e| !e.public || p_count > pi)
                .unwrap_or(self.entries.len() - 1);
            self.entries.remove(victim);
        }
    }

    /// Removes `node` (e.g. observed failure).
    pub fn remove(&mut self, node: NodeId) {
        self.entries.retain(|e| e.node != node);
    }

    /// How many more P-nodes are needed to satisfy Π.
    pub fn missing_publics(&self, pi: usize) -> usize {
        pi.saturating_sub(self.p_count())
    }

    /// Updates the stored key for `node` if present.
    pub fn set_key(&mut self, node: NodeId, key: PublicKey) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.node == node) {
            e.key = Some(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u64, public: bool) -> CbEntry {
        CbEntry { node: NodeId(node), public, key: None }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut cb = ConnectionBacklog::new(3);
        for i in 0..5 {
            cb.insert(entry(i, false), 0);
        }
        assert_eq!(cb.len(), 3);
        let order: Vec<u64> = cb.iter().map(|e| e.node.0).collect();
        assert_eq!(order, vec![4, 3, 2], "freshest first, oldest evicted");
    }

    #[test]
    fn reinsert_moves_to_head() {
        let mut cb = ConnectionBacklog::new(3);
        cb.insert(entry(1, false), 0);
        cb.insert(entry(2, false), 0);
        cb.insert(entry(1, false), 0);
        let order: Vec<u64> = cb.iter().map(|e| e.node.0).collect();
        assert_eq!(order, vec![1, 2]);
        assert_eq!(cb.len(), 2);
    }

    #[test]
    fn p_nodes_protected_from_eviction() {
        let mut cb = ConnectionBacklog::new(3);
        cb.insert(entry(100, true), 1);
        cb.insert(entry(1, false), 1);
        cb.insert(entry(2, false), 1);
        cb.insert(entry(3, false), 1); // would evict P-node 100 at tail
        assert!(cb.contains(NodeId(100)), "single P-node must survive");
        assert_eq!(cb.len(), 3);
        assert!(!cb.contains(NodeId(1)), "oldest N-node evicted instead");
    }

    #[test]
    fn excess_p_nodes_evictable() {
        let mut cb = ConnectionBacklog::new(2);
        cb.insert(entry(100, true), 1);
        cb.insert(entry(101, true), 1);
        cb.insert(entry(102, true), 1);
        assert_eq!(cb.len(), 2);
        assert!(!cb.contains(NodeId(100)), "beyond Π, oldest P evicted normally");
    }

    #[test]
    fn missing_publics() {
        let mut cb = ConnectionBacklog::new(10);
        assert_eq!(cb.missing_publics(3), 3);
        cb.insert(entry(100, true), 3);
        cb.insert(entry(1, false), 3);
        assert_eq!(cb.missing_publics(3), 2);
        assert_eq!(cb.missing_publics(0), 0);
    }

    #[test]
    fn set_key_updates_entry() {
        use whisper_rand::SeedableRng;
        use whisper_crypto::rsa::{KeyPair, RsaKeySize};
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(RsaKeySize::Sim384, &mut rng);
        let mut cb = ConnectionBacklog::new(4);
        cb.insert(entry(1, false), 0);
        cb.set_key(NodeId(1), kp.public().clone());
        assert_eq!(cb.get(NodeId(1)).unwrap().key.as_ref(), Some(kp.public()));
        cb.set_key(NodeId(9), kp.public().clone()); // absent: no-op
        assert!(cb.get(NodeId(9)).is_none());
    }

    #[test]
    fn remove_works() {
        let mut cb = ConnectionBacklog::new(4);
        cb.insert(entry(1, false), 0);
        cb.remove(NodeId(1));
        assert!(cb.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        ConnectionBacklog::new(0);
    }
}
