//! Partial views and the biased truncation policy of paper §III-B-1.

use whisper_rand::seq::SliceRandom;
use whisper_rand::Rng;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use whisper_net::NodeId;

/// One entry of a PSS view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewEntry {
    /// The node this entry points to.
    pub node: NodeId,
    /// Freshness: 0 when the node inserts itself, +1 every local cycle.
    pub age: u16,
    /// Whether the node is publicly reachable (a P-node).
    pub public: bool,
    /// Rendezvous chain: `route[0]` is a node the *holder* of this entry
    /// can contact and that can (transitively) reach `node`. Grows by one
    /// as the entry is forwarded, capped by configuration.
    pub route: Vec<NodeId>,
}

impl WireEncode for ViewEntry {
    fn encode(&self, w: &mut WireWriter) {
        w.put(&self.node);
        w.put_u16(self.age);
        w.put(&self.public);
        w.put_seq(&self.route);
    }

    fn encoded_len(&self) -> usize {
        8 + 2 + 1 + whisper_net::wire::seq_len(&self.route)
    }
}

impl WireDecode for ViewEntry {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ViewEntry {
            node: r.take()?,
            age: r.take_u16()?,
            public: r.take()?,
            route: r.take_seq()?,
        })
    }
}

/// A bounded partial view with the healer merge policy and WHISPER's
/// P-node bias.
#[derive(Clone, Debug, Default)]
pub struct View {
    entries: Vec<ViewEntry>,
}

impl View {
    /// Creates an empty view.
    pub fn new() -> Self {
        View::default()
    }

    /// The entries, in no particular order.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// The entry for `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<&ViewEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// Node identifiers currently in the view.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.node)
    }

    /// Number of P-node entries.
    pub fn p_count(&self) -> usize {
        self.entries.iter().filter(|e| e.public).count()
    }

    /// Inserts an entry directly (bootstrap); replaces an existing entry
    /// for the same node if the new one is fresher.
    pub fn insert(&mut self, entry: ViewEntry) {
        match self.entries.iter_mut().find(|e| e.node == entry.node) {
            Some(existing) => {
                if entry.age < existing.age {
                    *existing = entry;
                }
            }
            None => self.entries.push(entry),
        }
    }

    /// Removes the entry for `node` (e.g. after a failed exchange, as the
    /// healer policy prescribes for unresponsive peers).
    pub fn remove(&mut self, node: NodeId) {
        self.entries.retain(|e| e.node != node);
    }

    /// Ages every entry by one cycle (saturating).
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Stale-peer eviction: removes every entry whose age exceeds
    /// `max_age` cycles, returning how many were dropped. Counters the Π
    /// bias, which would otherwise keep copies of a dead P-node's entry
    /// circulating (and being selected as relays) forever.
    pub fn evict_older_than(&mut self, max_age: u16) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.age <= max_age);
        before - self.entries.len()
    }

    /// The oldest entry — the healer's exchange partner. Ties are broken
    /// by node id for determinism.
    pub fn oldest(&self) -> Option<&ViewEntry> {
        self.entries.iter().max_by_key(|e| (e.age, e.node))
    }

    /// A uniformly random entry (the `getPeer()` API of Fig. 1).
    pub fn random<R: Rng>(&self, rng: &mut R) -> Option<&ViewEntry> {
        self.entries.choose(rng)
    }

    /// A uniformly random P-node entry.
    pub fn random_public<R: Rng>(&self, rng: &mut R) -> Option<&ViewEntry> {
        let publics: Vec<&ViewEntry> = self.entries.iter().filter(|e| e.public).collect();
        publics.choose(rng).copied()
    }

    /// Builds the gossip buffer to ship to a partner: the sender's own
    /// fresh entry followed by up to `len - 1` random others (excluding
    /// the partner itself). Forwarded entries get `via` prepended to their
    /// rendezvous chain, capped at `max_route`.
    pub fn make_buffer<R: Rng>(
        &self,
        self_entry: ViewEntry,
        partner: NodeId,
        len: usize,
        via: NodeId,
        max_route: usize,
        rng: &mut R,
    ) -> Vec<ViewEntry> {
        let mut buffer = vec![self_entry];
        let mut candidates: Vec<&ViewEntry> = self
            .entries
            .iter()
            .filter(|e| e.node != partner && e.node != via)
            .collect();
        candidates.shuffle(rng);
        for entry in candidates.into_iter().take(len.saturating_sub(1)) {
            let mut forwarded = entry.clone();
            let mut route = Vec::with_capacity(max_route);
            route.push(via);
            route.extend(forwarded.route.iter().copied().take(max_route.saturating_sub(1)));
            forwarded.route = route;
            buffer.push(forwarded);
        }
        buffer
    }

    /// Merges `received` entries and truncates to `cap` with the healer
    /// policy (keep lowest ages), applying the P-node bias:
    ///
    /// * at least `pi` P-nodes are kept when available (forcing out the
    ///   oldest N-nodes if the unbiased selection would drop below Π);
    /// * with `oldest_p_discard`, P-nodes *beyond* Π are discarded oldest
    ///   first in favour of fresher N-nodes, bounding P-node in-degree.
    ///
    /// Entries pointing at `me` are ignored.
    pub fn merge(
        &mut self,
        received: Vec<ViewEntry>,
        me: NodeId,
        cap: usize,
        pi: usize,
        oldest_p_discard: bool,
    ) {
        // Union, deduplicated by node keeping the freshest copy.
        let mut union: Vec<ViewEntry> = std::mem::take(&mut self.entries);
        for entry in received {
            if entry.node == me {
                continue;
            }
            match union.iter_mut().find(|e| e.node == entry.node) {
                Some(existing) => {
                    if entry.age < existing.age {
                        *existing = entry;
                    }
                }
                None => union.push(entry),
            }
        }
        // Deterministic healer order: freshest first.
        union.sort_by_key(|e| (e.age, e.node));

        if union.len() <= cap {
            self.entries = union;
            return;
        }

        let mut kept: Vec<ViewEntry> = union.drain(..cap).collect();
        let mut spare: Vec<ViewEntry> = union; // older entries, sorted

        if pi > 0 {
            let p_in_kept = kept.iter().filter(|e| e.public).count();
            if p_in_kept < pi {
                // The Π bias kicks in only when the unbiased healer would
                // leave too few P-nodes: force spare P-nodes in, pushing
                // out the oldest kept N-nodes. With `oldest_p_discard`
                // (the paper's refinement) the *freshest* spare P-nodes
                // are chosen, so the protected slots rotate and no single
                // stale P-node accumulates in-degree; without it the
                // oldest spares are taken — the protected P-nodes then
                // never change, concentrating load (and keeping possibly
                // dead P-nodes around), which is exactly the effect the
                // ablation quantifies.
                let needed = pi - p_in_kept;
                let mut spare_publics: Vec<ViewEntry> = Vec::new();
                if oldest_p_discard {
                    spare.retain(|e| {
                        if e.public && spare_publics.len() < needed {
                            spare_publics.push(e.clone());
                            false
                        } else {
                            true
                        }
                    });
                } else {
                    for e in spare.iter().rev() {
                        if e.public && spare_publics.len() < needed {
                            spare_publics.push(e.clone());
                        }
                    }
                    spare.retain(|e| !spare_publics.iter().any(|p| p.node == e.node));
                }
                for replacement in spare_publics {
                    // Remove the oldest non-public entry.
                    if let Some(pos) = kept.iter().rposition(|e| !e.public) {
                        kept.remove(pos);
                        kept.push(replacement);
                    }
                }
            }
        }
        self.entries = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_rand::rngs::StdRng;
    use whisper_rand::SeedableRng;

    fn e(node: u64, age: u16, public: bool) -> ViewEntry {
        ViewEntry { node: NodeId(node), age, public, route: vec![] }
    }

    #[test]
    fn insert_keeps_freshest() {
        let mut v = View::new();
        v.insert(e(1, 5, false));
        v.insert(e(1, 2, false));
        assert_eq!(v.get(NodeId(1)).unwrap().age, 2);
        v.insert(e(1, 9, false));
        assert_eq!(v.get(NodeId(1)).unwrap().age, 2, "older copy ignored");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn evict_older_than_drops_only_stale_entries() {
        let mut v = View::new();
        v.insert(e(1, 5, false));
        v.insert(e(2, 20, true));
        v.insert(e(3, 21, true));
        v.insert(e(4, 40, false));
        assert_eq!(v.evict_older_than(20), 2, "ages 21 and 40 evicted");
        assert_eq!(v.len(), 2);
        assert!(v.get(NodeId(2)).is_some(), "age == max_age survives");
        assert!(v.get(NodeId(3)).is_none());
        assert_eq!(v.evict_older_than(20), 0, "idempotent");
    }

    #[test]
    fn oldest_selection_deterministic() {
        let mut v = View::new();
        v.insert(e(1, 3, false));
        v.insert(e(2, 7, false));
        v.insert(e(3, 7, false));
        // Tie on age: larger node id wins, deterministically.
        assert_eq!(v.oldest().unwrap().node, NodeId(3));
    }

    #[test]
    fn ages_increment_saturating() {
        let mut v = View::new();
        v.insert(e(1, u16::MAX, false));
        v.insert(e(2, 1, false));
        v.increment_ages();
        assert_eq!(v.get(NodeId(1)).unwrap().age, u16::MAX);
        assert_eq!(v.get(NodeId(2)).unwrap().age, 2);
    }

    #[test]
    fn merge_dedupes_and_truncates_by_age() {
        let mut v = View::new();
        for i in 0..5 {
            v.insert(e(i, i as u16, false));
        }
        let received = vec![e(10, 0, false), e(0, 3, false)];
        v.merge(received, NodeId(99), 4, 0, false);
        assert_eq!(v.len(), 4);
        assert!(v.contains(NodeId(10)), "fresh entry kept");
        assert_eq!(v.get(NodeId(0)).unwrap().age, 0, "freshest copy kept");
        assert!(!v.contains(NodeId(4)), "oldest dropped");
    }

    #[test]
    fn merge_ignores_self() {
        let mut v = View::new();
        v.merge(vec![e(7, 0, false)], NodeId(7), 10, 0, false);
        assert!(v.is_empty());
    }

    #[test]
    fn pi_bias_forces_public_nodes_in() {
        let mut v = View::new();
        // 8 fresh N-nodes, 3 old P-nodes.
        for i in 0..8 {
            v.insert(e(i, 0, false));
        }
        for i in 100..103 {
            v.insert(e(i, 50, true));
        }
        v.merge(vec![], NodeId(99), 8, 3, false);
        assert_eq!(v.len(), 8);
        assert_eq!(v.p_count(), 3, "Π P-nodes forced in despite high age");
    }

    #[test]
    fn pi_bias_keeps_what_exists_when_not_enough_publics() {
        let mut v = View::new();
        for i in 0..10 {
            v.insert(e(i, 0, false));
        }
        v.insert(e(100, 50, true));
        v.merge(vec![], NodeId(99), 8, 3, false);
        assert_eq!(v.p_count(), 1, "only one P-node exists in the union");
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn unbiased_truncation_when_pi_zero() {
        let mut v = View::new();
        for i in 0..8 {
            v.insert(e(i, 0, false));
        }
        for i in 100..103 {
            v.insert(e(i, 50, true));
        }
        v.merge(vec![], NodeId(99), 8, 0, false);
        assert_eq!(v.p_count(), 0, "old P-nodes dropped without bias");
    }

    #[test]
    fn pi_at_or_below_natural_share_leaves_composition_unbiased() {
        // Plenty of fresh P-nodes: the bias must not alter the unbiased
        // healer outcome (the paper's "very small effect" claim).
        let mut v = View::new();
        for i in 0..6 {
            v.insert(e(100 + i, i as u16, true));
        }
        for i in 0..6 {
            v.insert(e(i, 3, false));
        }
        let mut unbiased = v.clone();
        unbiased.merge(vec![], NodeId(99), 8, 0, false);
        v.merge(vec![], NodeId(99), 8, 2, true);
        assert_eq!(v.p_count(), unbiased.p_count(), "bias inactive when Π satisfied");
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn forced_publics_are_freshest_with_discard_bias_oldest_without() {
        // Kept set would hold zero publics; Π = 1 forces one in. With the
        // oldest-P-discard refinement the freshest spare P is chosen;
        // without it, the oldest (sticky, load-concentrating) one.
        let build = || {
            let mut v = View::new();
            for i in 0..8 {
                v.insert(e(i, 0, false)); // 8 fresh N-nodes fill the cap
            }
            v.insert(e(100, 10, true)); // fresher spare P
            v.insert(e(101, 20, true)); // older spare P
            v
        };
        let mut with_discard = build();
        with_discard.merge(vec![], NodeId(99), 8, 1, true);
        assert!(with_discard.contains(NodeId(100)), "freshest spare P chosen");
        assert!(!with_discard.contains(NodeId(101)));

        let mut without = build();
        without.merge(vec![], NodeId(99), 8, 1, false);
        assert!(without.contains(NodeId(101)), "oldest spare P chosen");
        assert!(!without.contains(NodeId(100)));
    }

    #[test]
    fn oldest_p_discard_requires_spare_n_nodes() {
        let mut v = View::new();
        for i in 0..8 {
            v.insert(e(100 + i, 0, true));
        }
        v.merge(vec![e(200, 9, true)], NodeId(99), 4, 1, true);
        // No N-nodes at all: publics stay.
        assert_eq!(v.p_count(), 4);
    }

    #[test]
    fn make_buffer_includes_self_first_and_prepends_route() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = View::new();
        let mut entry = e(5, 2, false);
        entry.route = vec![NodeId(50), NodeId(51), NodeId(52)];
        v.insert(entry);
        v.insert(e(6, 1, true));
        let me = NodeId(42);
        let self_entry = ViewEntry { node: me, age: 0, public: true, route: vec![] };
        let buf = v.make_buffer(self_entry.clone(), NodeId(6), 3, me, 3, &mut rng);
        assert_eq!(buf[0], self_entry);
        assert_eq!(buf.len(), 2, "partner excluded, so only node 5 remains");
        assert_eq!(buf[1].node, NodeId(5));
        assert_eq!(
            buf[1].route,
            vec![me, NodeId(50), NodeId(51)],
            "sender prepended, chain capped at 3"
        );
    }

    #[test]
    fn make_buffer_respects_len() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = View::new();
        for i in 0..20 {
            v.insert(e(i, 0, false));
        }
        let self_entry = ViewEntry { node: NodeId(42), age: 0, public: true, route: vec![] };
        let buf = v.make_buffer(self_entry, NodeId(0), 5, NodeId(42), 3, &mut rng);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn wire_round_trip() {
        use whisper_net::wire::{WireDecode, WireEncode};
        let entry = ViewEntry {
            node: NodeId(9),
            age: 77,
            public: true,
            route: vec![NodeId(1), NodeId(2)],
        };
        let bytes = entry.to_wire();
        assert_eq!(ViewEntry::from_wire(&bytes).unwrap(), entry);
    }

    #[test]
    fn random_public_picks_only_publics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = View::new();
        for i in 0..9 {
            v.insert(e(i, 0, false));
        }
        v.insert(e(100, 0, true));
        for _ in 0..20 {
            assert_eq!(v.random_public(&mut rng).unwrap().node, NodeId(100));
        }
        let empty = View::new();
        assert!(empty.random_public(&mut rng).is_none());
    }
}
