//! The Nylon PSS protocol core: gossip cycles, NAT-resilient exchange
//! delivery, the P-node-biased view, the public key sampling service and
//! the connection backlog maintenance.
//!
//! [`NylonCore`] is written sans-I/O-style: it is driven by `on_start` /
//! `on_message` / `on_timer` calls and returns [`NylonEvent`]s for the
//! layer above (the WCL embeds a `NylonCore` inside its own node type).
//! [`NylonNode`] is a thin [`Protocol`] wrapper for running the PSS
//! standalone, as the Fig. 5 / Fig. 6 experiments do.

use crate::backlog::{CbEntry, ConnectionBacklog};
use crate::config::NylonConfig;
use crate::descriptors::{DescriptorBlob, DescriptorStore};
use crate::messages::NylonMsg;
use crate::transport::{peer_of_token, SendOutcome, Transport, TIMER_OPEN_TIMEOUT};
use crate::view::{View, ViewEntry};
use std::collections::HashMap;
use whisper_crypto::rsa::{KeyPair, PublicKey};
use whisper_net::sim::{Ctx, Protocol};
use whisper_net::wire::WireDecode;
use whisper_net::{Endpoint, NodeId, Payload, SimDuration, SimTime};

/// Timer token: periodic gossip cycle.
const TIMER_GOSSIP_CYCLE: u64 = 1;
/// Timer token kind: gossip response timeout (generation in the high bits).
const TIMER_GOSSIP_TIMEOUT: u64 = 2;
/// Timer token kind: delayed re-punch towards an opening peer (peer id in
/// the high bits). Real hole punching repeats its probes: the first punch
/// can be filtered if it beats the other side's own outbound packet (e.g.
/// symmetric → restricted-cone), while a later one passes.
const TIMER_PUNCH_RETRY: u64 = 8;
/// How many delayed re-punches to send, and their spacing.
const PUNCH_RETRIES: u8 = 2;
const PUNCH_RETRY_DELAY: SimDuration = SimDuration::from_millis(250);

/// How long a pending CB ping may stay unanswered before we retry another
/// candidate.
const PING_PENDING_TTL: SimDuration = SimDuration::from_secs(5);

/// Upcalls from the PSS to the layer above.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NylonEvent {
    /// An application payload arrived (sent by a peer's `send_app`).
    Payload {
        /// Originating node.
        from: NodeId,
        /// Opaque upper-layer bytes.
        data: Vec<u8>,
    },
    /// A gossip exchange we initiated completed successfully.
    GossipCompleted {
        /// The exchange partner.
        partner: NodeId,
    },
    /// A fresher group-descriptor blob was merged into the relay store
    /// (the layer above verifies and interprets it; this layer only
    /// relays).
    Descriptor {
        /// Blob identifier (a group id, opaque here).
        id: u128,
        /// LWW version of the merged blob.
        version: u64,
        /// Opaque blob bytes.
        bytes: Vec<u8>,
    },
}

/// The Nylon protocol state of one node.
pub struct NylonCore {
    cfg: NylonConfig,
    keypair: KeyPair,
    id: NodeId,
    public: bool,
    view: View,
    cb: ConnectionBacklog,
    keystore: HashMap<NodeId, PublicKey>,
    transport: Transport,
    bootstrap: Vec<NodeId>,
    outstanding: Option<(NodeId, u64)>,
    gossip_gen: u64,
    ping_pending: HashMap<NodeId, SimTime>,
    punch_retries: HashMap<NodeId, (Endpoint, u8)>,
    cycles_run: u64,
    descs: DescriptorStore,
}

impl std::fmt::Debug for NylonCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NylonCore")
            .field("id", &self.id)
            .field("public", &self.public)
            .field("view", &self.view.len())
            .field("cb", &self.cb.len())
            .finish()
    }
}

impl NylonCore {
    /// Creates a node with the given configuration and RSA key pair.
    pub fn new(cfg: NylonConfig, keypair: KeyPair) -> Self {
        cfg.validate();
        let cb = ConnectionBacklog::new(cfg.cb_capacity());
        let descs = DescriptorStore::new(cfg.descriptor_cap);
        NylonCore {
            cfg,
            keypair,
            id: NodeId(u64::MAX),
            public: false,
            view: View::new(),
            cb,
            keystore: HashMap::new(),
            transport: Transport::new(),
            bootstrap: Vec::new(),
            outstanding: None,
            gossip_gen: 0,
            ping_pending: HashMap::new(),
            punch_retries: HashMap::new(),
            cycles_run: 0,
            descs,
        }
    }

    /// Registers public bootstrap nodes; they seed the initial view.
    pub fn set_bootstrap(&mut self, nodes: Vec<NodeId>) {
        self.bootstrap = nodes;
    }

    // ---------------------------------------------------------------
    // Accessors used by the WCL / experiments
    // ---------------------------------------------------------------

    /// This node's identifier (valid after `on_start`).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node is a P-node.
    pub fn is_public(&self) -> bool {
        self.public
    }

    /// The configuration.
    pub fn config(&self) -> &NylonConfig {
        &self.cfg
    }

    /// This node's key pair.
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The connection backlog.
    pub fn cb(&self) -> &ConnectionBacklog {
        &self.cb
    }

    /// The known public key of `node`, if the key sampling service has
    /// seen it.
    pub fn key_of(&self, node: NodeId) -> Option<&PublicKey> {
        self.keystore.get(&node)
    }

    /// Number of completed gossip cycles (diagnostics).
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The relay-level group-descriptor store.
    pub fn descriptors(&self) -> &DescriptorStore {
        &self.descs
    }

    /// Publishes (or refreshes) a descriptor blob into the relay store;
    /// it will piggyback on subsequent gossip exchanges. Returns `true`
    /// when the blob was news under the store's LWW rule.
    pub fn publish_descriptor(&mut self, id: u128, version: u64, bytes: &[u8]) -> bool {
        self.descs.offer(id, version, bytes)
    }

    /// The `getPeer()` API of Fig. 1: a uniformly random view entry.
    pub fn get_peer(&self, ctx: &mut Ctx<'_>) -> Option<ViewEntry> {
        self.view.random(ctx.rng()).cloned()
    }

    /// Whether a direct send to `to` would currently work.
    pub fn can_reach_directly(&self, to: NodeId, to_public: bool, now: SimTime) -> bool {
        self.transport.can_reach_directly(to, to_public, now)
    }

    /// Sends an opaque upper-layer payload to `to`.
    ///
    /// `to_public` and `route_hint` come from whatever directory entry the
    /// caller holds (CB entry, view entry, or PPSS private-view entry).
    pub fn send_app(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: NodeId,
        to_public: bool,
        route_hint: &[NodeId],
        payload: Vec<u8>,
    ) -> SendOutcome {
        let msg = NylonMsg::App { from: self.id, payload };
        self.send_msg(ctx, to, to_public, &msg, route_hint)
    }

    // ---------------------------------------------------------------
    // Protocol driver entry points
    // ---------------------------------------------------------------

    /// Must be called once when the node starts.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.id = ctx.id();
        self.public = ctx.nat_type().is_public();
        for &b in &self.bootstrap.clone() {
            if b != self.id {
                self.view.insert(ViewEntry { node: b, age: 0, public: true, route: vec![] });
            }
        }
        // Desynchronize cycles across nodes.
        let offset = SimDuration::from_micros(
            whisper_rand::Rng::gen_range(ctx.rng(), 0..self.cfg.cycle.as_micros().max(1)),
        );
        ctx.set_timer(offset, TIMER_GOSSIP_CYCLE);
    }

    /// Models a process restart with full volatile-state loss: the view,
    /// connection backlog, learned keys, transport contacts and any
    /// in-flight gossip state vanish. Identity, configuration and the
    /// bootstrap list survive (they live on disk), and the view is
    /// re-seeded from the bootstrap list so the next gossip cycle —
    /// whose timer the simulator defers across the outage — re-joins
    /// the overlay.
    pub fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        ctx.metrics().count("pss.restarts", 1);
        self.view = View::new();
        self.cb = ConnectionBacklog::new(self.cfg.cb_capacity());
        self.keystore.clear();
        self.transport = Transport::new();
        self.outstanding = None;
        self.ping_pending.clear();
        self.punch_retries.clear();
        self.descs.clear();
        let id = self.id;
        for &b in &self.bootstrap.clone() {
            if b != id {
                self.view.insert(ViewEntry { node: b, age: 0, public: true, route: vec![] });
            }
        }
    }

    /// Timer dispatch; returns upcall events.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> Vec<NylonEvent> {
        match token & 0xFF {
            TIMER_GOSSIP_CYCLE => {
                self.do_gossip_cycle(ctx);
                ctx.set_timer(self.cfg.cycle, TIMER_GOSSIP_CYCLE);
            }
            TIMER_GOSSIP_TIMEOUT => {
                let gen = token >> 8;
                if let Some((partner, g)) = self.outstanding {
                    if g == gen {
                        // The healer policy drops unresponsive oldest
                        // entries so failed nodes leave views quickly.
                        if let Some(e) = self.view.get(partner) {
                            ctx.metrics().count(
                                if e.public { "pss.timeout_removed_public" } else { "pss.timeout_removed_natted" },
                                1,
                            );
                        }
                        self.view.remove(partner);
                        self.outstanding = None;
                        ctx.metrics().count("pss.gossip_timeout", 1);
                    }
                }
            }
            TIMER_OPEN_TIMEOUT => {
                let peer = peer_of_token(token);
                self.transport.on_open_timeout(ctx, self.id, peer);
            }
            TIMER_PUNCH_RETRY => {
                let peer = peer_of_token(token);
                if let Some((ep, remaining)) = self.punch_retries.remove(&peer) {
                    let punch = NylonMsg::Punch { from: self.id };
                    ctx.send_wire(ep, &punch);
                    if remaining > 1 {
                        self.punch_retries.insert(peer, (ep, remaining - 1));
                        ctx.set_timer(PUNCH_RETRY_DELAY, TIMER_PUNCH_RETRY | (peer.0 << 8));
                    }
                }
            }
            _ => {}
        }
        Vec::new()
    }

    /// Message dispatch; returns upcall events.
    pub fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        from_ep: Endpoint,
        data: &[u8],
    ) -> Vec<NylonEvent> {
        let Ok(msg) = ctx.prof_decode(|| NylonMsg::from_wire(data)) else {
            ctx.metrics().count("pss.malformed", 1);
            return Vec::new();
        };
        // Any direct packet proves a working return path to `from` and
        // completes a pending hole punch towards it.
        self.transport.note_contact(from, from_ep, ctx.now());
        self.transport.on_established(ctx, from, from_ep);
        self.punch_retries.remove(&from);
        let mut events = Vec::new();
        self.handle_msg(ctx, from, from_ep, msg, &mut events);
        events
    }

    // ---------------------------------------------------------------
    // Gossip
    // ---------------------------------------------------------------

    fn self_entry(&self) -> ViewEntry {
        ViewEntry { node: self.id, age: 0, public: self.public, route: vec![] }
    }

    fn do_gossip_cycle(&mut self, ctx: &mut Ctx<'_>) {
        self.cycles_run += 1;
        self.view.increment_ages();
        // Stale-peer eviction: entries no refresh has touched for
        // `max_age` cycles belong to dead or unreachable peers — without
        // this, the Π bias keeps re-injecting dead P-nodes into merged
        // views, poisoning gateway selection indefinitely.
        if self.cfg.max_age > 0 {
            let evicted = self.view.evict_older_than(self.cfg.max_age);
            if evicted > 0 {
                ctx.metrics().count("pss.stale_evicted", evicted as u64);
            }
        }
        if self.view.is_empty() {
            // Rejoin through the bootstrap list.
            for &b in &self.bootstrap.clone() {
                if b != self.id {
                    self.view.insert(ViewEntry { node: b, age: 0, public: true, route: vec![] });
                }
            }
        }
        let Some(partner_entry) = self.view.oldest().cloned() else {
            return;
        };
        let partner = partner_entry.node;
        let buffer = self.view.make_buffer(
            self.self_entry(),
            partner,
            self.cfg.gossip_len,
            self.id,
            self.cfg.max_route,
            ctx.rng(),
        );
        let msg = NylonMsg::GossipReq {
            sender: self.id,
            sender_public: self.public,
            entries: buffer,
            key: self.key_payload(),
            descs: self.descs.next_batch(self.cfg.descriptor_gossip),
        };
        ctx.metrics().count("pss.gossip_initiated", 1);
        let outcome = self.send_msg(ctx, partner, partner_entry.public, &msg, &partner_entry.route);
        if outcome == SendOutcome::Failed {
            ctx.metrics().count(
                if partner_entry.public { "pss.sendfail_removed_public" } else { "pss.sendfail_removed_natted" },
                1,
            );
            self.view.remove(partner);
            return;
        }
        ctx.metrics().count(
            if partner_entry.public { "pss.partner_public" } else { "pss.partner_natted" },
            1,
        );
        self.gossip_gen += 1;
        self.outstanding = Some((partner, self.gossip_gen));
        let timeout = SimDuration::from_micros(self.cfg.cycle.as_micros() / 2);
        ctx.set_timer(timeout, TIMER_GOSSIP_TIMEOUT | (self.gossip_gen << 8));
    }

    fn key_payload(&self) -> Option<Vec<u8>> {
        self.cfg.key_sampling.then(|| self.keypair.public().to_bytes())
    }

    fn learn_key(&mut self, node: NodeId, key: &Option<Vec<u8>>) {
        if let Some(bytes) = key {
            if let Some(pk) = PublicKey::from_bytes(bytes) {
                self.cb.set_key(node, pk.clone());
                self.keystore.insert(node, pk);
            }
        }
    }

    fn insert_cb(&mut self, node: NodeId, public: bool) {
        let key = self.keystore.get(&node).cloned();
        self.cb.insert(CbEntry { node, public, key }, self.cfg.pi);
    }

    /// Keeps Π P-nodes in the CB by pinging view P-nodes not yet present
    /// (the paper's "empty message" that opens a path from the P-node back
    /// to us).
    fn maintain_cb(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.pi == 0 {
            return;
        }
        let now = ctx.now();
        self.ping_pending.retain(|_, t| now.since(*t) < PING_PENDING_TTL);
        let missing = self.cb.missing_publics(self.cfg.pi);
        let in_flight = self.ping_pending.len();
        if missing <= in_flight {
            return;
        }
        let candidates: Vec<NodeId> = self
            .view
            .entries()
            .iter()
            .filter(|e| e.public && !self.cb.contains(e.node) && !self.ping_pending.contains_key(&e.node))
            .map(|e| e.node)
            .take(missing - in_flight)
            .collect();
        if candidates.is_empty() {
            return;
        }
        // The ping is identical for every candidate: encode once, fan out
        // reference-counted clones (one allocation for N sends).
        let ping = NylonMsg::Ping { from: self.id, key: self.key_payload() };
        let wire = ctx.encode_payload(&ping);
        for candidate in candidates {
            ctx.send_to(Endpoint::public(candidate), wire.clone());
            ctx.metrics().count("pss.cb_ping_sent", 1);
            self.ping_pending.insert(candidate, now);
        }
    }

    // ---------------------------------------------------------------
    // Message handling
    // ---------------------------------------------------------------

    fn handle_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        outer_from: NodeId,
        outer_ep: Endpoint,
        msg: NylonMsg,
        events: &mut Vec<NylonEvent>,
    ) {
        match msg {
            NylonMsg::GossipReq { sender, sender_public, entries, key, descs } => {
                self.learn_key(sender, &key);
                self.merge_descriptors(ctx, descs, events);
                // Build the reply from the *pre-merge* view, as the
                // push-pull exchange prescribes.
                let reply_buffer = self.view.make_buffer(
                    self.self_entry(),
                    sender,
                    self.cfg.gossip_len,
                    self.id,
                    self.cfg.max_route,
                    ctx.rng(),
                );
                self.view.merge(
                    entries,
                    self.id,
                    self.cfg.view_size,
                    self.cfg.pi,
                    self.cfg.oldest_p_discard,
                );
                self.insert_cb(sender, sender_public);
                let resp = NylonMsg::GossipResp {
                    sender: self.id,
                    sender_public: self.public,
                    entries: reply_buffer,
                    key: self.key_payload(),
                    descs: self.descs.next_batch(self.cfg.descriptor_gossip),
                };
                self.send_msg(ctx, sender, sender_public, &resp, &[]);
                self.maintain_cb(ctx);
                ctx.metrics().count("pss.gossip_served", 1);
            }
            NylonMsg::GossipResp { sender, sender_public, entries, key, descs } => {
                self.learn_key(sender, &key);
                self.merge_descriptors(ctx, descs, events);
                if matches!(self.outstanding, Some((p, _)) if p == sender) {
                    self.outstanding = None;
                }
                self.view.merge(
                    entries,
                    self.id,
                    self.cfg.view_size,
                    self.cfg.pi,
                    self.cfg.oldest_p_discard,
                );
                self.insert_cb(sender, sender_public);
                self.maintain_cb(ctx);
                ctx.metrics().count("pss.gossip_completed", 1);
                events.push(NylonEvent::GossipCompleted { partner: sender });
            }
            NylonMsg::Relayed { from, remaining, path_back, inner } => {
                if remaining.is_empty() {
                    // Final destination: remember the reverse route, then
                    // process the inner message as if it came from `from`.
                    let mut route: Vec<NodeId> = path_back.clone();
                    route.reverse();
                    if !route.is_empty() {
                        self.transport.note_reply_route(from, route, ctx.now());
                    }
                    ctx.metrics().count("pss.relayed_delivered", 1);
                    if let Ok(inner_msg) = NylonMsg::from_wire(&inner) {
                        self.handle_msg(ctx, from, outer_ep, inner_msg, events);
                    }
                } else {
                    // Forward one hop.
                    let next = remaining[0];
                    let mut path = path_back;
                    path.push(self.id);
                    let fwd = NylonMsg::Relayed {
                        from,
                        remaining: remaining[1..].to_vec(),
                        path_back: path,
                        inner,
                    };
                    let ep = self
                        .transport
                        .contact(next, ctx.now())
                        .unwrap_or(Endpoint::public(next));
                    ctx.send_wire(ep, &fwd);
                    ctx.metrics().count("pss.relayed_forwarded", 1);
                }
            }
            NylonMsg::OpenReq { requester, mut requester_ep, remaining, path_back } => {
                // The first relay (receiving straight from the requester)
                // records the externally observed endpoint.
                if requester_ep.is_none() && outer_from == requester {
                    requester_ep = Some(outer_ep);
                }
                if remaining.is_empty() {
                    // We are the target: punch towards the requester (with
                    // delayed re-punches — the first probe can race the
                    // requester's own outbound packet through its filter)
                    // and answer along the reverse path.
                    if let Some(rep) = requester_ep {
                        let punch = NylonMsg::Punch { from: self.id };
                        ctx.send_wire(rep, &punch);
                        self.punch_retries.insert(requester, (rep, PUNCH_RETRIES));
                        ctx.set_timer(PUNCH_RETRY_DELAY, TIMER_PUNCH_RETRY | (requester.0 << 8));
                    }
                    let mut route: Vec<NodeId> = path_back;
                    route.reverse();
                    if let Some((&next, rest)) = route.split_first() {
                        let ack = NylonMsg::OpenAck {
                            target: self.id,
                            target_ep: None,
                            remaining: rest.to_vec(),
                        };
                        let ep = self
                            .transport
                            .contact(next, ctx.now())
                            .unwrap_or(Endpoint::public(next));
                        ctx.send_wire(ep, &ack);
                    }
                    ctx.metrics().count("pss.open_served", 1);
                } else {
                    let next = remaining[0];
                    let mut path = path_back;
                    path.push(self.id);
                    let fwd = NylonMsg::OpenReq {
                        requester,
                        requester_ep,
                        remaining: remaining[1..].to_vec(),
                        path_back: path,
                    };
                    let ep = self
                        .transport
                        .contact(next, ctx.now())
                        .unwrap_or(Endpoint::public(next));
                    ctx.send_wire(ep, &fwd);
                }
            }
            NylonMsg::OpenAck { target, mut target_ep, remaining } => {
                if target_ep.is_none() && outer_from == target {
                    target_ep = Some(outer_ep);
                }
                if remaining.is_empty() {
                    // We are the requester: punch towards the target's
                    // observed endpoint. Any direct answer (PunchAck or
                    // the target's own punch) establishes the channel.
                    if let Some(tep) = target_ep {
                        // Double punch: encode once, send two clones.
                        let punch = NylonMsg::Punch { from: self.id };
                        let wire = ctx.encode_payload(&punch);
                        ctx.send_to(tep, wire.clone());
                        ctx.send_to(tep, wire);
                    }
                } else {
                    let next = remaining[0];
                    let fwd = NylonMsg::OpenAck {
                        target,
                        target_ep,
                        remaining: remaining[1..].to_vec(),
                    };
                    let ep = self
                        .transport
                        .contact(next, ctx.now())
                        .unwrap_or(Endpoint::public(next));
                    ctx.send_wire(ep, &fwd);
                }
            }
            NylonMsg::Punch { from } => {
                // Contact already recorded by `on_message`; acknowledge so
                // the puncher learns its probe went through.
                let ack = NylonMsg::PunchAck { from: self.id };
                ctx.send_wire(outer_ep, &ack);
                let _ = from;
            }
            NylonMsg::PunchAck { .. } => {
                // Contact recorded at the outer level; nothing else to do.
            }
            NylonMsg::Ping { from, key } => {
                self.learn_key(from, &key);
                let pong = NylonMsg::Pong { from: self.id, key: self.key_payload() };
                ctx.send_wire(outer_ep, &pong);
            }
            NylonMsg::Pong { from, key } => {
                self.learn_key(from, &key);
                self.ping_pending.remove(&from);
                // Pings target P-nodes only, so the pong sender is public.
                self.insert_cb(from, true);
            }
            NylonMsg::App { from, payload } => {
                events.push(NylonEvent::Payload { from, data: payload });
            }
        }
    }

    /// Folds piggybacked blobs into the store; every merged-fresh blob
    /// surfaces as a [`NylonEvent::Descriptor`] for the layer above.
    fn merge_descriptors(
        &mut self,
        ctx: &mut Ctx<'_>,
        descs: Vec<DescriptorBlob>,
        events: &mut Vec<NylonEvent>,
    ) {
        for blob in descs {
            if self.descs.offer(blob.id, blob.version, &blob.bytes) {
                ctx.metrics().count("pss.desc_merged", 1);
                events.push(NylonEvent::Descriptor {
                    id: blob.id,
                    version: blob.version,
                    bytes: blob.bytes,
                });
            }
        }
    }

    fn send_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: NodeId,
        to_public: bool,
        msg: &NylonMsg,
        route_hint: &[NodeId],
    ) -> SendOutcome {
        self.transport
            .send(ctx, self.id, to, to_public, msg, route_hint, self.cfg.open_timeout)
    }
}

/// A standalone PSS node: [`NylonCore`] wrapped as a [`Protocol`].
#[derive(Debug)]
pub struct NylonNode {
    core: NylonCore,
    payloads_received: u64,
}

impl NylonNode {
    /// Creates a standalone PSS node.
    pub fn new(core: NylonCore) -> Self {
        NylonNode { core, payloads_received: 0 }
    }

    /// The wrapped protocol core.
    pub fn core(&self) -> &NylonCore {
        &self.core
    }

    /// Mutable access to the wrapped core.
    pub fn core_mut(&mut self) -> &mut NylonCore {
        &mut self.core
    }

    /// Number of application payloads received (diagnostics).
    pub fn payloads_received(&self) -> u64 {
        self.payloads_received
    }
}

impl Protocol for NylonNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, from_ep: Endpoint, data: &Payload) {
        for event in self.core.on_message(ctx, from, from_ep, data) {
            if matches!(event, NylonEvent::Payload { .. }) {
                self.payloads_received += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = self.core.on_timer(ctx, token);
    }

    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.core.on_restart(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
