//! Relay-level group-descriptor dissemination.
//!
//! Group descriptors (see `whisper-core`'s `ppss::descriptor`) travel the
//! network as **opaque versioned blobs** piggybacked on the PSS gossip
//! that runs anyway: every [`crate::messages::NylonMsg::GossipReq`] /
//! `GossipResp` carries up to `NylonConfig::descriptor_gossip` blobs. At
//! this layer nobody verifies signatures — non-members relay descriptors
//! they cannot check (only members hold the key history), which is
//! exactly what gives descriptors network-wide reach without revealing
//! who is a member.
//!
//! Convergence is plain last-writer-wins per id on `(version, bytes)`:
//! the publisher derives `version` from `(epoch, seq)` and pins deletion
//! tombstones at `u64::MAX`, so a tombstone can never be displaced by any
//! stale descriptor. Which blobs piggyback on a given exchange is chosen
//! by a deterministic rotating cursor over the sorted id space — every
//! stored blob keeps being re-offered round-robin, which is the
//! anti-entropy repair: a node that lost its store (crash-restart wipes
//! it; it is volatile by design) is refilled by its neighbours within a
//! few cycles, and members re-publish their latest verified descriptor
//! each PPSS cycle as the durable root of the repair.

use std::collections::BTreeMap;
use whisper_net::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};

/// An opaque versioned descriptor blob as it travels in gossip messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescriptorBlob {
    /// Identifier (the group id; opaque at this layer).
    pub id: u128,
    /// LWW version (`u64::MAX` = tombstone, never displaced).
    pub version: u64,
    /// Opaque payload (a serialized, signed `GroupDescriptor`).
    pub bytes: Vec<u8>,
}

impl WireEncode for DescriptorBlob {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64((self.id >> 64) as u64);
        w.put_u64(self.id as u64);
        w.put_u64(self.version);
        w.put_bytes(&self.bytes);
    }
    fn encoded_len(&self) -> usize {
        24 + whisper_net::wire::bytes_len(&self.bytes)
    }
}

impl WireDecode for DescriptorBlob {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let hi = r.take_u64()?;
        let lo = r.take_u64()?;
        Ok(DescriptorBlob {
            id: ((hi as u128) << 64) | lo as u128,
            version: r.take_u64()?,
            bytes: r.take_bytes()?.to_vec(),
        })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Stored {
    version: u64,
    bytes: Vec<u8>,
}

/// A bounded store of the freshest descriptor blob per id.
#[derive(Clone, Debug)]
pub struct DescriptorStore {
    entries: BTreeMap<u128, Stored>,
    /// Rotating anti-entropy cursor: index into the sorted id space of
    /// the next non-tombstone blob to offer.
    cursor: usize,
    /// Separate rotating cursor over the tombstones (see
    /// [`DescriptorStore::next_batch`]).
    tomb_cursor: usize,
    cap: usize,
}

impl DescriptorStore {
    /// An empty store holding at most `cap` blobs.
    pub fn new(cap: usize) -> DescriptorStore {
        DescriptorStore { entries: BTreeMap::new(), cursor: 0, tomb_cursor: 0, cap: cap.max(1) }
    }

    /// Number of blobs held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored blob for `id`.
    pub fn get(&self, id: u128) -> Option<(u64, &[u8])> {
        self.entries.get(&id).map(|s| (s.version, s.bytes.as_slice()))
    }

    /// Sorted ids currently held.
    pub fn ids(&self) -> Vec<u128> {
        self.entries.keys().copied().collect()
    }

    /// Offers a blob (locally published or received in gossip). Returns
    /// `true` when it is news — strictly fresher than what was held under
    /// LWW on `(version, bytes)` — and was stored.
    pub fn offer(&mut self, id: u128, version: u64, bytes: &[u8]) -> bool {
        if let Some(held) = self.entries.get(&id) {
            if (held.version, held.bytes.as_slice()) >= (version, bytes) {
                return false;
            }
            self.entries
                .insert(id, Stored { version, bytes: bytes.to_vec() });
            return true;
        }
        if self.entries.len() >= self.cap {
            // Deterministic eviction: displace the smallest
            // (version, id) — but never a tombstone, and never for a
            // blob that is itself staler than everything held.
            let Some((&victim_id, victim)) = self
                .entries
                .iter()
                .min_by_key(|(cid, s)| (s.version, **cid))
            else {
                return false;
            };
            if (victim.version, victim_id) >= (version, id) || victim.version == u64::MAX {
                return false;
            }
            self.entries.remove(&victim_id);
        }
        self.entries
            .insert(id, Stored { version, bytes: bytes.to_vec() });
        true
    }

    /// The next `n` blobs to piggyback, advancing the rotating cursors so
    /// successive exchanges walk the whole store (deterministic
    /// anti-entropy; no randomness involved).
    ///
    /// Deletion tombstones always ride **first**: a tombstone's epidemic
    /// spread is a security property (the resurrection window only closes
    /// once every member has heard), so the rotation dilution that is fine
    /// for ordinary descriptors — each blob shipping once every
    /// `len / n` exchanges — must not slow tombstones down. With more
    /// tombstones than slots they round-robin among themselves; remaining
    /// slots go to the ordinary rotation.
    pub fn next_batch(&mut self, n: usize) -> Vec<DescriptorBlob> {
        if self.entries.is_empty() || n == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n.min(self.entries.len()));
        let tombs: Vec<u128> = self
            .entries
            .iter()
            .filter(|(_, s)| s.version == u64::MAX)
            .map(|(id, _)| *id)
            .collect();
        if !tombs.is_empty() {
            let take = n.min(tombs.len());
            for k in 0..take {
                let id = tombs[(self.tomb_cursor + k) % tombs.len()];
                let s = &self.entries[&id];
                out.push(DescriptorBlob { id, version: s.version, bytes: s.bytes.clone() });
            }
            self.tomb_cursor = (self.tomb_cursor + take) % tombs.len();
        }
        let rest = n - out.len();
        if rest > 0 {
            let ids: Vec<u128> = self
                .entries
                .iter()
                .filter(|(_, s)| s.version != u64::MAX)
                .map(|(id, _)| *id)
                .collect();
            if !ids.is_empty() {
                let take = rest.min(ids.len());
                for k in 0..take {
                    let id = ids[(self.cursor + k) % ids.len()];
                    let s = &self.entries[&id];
                    out.push(DescriptorBlob { id, version: s.version, bytes: s.bytes.clone() });
                }
                self.cursor = (self.cursor + take) % ids.len();
            }
        }
        out
    }

    /// Drops everything (crash-restart: the store is volatile; gossip and
    /// member republish repair it).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cursor = 0;
        self.tomb_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trip() {
        let b = DescriptorBlob { id: u128::MAX - 7, version: 42, bytes: vec![1, 2, 3] };
        assert_eq!(DescriptorBlob::from_wire(&b.to_wire()).unwrap(), b);
    }

    #[test]
    fn offer_is_lww() {
        let mut s = DescriptorStore::new(8);
        assert!(s.offer(1, 5, b"v5"));
        assert!(!s.offer(1, 4, b"older"), "stale version rejected");
        assert!(!s.offer(1, 5, b"v5"), "identical blob is not news");
        assert!(s.offer(1, 6, b"v6"));
        assert_eq!(s.get(1), Some((6, b"v6".as_slice())));
    }

    #[test]
    fn equal_version_ties_break_on_bytes() {
        let mut s = DescriptorStore::new(8);
        assert!(s.offer(1, 5, b"aaa"));
        assert!(s.offer(1, 5, b"bbb"), "lexicographically greater bytes win");
        assert!(!s.offer(1, 5, b"aaa"));
    }

    #[test]
    fn tombstones_can_never_be_displaced() {
        let mut s = DescriptorStore::new(2);
        assert!(s.offer(1, u64::MAX, b"tomb"));
        assert!(!s.offer(1, 999, b"stale"));
        // Eviction pressure never selects the tombstone.
        assert!(s.offer(2, 10, b"b"));
        assert!(s.offer(3, 11, b"c"), "evicts id 2, not the tombstone");
        assert_eq!(s.get(1), Some((u64::MAX, b"tomb".as_slice())));
        assert!(s.get(2).is_none());
    }

    #[test]
    fn capped_eviction_is_deterministic() {
        let mut s = DescriptorStore::new(2);
        assert!(s.offer(5, 3, b"a"));
        assert!(s.offer(6, 7, b"b"));
        // Staler than everything held: rejected outright.
        assert!(!s.offer(7, 1, b"c"));
        // Fresher: displaces the smallest (version, id) = id 5.
        assert!(s.offer(8, 9, b"d"));
        assert_eq!(s.ids(), vec![6, 8]);
    }

    #[test]
    fn next_batch_rotates_over_the_whole_store() {
        let mut s = DescriptorStore::new(8);
        for id in [10u128, 20, 30] {
            s.offer(id, 1, b"x");
        }
        let seen: Vec<u128> = (0..3)
            .flat_map(|_| s.next_batch(2))
            .map(|b| b.id)
            .collect();
        assert_eq!(seen.len(), 6);
        for id in [10u128, 20, 30] {
            assert!(
                seen.iter().filter(|&&x| x == id).count() == 2,
                "cursor must visit every blob evenly, got {seen:?}"
            );
        }
    }

    #[test]
    fn tombstones_ride_every_batch() {
        let mut s = DescriptorStore::new(16);
        for id in 0..8u128 {
            s.offer(id, 1, b"live");
        }
        s.offer(99, u64::MAX, b"tomb");
        // The tombstone is in EVERY batch; the remaining slot still
        // rotates over all ordinary blobs.
        let mut ordinary = Vec::new();
        for _ in 0..8 {
            let batch = s.next_batch(2);
            assert!(
                batch.iter().any(|b| b.id == 99 && b.version == u64::MAX),
                "tombstone missing from a batch"
            );
            ordinary.extend(batch.into_iter().filter(|b| b.id != 99).map(|b| b.id));
        }
        for id in 0..8u128 {
            assert!(ordinary.contains(&id), "rotation starved blob {id}");
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = DescriptorStore::new(8);
        s.offer(1, 1, b"x");
        s.next_batch(1);
        s.clear();
        assert!(s.is_empty());
        assert!(s.next_batch(2).is_empty());
    }
}
