//! Nylon / biased-PSS configuration.

use whisper_crypto::rsa::RsaKeySize;
use whisper_net::SimDuration;

/// Parameters of the Nylon PSS and its WHISPER extensions.
///
/// The defaults match the paper's evaluation settings: view size `c = 10`,
/// a 10-second PSS cycle, Π = 3 and sim-grade RSA keys.
#[derive(Clone, Debug)]
pub struct NylonConfig {
    /// View size `c`.
    pub view_size: usize,
    /// Entries shipped per gossip exchange (including the sender's own
    /// fresh entry). The classic choice is `c / 2`.
    pub gossip_len: usize,
    /// PSS cycle period (paper: 10 s).
    pub cycle: SimDuration,
    /// Minimum number of P-nodes to keep in the view (Π). 0 disables the
    /// bias entirely (the unmodified PSS used as Fig. 5's baseline).
    pub pi: usize,
    /// Whether to discard the *oldest* P-nodes above the Π threshold
    /// first, limiting P-node in-degree inflation (paper §III-B-1; an
    /// ablation flag here).
    pub oldest_p_discard: bool,
    /// Whether gossip messages piggyback the sender's public key (the
    /// public key sampling service; Fig. 6 measures its cost).
    pub key_sampling: bool,
    /// Maximum length of the rendezvous chain stored per view entry.
    pub max_route: usize,
    /// Connection backlog capacity as a multiple of `view_size` (paper:
    /// 2 × c).
    pub cb_factor: usize,
    /// How long to wait for hole punching before falling back to relayed
    /// delivery.
    pub open_timeout: SimDuration,
    /// RSA modulus size used for this node's key pair.
    pub rsa: RsaKeySize,
    /// Stale-peer eviction: view entries whose age exceeds this many
    /// cycles are dropped at the start of each gossip cycle, so killed or
    /// partitioned peers leave every live view within a bounded number of
    /// rounds (the Π bias would otherwise keep dead P-nodes alive
    /// forever). `0` disables eviction. Must comfortably exceed the age a
    /// live entry can reach between refreshes, or healthy peers get
    /// purged too.
    pub max_age: u16,
    /// Group-descriptor blobs piggybacked per gossip message (the
    /// relay-level dissemination of `descriptors`). `0` disables the
    /// piggyback entirely.
    pub descriptor_gossip: usize,
    /// Capacity of the relay-level descriptor store.
    pub descriptor_cap: usize,
}

impl Default for NylonConfig {
    fn default() -> Self {
        NylonConfig {
            view_size: 10,
            gossip_len: 5,
            cycle: SimDuration::from_secs(10),
            pi: 3,
            oldest_p_discard: true,
            key_sampling: true,
            max_route: 3,
            cb_factor: 2,
            open_timeout: SimDuration::from_millis(800),
            rsa: RsaKeySize::Sim384,
            max_age: 20,
            descriptor_gossip: 2,
            descriptor_cap: 256,
        }
    }
}

impl NylonConfig {
    /// The paper's configuration with a specific Π.
    pub fn with_pi(pi: usize) -> Self {
        NylonConfig { pi, ..NylonConfig::default() }
    }

    /// Capacity of the connection backlog (2 × c with defaults).
    pub fn cb_capacity(&self) -> usize {
        self.cb_factor * self.view_size
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical combinations (e.g. Π larger than the view).
    pub fn validate(&self) {
        assert!(self.view_size >= 2, "view size must be at least 2");
        assert!(
            self.gossip_len >= 1 && self.gossip_len <= self.view_size,
            "gossip length must be within [1, view_size]"
        );
        assert!(self.pi <= self.view_size, "Π cannot exceed the view size");
        assert!(self.cb_factor >= 1, "CB must hold at least one view worth");
        assert!(
            self.max_age == 0 || self.max_age as usize > 2 * self.view_size / self.gossip_len,
            "max_age must exceed the refresh interval a live entry can see"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NylonConfig::default();
        c.validate();
        assert_eq!(c.view_size, 10);
        assert_eq!(c.cycle.as_secs(), 10);
        assert_eq!(c.cb_capacity(), 20);
    }

    #[test]
    fn with_pi() {
        let c = NylonConfig::with_pi(0);
        c.validate();
        assert_eq!(c.pi, 0);
    }

    #[test]
    #[should_panic(expected = "Π cannot exceed")]
    fn oversized_pi_rejected() {
        NylonConfig { pi: 11, ..NylonConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "gossip length")]
    fn oversized_gossip_len_rejected() {
        NylonConfig { gossip_len: 11, ..NylonConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "max_age")]
    fn hair_trigger_max_age_rejected() {
        NylonConfig { max_age: 4, ..NylonConfig::default() }.validate();
    }

    #[test]
    fn zero_max_age_disables_eviction() {
        NylonConfig { max_age: 0, ..NylonConfig::default() }.validate();
    }
}
