//! NAT-resilient message delivery: contact tracking, rendezvous-chain
//! relaying, and the hole-punching state machine.
//!
//! A node can reach a peer directly when it holds a *fresh contact* — an
//! endpoint it recently received a packet from (replying to a sender
//! always traverses the sender's NAT while the association rule lives).
//! Otherwise it either relays messages along the peer's rendezvous chain
//! or first attempts to punch a hole through both NATs via an
//! `OpenReq`/`OpenAck`/`Punch` handshake coordinated over that chain.
//! Whether punching succeeds is decided by the emulated NAT devices, not
//! by this code.

use crate::messages::NylonMsg;
use std::collections::HashMap;
use whisper_net::sim::Ctx;
use whisper_net::wire::WireEncode;
use whisper_net::{Endpoint, NodeId, SimDuration, SimTime};

/// Validity window for a learned contact. Kept below the (TCP-style) NAT
/// association lease so we never use an endpoint whose association rule
/// is about to expire. The simulator's default lease is 2 hours; real
/// Cisco TCP leases are 24 hours (paper §II-C).
pub const CONTACT_TTL: SimDuration = SimDuration::from_secs(5760);

/// Validity window for a relayed reverse route.
pub const REPLY_ROUTE_TTL: SimDuration = SimDuration::from_secs(120);

/// How a message was (or was not) handed to the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Sent directly to a known-good endpoint.
    Direct,
    /// Wrapped and forwarded along a relay chain.
    Relayed,
    /// Queued while a hole-punching handshake runs; will be flushed
    /// directly on success or relayed on timeout.
    Queued,
    /// No contact, no reply route, no usable chain: dropped.
    Failed,
}

#[derive(Clone, Debug)]
struct Contact {
    ep: Endpoint,
    expires: SimTime,
}

#[derive(Clone, Debug)]
struct PendingOpen {
    /// Relay chain (last element = target) used for the handshake and the
    /// relay fallback.
    chain: Vec<NodeId>,
    /// Serialized inner messages awaiting delivery.
    queued: Vec<Vec<u8>>,
}

/// Timer token kinds used by the transport (low byte of the token).
pub const TIMER_OPEN_TIMEOUT: u64 = 3;

/// Packs an open-timeout token for `peer`.
pub fn open_timeout_token(peer: NodeId) -> u64 {
    TIMER_OPEN_TIMEOUT | (peer.0 << 8)
}

/// Recovers the peer from an open-timeout token.
pub fn peer_of_token(token: u64) -> NodeId {
    NodeId(token >> 8)
}

/// The per-node transport state.
#[derive(Debug, Default)]
pub struct Transport {
    contacts: HashMap<NodeId, Contact>,
    reply_routes: HashMap<NodeId, (Vec<NodeId>, SimTime)>,
    opens: HashMap<NodeId, PendingOpen>,
}

impl Transport {
    /// Creates empty transport state.
    pub fn new() -> Self {
        Transport::default()
    }

    /// Records that a packet was just received from `peer` at `ep`:
    /// replying to that endpoint will traverse `peer`'s NAT while the
    /// association lives.
    pub fn note_contact(&mut self, peer: NodeId, ep: Endpoint, now: SimTime) {
        self.contacts.insert(peer, Contact { ep, expires: now + CONTACT_TTL });
    }

    /// Records a working relayed route to `origin` (relays first, then
    /// `origin` itself), learned from a relayed message's `path_back`.
    pub fn note_reply_route(&mut self, origin: NodeId, route: Vec<NodeId>, now: SimTime) {
        self.reply_routes.insert(origin, (route, now + REPLY_ROUTE_TTL));
    }

    /// Forgets everything known about `peer` (e.g. it was detected dead).
    pub fn forget(&mut self, peer: NodeId) {
        self.contacts.remove(&peer);
        self.reply_routes.remove(&peer);
        self.opens.remove(&peer);
    }

    /// The fresh endpoint for `peer`, if any.
    pub fn contact(&self, peer: NodeId, now: SimTime) -> Option<Endpoint> {
        self.contacts
            .get(&peer)
            .filter(|c| c.expires > now)
            .map(|c| c.ep)
    }

    /// Whether a direct send to `peer` is currently possible.
    pub fn can_reach_directly(&self, peer: NodeId, peer_public: bool, now: SimTime) -> bool {
        peer_public || self.contact(peer, now).is_some()
    }

    /// Whether an open handshake towards `peer` is in flight.
    pub fn opening(&self, peer: NodeId) -> bool {
        self.opens.contains_key(&peer)
    }

    /// Number of fresh contacts (diagnostics).
    pub fn live_contacts(&self, now: SimTime) -> usize {
        self.contacts.values().filter(|c| c.expires > now).count()
    }

    /// Sends `msg` to `to` using the best available mechanism.
    ///
    /// * `to_public` — whether the peer is directly reachable;
    /// * `route_hint` — rendezvous chain from a view entry (first element
    ///   must be a node we can reach), used for relaying / punching;
    /// * `me` — our node id;
    /// * `open_timeout` — how long to wait for hole punching before the
    ///   relay fallback.
    ///
    /// Returns how the message travelled.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        me: NodeId,
        to: NodeId,
        to_public: bool,
        msg: &NylonMsg,
        route_hint: &[NodeId],
        open_timeout: SimDuration,
    ) -> SendOutcome {
        let now = ctx.now();
        // 1. Fresh direct contact (covers public peers we have talked to,
        //    and NATted peers whose association towards us is open).
        if let Some(ep) = self.contact(to, now) {
            ctx.send_wire(ep, msg);
            return SendOutcome::Direct;
        }
        // 2. Public peer: always addressable.
        if to_public {
            ctx.send_wire(Endpoint::public(to), msg);
            return SendOutcome::Direct;
        }
        // 3. Fresh relayed reverse route.
        let reply_route = self
            .reply_routes
            .get(&to)
            .filter(|(_, exp)| *exp > now)
            .map(|(r, _)| r.clone());
        if let Some(route) = reply_route {
            if self.send_relayed(ctx, me, &route, msg, now) {
                return SendOutcome::Relayed;
            }
        }
        // 4. Rendezvous chain: queue the message and start (or join) a
        //    hole-punching handshake; the timeout handler falls back to
        //    relaying over the same chain.
        if !route_hint.is_empty() {
            let mut chain = route_hint.to_vec();
            chain.push(to);
            let inner = msg.to_wire();
            if let Some(open) = self.opens.get_mut(&to) {
                open.queued.push(inner);
                return SendOutcome::Queued;
            }
            // The handshake starts at the first hop: use a fresh contact
            // when we have one, else try its public endpoint (if the hop
            // is NATted with no open association the packet dies at its
            // NAT and the timeout cleans up).
            let first = chain[0];
            let first_ep = self.contact(first, now).unwrap_or(Endpoint::public(first));
            self.start_open(ctx, me, first_ep, &chain);
            self.opens
                .insert(to, PendingOpen { chain: chain.clone(), queued: vec![inner] });
            ctx.set_timer(open_timeout, open_timeout_token(to));
            return SendOutcome::Queued;
        }
        ctx.metrics().count("pss.send_failed", 1);
        SendOutcome::Failed
    }

    fn start_open(&mut self, ctx: &mut Ctx<'_>, me: NodeId, first_ep: Endpoint, chain: &[NodeId]) {
        let open = NylonMsg::OpenReq {
            requester: me,
            requester_ep: None,
            remaining: chain[1..].to_vec(),
            path_back: vec![me],
        };
        ctx.send_wire(first_ep, &open);
        ctx.metrics().count("pss.open_started", 1);
    }

    /// Relays `msg` along `route` (relays first, destination last).
    /// Returns `false` if the first hop is unreachable.
    pub fn send_relayed(
        &mut self,
        ctx: &mut Ctx<'_>,
        me: NodeId,
        route: &[NodeId],
        msg: &NylonMsg,
        now: SimTime,
    ) -> bool {
        let Some(&first) = route.first() else {
            return false;
        };
        let Some(ep) = self.contact(first, now).or_else(|| {
            // Relay chains are built from gossip paths, whose first hop we
            // have talked to; if the contact expired, try the public
            // address (works when the relay is a P-node).
            Some(Endpoint::public(first))
        }) else {
            return false;
        };
        let relayed = NylonMsg::Relayed {
            from: me,
            remaining: route[1..].to_vec(),
            path_back: vec![me],
            inner: msg.to_wire(),
        };
        ctx.send_wire(ep, &relayed);
        ctx.metrics().count("pss.relayed_sent", 1);
        true
    }

    /// Handles the open-timeout timer for `peer`: if the handshake did not
    /// complete, flushes queued messages over the relay chain.
    pub fn on_open_timeout(&mut self, ctx: &mut Ctx<'_>, me: NodeId, peer: NodeId) {
        let Some(open) = self.opens.remove(&peer) else {
            return; // handshake completed in time
        };
        ctx.metrics().count("pss.open_relay_fallback", 1);
        let now = ctx.now();
        for inner in open.queued {
            // Re-wrap each queued message as a relayed delivery.
            let Some(&first) = open.chain.first() else { continue };
            let ep = self
                .contact(first, now)
                .unwrap_or(Endpoint::public(first));
            let relayed = NylonMsg::Relayed {
                from: me,
                remaining: open.chain[1..].to_vec(),
                path_back: vec![me],
                inner,
            };
            ctx.send_wire(ep, &relayed);
        }
        // Remember the chain as a (tentative) reply route so immediate
        // follow-ups do not restart the handshake.
        self.reply_routes
            .insert(peer, (open.chain, now + REPLY_ROUTE_TTL));
    }

    /// Completes an open handshake towards `peer` (a direct packet
    /// arrived): flushes queued messages to the now-known endpoint.
    pub fn on_established(&mut self, ctx: &mut Ctx<'_>, peer: NodeId, ep: Endpoint) {
        if let Some(open) = self.opens.remove(&peer) {
            ctx.metrics().count("pss.open_punch_ok", 1);
            for inner in open.queued {
                ctx.send_to(ep, inner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        let t = open_timeout_token(NodeId(123456));
        assert_eq!(t & 0xFF, TIMER_OPEN_TIMEOUT);
        assert_eq!(peer_of_token(t), NodeId(123456));
    }

    #[test]
    fn contacts_expire() {
        let mut t = Transport::new();
        let ep = Endpoint { node: NodeId(2), port: 7 };
        t.note_contact(NodeId(2), ep, SimTime::ZERO);
        assert_eq!(t.contact(NodeId(2), SimTime::ZERO), Some(ep));
        let late = SimTime::ZERO + CONTACT_TTL + SimDuration::from_secs(1);
        assert_eq!(t.contact(NodeId(2), late), None);
    }

    #[test]
    fn can_reach_directly_logic() {
        let mut t = Transport::new();
        assert!(t.can_reach_directly(NodeId(5), true, SimTime::ZERO), "public");
        assert!(!t.can_reach_directly(NodeId(5), false, SimTime::ZERO));
        t.note_contact(NodeId(5), Endpoint { node: NodeId(5), port: 3 }, SimTime::ZERO);
        assert!(t.can_reach_directly(NodeId(5), false, SimTime::ZERO));
    }

    #[test]
    fn forget_clears_state() {
        let mut t = Transport::new();
        t.note_contact(NodeId(5), Endpoint { node: NodeId(5), port: 3 }, SimTime::ZERO);
        t.note_reply_route(NodeId(5), vec![NodeId(1), NodeId(5)], SimTime::ZERO);
        t.forget(NodeId(5));
        assert_eq!(t.contact(NodeId(5), SimTime::ZERO), None);
        assert_eq!(t.live_contacts(SimTime::ZERO), 0);
    }
}
