//! End-to-end tests of the Nylon PSS over the simulated network: view
//! convergence under NATs, the P-node bias, CB maintenance and the key
//! sampling service.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::{NatDistribution, NatType};
use whisper_net::sim::{Sim, SimConfig};
use whisper_pss::graph::OverlaySnapshot;
use whisper_pss::{NylonConfig, NylonCore, NylonNode};

/// Builds a network of `n` nodes (the first `bootstraps` are public
/// bootstrap nodes) and runs it for `secs` simulated seconds.
fn build_network(
    n: usize,
    bootstraps: usize,
    cfg: &NylonConfig,
    sim_cfg: SimConfig,
    secs: u64,
) -> (Sim, Vec<whisper_net::NodeId>) {
    build_network_with_ratio(n, bootstraps, cfg, sim_cfg, secs, 0.30)
}

/// Like [`build_network`] with an explicit fraction of public nodes.
fn build_network_with_ratio(
    n: usize,
    bootstraps: usize,
    cfg: &NylonConfig,
    sim_cfg: SimConfig,
    secs: u64,
    public_ratio: f64,
) -> (Sim, Vec<whisper_net::NodeId>) {
    let mut keyrng = StdRng::seed_from_u64(0xBEEF);
    let mut sim = Sim::new(sim_cfg);
    let dist = NatDistribution::with_public_ratio(public_ratio);
    let mut ids = Vec::new();

    // Bootstrap nodes first (public, known to everyone).
    for _ in 0..bootstraps {
        let core = NylonCore::new(cfg.clone(), KeyPair::generate(cfg.rsa, &mut keyrng));
        ids.push(sim.add_node(Box::new(NylonNode::new(core)), NatType::Public));
    }
    let boot = ids.clone();
    for _ in bootstraps..n {
        let mut core = NylonCore::new(cfg.clone(), KeyPair::generate(cfg.rsa, &mut keyrng));
        core.set_bootstrap(boot.clone());
        let nat = dist.sample(sim.rng());
        ids.push(sim.add_node(Box::new(NylonNode::new(core)), nat));
    }
    // Bootstraps also need to join the gossip (they know each other).
    for &b in &boot {
        let others: Vec<_> = boot.iter().copied().filter(|x| *x != b).collect();
        sim.with_node_ctx::<NylonNode>(b, |node, _| {
            node.core_mut().set_bootstrap(others.clone());
        });
    }
    sim.run_for_secs(secs);
    (sim, ids)
}

fn snapshot(sim: &Sim, ids: &[whisper_net::NodeId]) -> OverlaySnapshot {
    OverlaySnapshot::new(
        ids.iter()
            .filter(|id| sim.contains(**id))
            .map(|id| {
                let node: &NylonNode = sim.node(*id).expect("live node");
                (*id, node.core().view().nodes().collect())
            })
            .collect(),
    )
}

#[test]
fn views_fill_and_connect() {
    let cfg = NylonConfig::default();
    let (sim, ids) = build_network(60, 2, &cfg, SimConfig::cluster(1), 300);
    let mut full = 0;
    for &id in &ids {
        let node: &NylonNode = sim.node(id).unwrap();
        let v = node.core().view();
        assert!(v.len() >= cfg.view_size / 2, "node {id} view has {} entries", v.len());
        if v.len() == cfg.view_size {
            full += 1;
        }
        assert!(!v.contains(id), "no self-entry");
    }
    assert!(full as f64 >= ids.len() as f64 * 0.9, "{full}/{} full views", ids.len());
}

#[test]
fn gossip_actually_completes_through_nats() {
    let cfg = NylonConfig::default();
    let (sim, ids) = build_network(60, 2, &cfg, SimConfig::cluster(2), 300);
    let completed = sim.metrics().counter("pss.gossip_completed");
    let initiated = sim.metrics().counter("pss.gossip_initiated");
    // ~30 cycles × 60 nodes; a large majority must complete despite 70%
    // of nodes being NATted.
    assert!(initiated > 1000, "initiated {initiated}");
    assert!(
        completed as f64 >= initiated as f64 * 0.7,
        "completed {completed} of {initiated}"
    );
    // NAT traversal machinery was genuinely exercised.
    let punches = sim.metrics().counter("pss.open_punch_ok");
    let relays = sim.metrics().counter("pss.relayed_delivered");
    assert!(punches > 0, "hole punching succeeded at least once");
    assert!(relays > 0, "relaying used for symmetric NATs");
    let _ = ids;
}

#[test]
fn pi_bias_keeps_publics_in_views() {
    let cfg = NylonConfig::with_pi(3);
    let (sim, ids) = build_network(80, 2, &cfg, SimConfig::cluster(3), 400);
    let mut satisfied = 0;
    for &id in &ids {
        let node: &NylonNode = sim.node(id).unwrap();
        if node.core().view().p_count() >= 3 {
            satisfied += 1;
        }
    }
    assert!(
        satisfied as f64 >= ids.len() as f64 * 0.9,
        "{satisfied}/{} views hold Π=3 P-nodes",
        ids.len()
    );
}

#[test]
fn bias_matters_when_publics_are_scarce() {
    // With only ~10% P-nodes, an unbiased view holds ~1 public on
    // average; the Π=3 bias must force more in (paper §III-B-1 example).
    let biased_cfg = NylonConfig::with_pi(3);
    let unbiased_cfg = NylonConfig::with_pi(0);
    let (bsim, bids) =
        build_network_with_ratio(80, 2, &biased_cfg, SimConfig::cluster(4), 400, 0.10);
    let (usim, uids) =
        build_network_with_ratio(80, 2, &unbiased_cfg, SimConfig::cluster(4), 400, 0.10);
    let avg = |sim: &Sim, ids: &[whisper_net::NodeId]| {
        let total: usize = ids
            .iter()
            .map(|id| sim.node::<NylonNode>(*id).unwrap().core().view().p_count())
            .sum();
        total as f64 / ids.len() as f64
    };
    let biased = avg(&bsim, &bids);
    let unbiased = avg(&usim, &uids);
    assert!(
        biased > unbiased + 0.5,
        "biased {biased:.2} vs unbiased {unbiased:.2}"
    );
    assert!(biased >= 2.5, "biased {biased:.2} short of Π=3");
}

#[test]
fn cb_holds_pi_publics_with_keys() {
    let cfg = NylonConfig::with_pi(3);
    let (sim, ids) = build_network(60, 2, &cfg, SimConfig::cluster(5), 400);
    let mut ok = 0;
    let mut keys_ok = 0;
    for &id in &ids {
        let node: &NylonNode = sim.node(id).unwrap();
        let cb = node.core().cb();
        if cb.p_count() >= 3 {
            ok += 1;
        }
        // The key sampling service must have provided keys for CB entries.
        let with_key = cb.iter().filter(|e| e.key.is_some()).count();
        if !cb.is_empty() && with_key as f64 >= cb.len() as f64 * 0.8 {
            keys_ok += 1;
        }
    }
    assert!(ok as f64 >= ids.len() as f64 * 0.85, "{ok}/{} CBs hold Π publics", ids.len());
    assert!(keys_ok as f64 >= ids.len() as f64 * 0.85, "{keys_ok}/{} CBs keyed", ids.len());
}

#[test]
fn overlay_has_low_clustering() {
    let cfg = NylonConfig::default();
    let (sim, ids) = build_network(100, 2, &cfg, SimConfig::cluster(6), 400);
    let snap = snapshot(&sim, &ids);
    let mean_cc = snap.mean_clustering();
    // A random graph with c=10 out of 100 nodes has expected clustering
    // around 0.1–0.2; aggregates (cliques) would push it towards 1.
    assert!(mean_cc < 0.45, "mean clustering {mean_cc}");
    // Everyone is reachable: no node with in-degree 0 after convergence.
    let in_deg = snap.in_degrees();
    let isolated = ids.iter().filter(|id| in_deg.get(id) == Some(&0)).count();
    assert!(isolated <= ids.len() / 20, "{isolated} isolated nodes");
}

#[test]
fn key_sampling_off_means_no_keys() {
    let cfg = NylonConfig { key_sampling: false, ..NylonConfig::default() };
    let (sim, ids) = build_network(40, 2, &cfg, SimConfig::cluster(7), 200);
    for &id in &ids {
        let node: &NylonNode = sim.node(id).unwrap();
        assert!(node.core().cb().iter().all(|e| e.key.is_none()));
    }
}

#[test]
fn app_payloads_flow_between_neighbours() {
    let cfg = NylonConfig::default();
    let (mut sim, ids) = build_network(40, 2, &cfg, SimConfig::cluster(8), 200);
    // Every node sends a payload to a random neighbour of its view.
    for &id in &ids {
        sim.with_node_ctx::<NylonNode>(id, |node, ctx| {
            let Some(peer) = node.core().get_peer(ctx) else { return };
            let core = node.core_mut();
            core.send_app(ctx, peer.node, peer.public, &peer.route, b"hello".to_vec());
        });
    }
    sim.run_for_secs(30);
    let delivered: u64 = ids
        .iter()
        .map(|id| sim.node::<NylonNode>(*id).unwrap().payloads_received())
        .sum();
    assert!(
        delivered as f64 >= ids.len() as f64 * 0.8,
        "{delivered}/{} payloads delivered",
        ids.len()
    );
}

/// End-to-end use of the churn module: the Table I script shape (scaled
/// down) applied to a running PSS through `run_with_churn`; the overlay
/// must stay connected and views must purge departed nodes over time.
#[test]
fn pss_survives_scripted_churn() {
    use whisper_net::churn::{run_with_churn, ChurnPhase, ChurnScript};
    use whisper_net::{SimDuration, SimTime};

    let cfg = NylonConfig::default();
    let (mut sim, ids) = build_network(80, 2, &cfg, SimConfig::cluster(90), 250);
    let bootstraps = [ids[0], ids[1]];
    let script = ChurnScript {
        phases: vec![ChurnPhase::ConstChurn {
            from: SimTime::ZERO + SimDuration::from_secs(250),
            to: SimTime::ZERO + SimDuration::from_secs(850),
            fraction: 0.05, // 5% per minute
            interval: SimDuration::from_secs(60),
            replacement_ratio: 1.0,
        }],
        stop_at: SimTime::ZERO + SimDuration::from_secs(1000),
    };
    let mut keyrng = StdRng::seed_from_u64(0xC0C0);
    run_with_churn(
        &mut sim,
        &script,
        |sim| {
            let mut core =
                NylonCore::new(cfg.clone(), KeyPair::generate(cfg.rsa, &mut keyrng));
            core.set_bootstrap(bootstraps.to_vec());
            let nat = NatDistribution::paper_default().sample(sim.rng());
            sim.add_node(Box::new(NylonNode::new(core)), nat)
        },
        &bootstraps,
        |_, _| {},
    );
    assert_eq!(sim.len(), 80, "full replacement keeps the population");

    // Views contain mostly live nodes and stay near-full.
    let live = sim.node_ids();
    let mut dead_refs = 0usize;
    let mut total_refs = 0usize;
    let mut full_views = 0usize;
    for &id in &live {
        let Some(node) = sim.node::<NylonNode>(id) else { continue };
        let v = node.core().view();
        if v.len() >= cfg.view_size - 2 {
            full_views += 1;
        }
        for entry in v.entries() {
            total_refs += 1;
            if !sim.contains(entry.node) {
                dead_refs += 1;
            }
        }
    }
    assert!(
        full_views as f64 >= live.len() as f64 * 0.85,
        "{full_views}/{} views near-full after churn",
        live.len()
    );
    assert!(
        (dead_refs as f64) < total_refs as f64 * 0.25,
        "{dead_refs}/{total_refs} dead references linger"
    );
}

/// Stale-peer eviction (ISSUE: Nylon stale-peer eviction): kill a
/// quarter of the network with no replacement; after `max_age` plus
/// diffusion slack, **no** live node's view may reference a dead peer,
/// every surviving entry's age is hard-bounded by `max_age`, and the
/// eviction path itself must have fired.
///
/// The healer policy (oldest-first partner selection + removal on
/// timeout) already cleans dead entries in `view_size` cycles or so, so
/// eviction only becomes observable when views are large relative to
/// the gossip rate — hence the 30-entry views here. What eviction adds
/// over the healer is the *hard* staleness bound, independent of view
/// size.
#[test]
fn eviction_purges_dead_peers_and_bounds_staleness() {
    let cfg = NylonConfig {
        view_size: 30,
        gossip_len: 5,
        max_age: 13,
        ..NylonConfig::default()
    };
    cfg.validate();
    let (mut sim, ids) = build_network(80, 2, &cfg, SimConfig::cluster(91), 300);
    let victims: Vec<_> = ids.iter().copied().skip(2).step_by(4).collect();
    for &v in &victims {
        sim.remove_node(v);
    }
    // max_age cycles plus diffusion slack: a dead entry's age only grows
    // (nobody re-injects it at age 0), so this bounds its lifetime.
    let cycles = cfg.max_age as u64 + 7;
    sim.run_for_secs(cycles * cfg.cycle.as_secs());
    let mut checked = 0usize;
    for &id in &ids {
        let Some(node) = sim.node::<NylonNode>(id) else { continue };
        checked += 1;
        let view = node.core().view();
        assert!(!view.is_empty(), "views must not empty out under eviction");
        for entry in view.entries() {
            assert!(
                sim.contains(entry.node),
                "live node {id:?} still references dead peer {:?} after {cycles} cycles",
                entry.node
            );
            assert!(
                entry.age <= cfg.max_age,
                "entry age {} exceeds the max_age bound {}",
                entry.age,
                cfg.max_age
            );
        }
    }
    assert!(checked >= 50, "most of the population is still alive");
    assert!(
        sim.metrics().counter("pss.stale_evicted") > 0,
        "the eviction path must have fired"
    );
}
