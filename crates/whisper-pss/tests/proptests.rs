//! Property-based tests for the PSS layer: view-merge invariants under
//! arbitrary inputs, backlog invariants, and message-decoding totality.
//!
//! Written against `whisper_rand::check`: seeded case generation with
//! shrink-on-failure reporting.

use whisper_net::wire::{WireDecode, WireEncode};
use whisper_net::{Endpoint, NodeId};
use whisper_pss::backlog::{CbEntry, ConnectionBacklog};
use whisper_pss::descriptors::DescriptorBlob;
use whisper_pss::messages::NylonMsg;
use whisper_pss::view::{View, ViewEntry};
use whisper_rand::check::{check, Gen};
use whisper_rand::Rng;

fn gen_entry(g: &mut Gen) -> ViewEntry {
    // `public` is a fixed attribute of a node in reality, so derive it
    // from the node id to keep generated populations consistent.
    let node = g.gen_range(0..40u64);
    ViewEntry {
        node: NodeId(node),
        age: g.gen_range(0..30u16),
        public: node % 3 == 0,
        route: g.vec(2, |g| NodeId(g.gen_range(0..40u64))),
    }
}

/// Merge invariants hold for arbitrary inputs: bounded size, no
/// duplicates, no self-entry, and at least min(Π, available publics)
/// P-nodes kept.
#[test]
fn merge_invariants() {
    check(128, "merge_invariants", |g| {
        let initial = g.vec(14, gen_entry);
        let received = g.vec(14, gen_entry);
        let cap = g.gen_range(1..12usize);
        let pi = g.gen_range(0..5usize).min(cap);
        let discard: bool = g.gen();
        let me = NodeId(g.gen_range(0..40u64));
        let mut view = View::new();
        for e in initial {
            if e.node != me {
                view.insert(e);
            }
        }
        // Count distinct publics available in the union.
        let mut union_nodes = std::collections::HashMap::new();
        for e in view.entries().iter().cloned().chain(received.iter().cloned()) {
            if e.node != me {
                union_nodes.entry(e.node).or_insert(e.public);
            }
        }
        let avail_publics = union_nodes.values().filter(|p| **p).count();
        let avail_total = union_nodes.len();

        view.merge(received, me, cap, pi, discard);

        assert!(view.len() <= cap, "size bound");
        assert_eq!(view.len(), view.len().min(avail_total));
        assert!(!view.contains(me), "no self-entry");
        let mut seen = std::collections::HashSet::new();
        for e in view.entries() {
            assert!(seen.insert(e.node), "duplicate {:?}", e.node);
        }
        if view.len() == cap {
            // Π is satisfied whenever enough publics existed.
            let expect = pi.min(avail_publics);
            assert!(
                view.p_count() >= expect.min(cap),
                "Π violated: {} < {}",
                view.p_count(),
                expect
            );
        }
    });
}

/// Merge keeps, for every retained node, the freshest copy seen.
#[test]
fn merge_keeps_freshest_copy() {
    check(128, "merge_keeps_freshest_copy", |g| {
        let node = g.gen_range(0..5u64);
        let age_a = g.gen_range(0..30u16);
        let age_b = g.gen_range(0..30u16);
        let mut view = View::new();
        view.insert(ViewEntry { node: NodeId(node), age: age_a, public: false, route: vec![] });
        view.merge(
            vec![ViewEntry { node: NodeId(node), age: age_b, public: false, route: vec![] }],
            NodeId(99),
            10,
            0,
            false,
        );
        assert_eq!(view.get(NodeId(node)).unwrap().age, age_a.min(age_b));
    });
}

/// The backlog never exceeds capacity, never duplicates, and never
/// drops below Π publics as long as Π publics were ever inserted and
/// the capacity allows.
#[test]
fn backlog_invariants() {
    check(128, "backlog_invariants", |g| {
        let mut ops = g.vec(58, |g| (g.gen_range(0..30u64), g.gen::<bool>()));
        ops.push((g.gen_range(0..30u64), g.gen())); // at least one op
        let cap = g.gen_range(1..12usize);
        let pi = g.gen_range(0..4usize).min(cap);
        let mut cb = ConnectionBacklog::new(cap);
        let mut max_p_inserted = 0usize;
        for (node, public) in ops {
            cb.insert(CbEntry { node: NodeId(node), public, key: None }, pi);
            let distinct_p: std::collections::HashSet<_> =
                cb.iter().filter(|e| e.public).map(|e| e.node).collect();
            max_p_inserted = max_p_inserted.max(distinct_p.len());
            assert!(cb.len() <= cap);
            let mut seen = std::collections::HashSet::new();
            for e in cb.iter() {
                assert!(seen.insert(e.node));
            }
        }
        // Protection: once the CB held k ≤ Π publics, evictions never
        // push it below min(k, Π) while the rest of the queue has
        // N-nodes to evict instead.
        assert!(cb.p_count() <= cap);
    });
}

/// Message decoding is total on arbitrary bytes.
#[test]
fn nylon_msg_decode_never_panics() {
    check(128, "nylon_msg_decode_never_panics", |g| {
        let bytes = g.bytes(299);
        let _ = NylonMsg::from_wire(&bytes);
    });
}

/// Entry decoding is total on arbitrary bytes.
#[test]
fn view_entry_decode_never_panics() {
    check(128, "view_entry_decode_never_panics", |g| {
        let bytes = g.bytes(99);
        let _ = ViewEntry::from_wire(&bytes);
    });
}

fn gen_blob(g: &mut Gen) -> DescriptorBlob {
    DescriptorBlob {
        id: ((g.gen::<u64>() as u128) << 64) | g.gen::<u64>() as u128,
        version: g.gen(),
        bytes: g.bytes(40),
    }
}

fn gen_endpoint(g: &mut Gen) -> Endpoint {
    Endpoint { node: NodeId(g.gen_range(0..40u64)), port: g.gen() }
}

fn gen_opt<T>(g: &mut Gen, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
    g.gen::<bool>().then(|| f(g))
}

/// An arbitrary [`NylonMsg`], uniformly across all ten variants.
fn gen_msg(g: &mut Gen) -> NylonMsg {
    let gen_path = |g: &mut Gen| g.vec(4, |g| NodeId(g.gen_range(0..40u64)));
    match g.gen_range(0..10u8) {
        0 => NylonMsg::GossipReq {
            sender: NodeId(g.gen_range(0..40u64)),
            sender_public: g.gen(),
            entries: g.vec(6, gen_entry),
            key: gen_opt(g, |g| g.bytes(60)),
            descs: g.vec(3, gen_blob),
        },
        1 => NylonMsg::GossipResp {
            sender: NodeId(g.gen_range(0..40u64)),
            sender_public: g.gen(),
            entries: g.vec(6, gen_entry),
            key: gen_opt(g, |g| g.bytes(60)),
            descs: g.vec(3, gen_blob),
        },
        2 => NylonMsg::Relayed {
            from: NodeId(g.gen_range(0..40u64)),
            remaining: gen_path(g),
            path_back: gen_path(g),
            inner: g.bytes(80),
        },
        3 => NylonMsg::OpenReq {
            requester: NodeId(g.gen_range(0..40u64)),
            requester_ep: gen_opt(g, gen_endpoint),
            remaining: gen_path(g),
            path_back: gen_path(g),
        },
        4 => NylonMsg::OpenAck {
            target: NodeId(g.gen_range(0..40u64)),
            target_ep: gen_opt(g, gen_endpoint),
            remaining: gen_path(g),
        },
        5 => NylonMsg::Punch { from: NodeId(g.gen_range(0..40u64)) },
        6 => NylonMsg::PunchAck { from: NodeId(g.gen_range(0..40u64)) },
        7 => NylonMsg::Ping { from: NodeId(g.gen_range(0..40u64)), key: gen_opt(g, |g| g.bytes(60)) },
        8 => NylonMsg::Pong { from: NodeId(g.gen_range(0..40u64)), key: gen_opt(g, |g| g.bytes(60)) },
        _ => NylonMsg::App { from: NodeId(g.gen_range(0..40u64)), payload: g.bytes(120) },
    }
}

/// Every message round-trips through the codec, and `encoded_len()` —
/// the serialization fast path's exact pre-sizing contract (DESIGN.md
/// §16) — agrees byte-for-byte with what `encode()` actually writes.
#[test]
fn nylon_msg_round_trip_and_exact_len() {
    check(256, "nylon_msg_round_trip_and_exact_len", |g| {
        let msg = gen_msg(g);
        let bytes = msg.to_wire();
        assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len mismatch for {msg:?}");
        assert_eq!(NylonMsg::from_wire(&bytes).unwrap(), msg);
    });
}

/// [`ViewEntry`] round-trips with an exact `encoded_len()`.
#[test]
fn view_entry_round_trip_and_exact_len() {
    check(128, "view_entry_round_trip_and_exact_len", |g| {
        let entry = gen_entry(g);
        let bytes = entry.to_wire();
        assert_eq!(bytes.len(), entry.encoded_len());
        assert_eq!(ViewEntry::from_wire(&bytes).unwrap(), entry);
    });
}

/// [`DescriptorBlob`] round-trips with an exact `encoded_len()`.
#[test]
fn descriptor_blob_round_trip_and_exact_len() {
    check(128, "descriptor_blob_round_trip_and_exact_len", |g| {
        let blob = gen_blob(g);
        let bytes = blob.to_wire();
        assert_eq!(bytes.len(), blob.encoded_len());
        assert_eq!(DescriptorBlob::from_wire(&bytes).unwrap(), blob);
    });
}
