//! Property-based tests for the PSS layer: view-merge invariants under
//! arbitrary inputs, backlog invariants, and message-decoding totality.
//!
//! Written against `whisper_rand::check`: seeded case generation with
//! shrink-on-failure reporting.

use whisper_net::wire::WireDecode;
use whisper_net::NodeId;
use whisper_pss::backlog::{CbEntry, ConnectionBacklog};
use whisper_pss::messages::NylonMsg;
use whisper_pss::view::{View, ViewEntry};
use whisper_rand::check::{check, Gen};
use whisper_rand::Rng;

fn gen_entry(g: &mut Gen) -> ViewEntry {
    // `public` is a fixed attribute of a node in reality, so derive it
    // from the node id to keep generated populations consistent.
    let node = g.gen_range(0..40u64);
    ViewEntry {
        node: NodeId(node),
        age: g.gen_range(0..30u16),
        public: node % 3 == 0,
        route: g.vec(2, |g| NodeId(g.gen_range(0..40u64))),
    }
}

/// Merge invariants hold for arbitrary inputs: bounded size, no
/// duplicates, no self-entry, and at least min(Π, available publics)
/// P-nodes kept.
#[test]
fn merge_invariants() {
    check(128, "merge_invariants", |g| {
        let initial = g.vec(14, gen_entry);
        let received = g.vec(14, gen_entry);
        let cap = g.gen_range(1..12usize);
        let pi = g.gen_range(0..5usize).min(cap);
        let discard: bool = g.gen();
        let me = NodeId(g.gen_range(0..40u64));
        let mut view = View::new();
        for e in initial {
            if e.node != me {
                view.insert(e);
            }
        }
        // Count distinct publics available in the union.
        let mut union_nodes = std::collections::HashMap::new();
        for e in view.entries().iter().cloned().chain(received.iter().cloned()) {
            if e.node != me {
                union_nodes.entry(e.node).or_insert(e.public);
            }
        }
        let avail_publics = union_nodes.values().filter(|p| **p).count();
        let avail_total = union_nodes.len();

        view.merge(received, me, cap, pi, discard);

        assert!(view.len() <= cap, "size bound");
        assert_eq!(view.len(), view.len().min(avail_total));
        assert!(!view.contains(me), "no self-entry");
        let mut seen = std::collections::HashSet::new();
        for e in view.entries() {
            assert!(seen.insert(e.node), "duplicate {:?}", e.node);
        }
        if view.len() == cap {
            // Π is satisfied whenever enough publics existed.
            let expect = pi.min(avail_publics);
            assert!(
                view.p_count() >= expect.min(cap),
                "Π violated: {} < {}",
                view.p_count(),
                expect
            );
        }
    });
}

/// Merge keeps, for every retained node, the freshest copy seen.
#[test]
fn merge_keeps_freshest_copy() {
    check(128, "merge_keeps_freshest_copy", |g| {
        let node = g.gen_range(0..5u64);
        let age_a = g.gen_range(0..30u16);
        let age_b = g.gen_range(0..30u16);
        let mut view = View::new();
        view.insert(ViewEntry { node: NodeId(node), age: age_a, public: false, route: vec![] });
        view.merge(
            vec![ViewEntry { node: NodeId(node), age: age_b, public: false, route: vec![] }],
            NodeId(99),
            10,
            0,
            false,
        );
        assert_eq!(view.get(NodeId(node)).unwrap().age, age_a.min(age_b));
    });
}

/// The backlog never exceeds capacity, never duplicates, and never
/// drops below Π publics as long as Π publics were ever inserted and
/// the capacity allows.
#[test]
fn backlog_invariants() {
    check(128, "backlog_invariants", |g| {
        let mut ops = g.vec(58, |g| (g.gen_range(0..30u64), g.gen::<bool>()));
        ops.push((g.gen_range(0..30u64), g.gen())); // at least one op
        let cap = g.gen_range(1..12usize);
        let pi = g.gen_range(0..4usize).min(cap);
        let mut cb = ConnectionBacklog::new(cap);
        let mut max_p_inserted = 0usize;
        for (node, public) in ops {
            cb.insert(CbEntry { node: NodeId(node), public, key: None }, pi);
            let distinct_p: std::collections::HashSet<_> =
                cb.iter().filter(|e| e.public).map(|e| e.node).collect();
            max_p_inserted = max_p_inserted.max(distinct_p.len());
            assert!(cb.len() <= cap);
            let mut seen = std::collections::HashSet::new();
            for e in cb.iter() {
                assert!(seen.insert(e.node));
            }
        }
        // Protection: once the CB held k ≤ Π publics, evictions never
        // push it below min(k, Π) while the rest of the queue has
        // N-nodes to evict instead.
        assert!(cb.p_count() <= cap);
    });
}

/// Message decoding is total on arbitrary bytes.
#[test]
fn nylon_msg_decode_never_panics() {
    check(128, "nylon_msg_decode_never_panics", |g| {
        let bytes = g.bytes(299);
        let _ = NylonMsg::from_wire(&bytes);
    });
}

/// Entry decoding is total on arbitrary bytes.
#[test]
fn view_entry_decode_never_panics() {
    check(128, "view_entry_decode_never_panics", |g| {
        let bytes = g.bytes(99);
        let _ = ViewEntry::from_wire(&bytes);
    });
}
