//! Property-based tests for the PSS layer: view-merge invariants under
//! arbitrary inputs, backlog invariants, and message-decoding totality.

use proptest::prelude::*;
use whisper_net::wire::WireDecode;
use whisper_net::NodeId;
use whisper_pss::backlog::{CbEntry, ConnectionBacklog};
use whisper_pss::messages::NylonMsg;
use whisper_pss::view::{View, ViewEntry};

fn entry_strategy() -> impl Strategy<Value = ViewEntry> {
    // `public` is a fixed attribute of a node in reality, so derive it
    // from the node id to keep generated populations consistent.
    (0u64..40, 0u16..30, proptest::collection::vec(0u64..40, 0..3)).prop_map(
        |(node, age, route)| ViewEntry {
            node: NodeId(node),
            age,
            public: node % 3 == 0,
            route: route.into_iter().map(NodeId).collect(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merge invariants hold for arbitrary inputs: bounded size, no
    /// duplicates, no self-entry, and at least min(Π, available publics)
    /// P-nodes kept.
    #[test]
    fn merge_invariants(
        initial in proptest::collection::vec(entry_strategy(), 0..15),
        received in proptest::collection::vec(entry_strategy(), 0..15),
        cap in 1usize..12,
        pi in 0usize..5,
        discard in any::<bool>(),
        me in 0u64..40,
    ) {
        prop_assume!(pi <= cap);
        let me = NodeId(me);
        let mut view = View::new();
        for e in initial {
            if e.node != me {
                view.insert(e);
            }
        }
        // Count distinct publics available in the union.
        let mut union_nodes = std::collections::HashMap::new();
        for e in view.entries().iter().cloned().chain(received.iter().cloned()) {
            if e.node != me {
                union_nodes.entry(e.node).or_insert(e.public);
            }
        }
        let avail_publics = union_nodes.values().filter(|p| **p).count();
        let avail_total = union_nodes.len();

        view.merge(received, me, cap, pi, discard);

        prop_assert!(view.len() <= cap, "size bound");
        prop_assert_eq!(view.len(), view.len().min(avail_total));
        prop_assert!(!view.contains(me), "no self-entry");
        let mut seen = std::collections::HashSet::new();
        for e in view.entries() {
            prop_assert!(seen.insert(e.node), "duplicate {:?}", e.node);
        }
        if view.len() == cap {
            // Π is satisfied whenever enough publics existed.
            let expect = pi.min(avail_publics);
            prop_assert!(
                view.p_count() >= expect.min(cap),
                "Π violated: {} < {}",
                view.p_count(),
                expect
            );
        }
    }

    /// Merge keeps, for every retained node, the freshest copy seen.
    #[test]
    fn merge_keeps_freshest_copy(
        node in 0u64..5,
        age_a in 0u16..30,
        age_b in 0u16..30,
    ) {
        let mut view = View::new();
        view.insert(ViewEntry { node: NodeId(node), age: age_a, public: false, route: vec![] });
        view.merge(
            vec![ViewEntry { node: NodeId(node), age: age_b, public: false, route: vec![] }],
            NodeId(99),
            10,
            0,
            false,
        );
        prop_assert_eq!(view.get(NodeId(node)).unwrap().age, age_a.min(age_b));
    }

    /// The backlog never exceeds capacity, never duplicates, and never
    /// drops below Π publics as long as Π publics were ever inserted and
    /// the capacity allows.
    #[test]
    fn backlog_invariants(
        ops in proptest::collection::vec((0u64..30, any::<bool>()), 1..60),
        cap in 1usize..12,
        pi in 0usize..4,
    ) {
        prop_assume!(pi <= cap);
        let mut cb = ConnectionBacklog::new(cap);
        let mut max_p_inserted = 0usize;
        for (node, public) in ops {
            cb.insert(CbEntry { node: NodeId(node), public, key: None }, pi);
            let distinct_p: std::collections::HashSet<_> =
                cb.iter().filter(|e| e.public).map(|e| e.node).collect();
            max_p_inserted = max_p_inserted.max(distinct_p.len());
            prop_assert!(cb.len() <= cap);
            let mut seen = std::collections::HashSet::new();
            for e in cb.iter() {
                prop_assert!(seen.insert(e.node));
            }
        }
        // Protection: once the CB held k ≤ Π publics, evictions never
        // push it below min(k, Π) while the rest of the queue has
        // N-nodes to evict instead.
        prop_assert!(cb.p_count() <= cap);
    }

    /// Message decoding is total on arbitrary bytes.
    #[test]
    fn nylon_msg_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = NylonMsg::from_wire(&bytes);
    }

    /// Entry decoding is total on arbitrary bytes.
    #[test]
    fn view_entry_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = ViewEntry::from_wire(&bytes);
    }
}
