//! Validates that hole punching *emerges* correctly from the packet-level
//! NAT emulation: for every pair of NAT types, the Nylon open handshake
//! must establish a direct channel exactly when the theoretical matrix
//! (`can_hole_punch`) says it can — and must still deliver the payload via
//! the relay fallback when it cannot.

use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;
use whisper_crypto::rsa::KeyPair;
use whisper_net::nat::{can_hole_punch, NatType};
use whisper_net::sim::{Sim, SimConfig};
use whisper_pss::{NylonConfig, NylonCore, NylonNode};

/// Sets up: one public rendezvous/bootstrap node plus nodes A and B behind
/// the given NAT types. Lets them gossip until both have talked to the RV
/// (so the RV can relay/coordinate), then has A send an app payload to B
/// with the RV as the route hint. Returns (payload delivered, direct
/// channel established at A).
fn try_pair(nat_a: NatType, nat_b: NatType, seed: u64) -> (bool, bool) {
    let cfg = NylonConfig::default();
    let mut keyrng = StdRng::seed_from_u64(seed);
    let mut sim = Sim::new(SimConfig::cluster(seed));

    let mk = |rng: &mut StdRng| NylonCore::new(cfg.clone(), KeyPair::generate(cfg.rsa, rng));
    let rv = sim.add_node(Box::new(NylonNode::new(mk(&mut keyrng))), NatType::Public);
    let mut core_a = mk(&mut keyrng);
    core_a.set_bootstrap(vec![rv]);
    let a = sim.add_node(Box::new(NylonNode::new(core_a)), nat_a);
    let mut core_b = mk(&mut keyrng);
    core_b.set_bootstrap(vec![rv]);
    let b = sim.add_node(Box::new(NylonNode::new(core_b)), nat_b);

    // A few gossip cycles: everyone talks to the RV; A and B have open
    // associations towards it and the RV has contacts for both.
    sim.run_for_secs(45);

    // A sends to B through the rendezvous chain [rv].
    sim.with_node_ctx::<NylonNode>(a, |node, ctx| {
        node.core_mut()
            .send_app(ctx, b, false, &[rv], b"punch me".to_vec());
    });
    sim.run_for_secs(10);

    let delivered = sim
        .node::<NylonNode>(b)
        .map(|n| n.payloads_received() > 0)
        .unwrap_or(false);
    // Direct channel: after the handshake, A holds a working contact for
    // B that did not come from the relay path.
    let punched = sim.metrics().counter("pss.open_punch_ok") > 0;
    (delivered, punched)
}

#[test]
fn punching_outcomes_match_theory_for_all_nat_pairs() {
    let natted = NatType::NATTED;
    for (i, &nat_a) in natted.iter().enumerate() {
        for (j, &nat_b) in natted.iter().enumerate() {
            let seed = 1000 + (i * 4 + j) as u64;
            let (delivered, punched) = try_pair(nat_a, nat_b, seed);
            let expected = can_hole_punch(nat_a, nat_b);
            assert!(
                delivered,
                "{nat_a:?} → {nat_b:?}: payload must arrive (punch or relay)"
            );
            assert_eq!(
                punched, expected,
                "{nat_a:?} → {nat_b:?}: emergent punching disagrees with theory"
            );
        }
    }
}

#[test]
fn public_targets_never_need_punching() {
    for (i, &nat_a) in NatType::NATTED.iter().enumerate() {
        let (delivered, _) = try_pair(nat_a, NatType::Public, 2000 + i as u64);
        assert!(delivered, "{nat_a:?} → Public must deliver");
    }
}

#[test]
fn relay_fallback_carries_traffic_for_symmetric_pairs() {
    // Symmetric ↔ symmetric cannot punch; the RV must relay the payload.
    let cfg = NylonConfig::default();
    let mut keyrng = StdRng::seed_from_u64(7777);
    let mut sim = Sim::new(SimConfig::cluster(7777));
    let mk = |rng: &mut StdRng| NylonCore::new(cfg.clone(), KeyPair::generate(cfg.rsa, rng));
    let rv = sim.add_node(Box::new(NylonNode::new(mk(&mut keyrng))), NatType::Public);
    let mut core_a = mk(&mut keyrng);
    core_a.set_bootstrap(vec![rv]);
    let a = sim.add_node(Box::new(NylonNode::new(core_a)), NatType::Symmetric);
    let mut core_b = mk(&mut keyrng);
    core_b.set_bootstrap(vec![rv]);
    let b = sim.add_node(Box::new(NylonNode::new(core_b)), NatType::Symmetric);
    sim.run_for_secs(45);

    sim.with_node_ctx::<NylonNode>(a, |node, ctx| {
        node.core_mut().send_app(ctx, b, false, &[rv], b"via relay".to_vec());
    });
    sim.run_for_secs(10);

    assert_eq!(
        sim.node::<NylonNode>(b).unwrap().payloads_received(),
        1,
        "payload must arrive via the relay"
    );
    assert!(sim.metrics().counter("pss.open_relay_fallback") >= 1);
    assert!(
        sim.metrics().counter("pss.relayed_forwarded") >= 1,
        "the RV actually forwarded content"
    );
    assert_eq!(sim.metrics().counter("pss.open_punch_ok"), 0);
}
