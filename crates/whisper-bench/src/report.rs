//! Plot-style text output shared by all experiment binaries: headers,
//! CDF tables and stacked-percentile rows formatted like the paper's
//! figures.

use whisper_net::stats::Cdf;

/// Prints an experiment banner.
pub fn banner(id: &str, what: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

/// Prints a sub-section header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints a CDF as `value fraction` pairs (gnuplot-ready), labelled.
pub fn cdf(label: &str, samples: &mut Cdf, points: usize) {
    if samples.is_empty() {
        println!("{label}: (no samples)");
        return;
    }
    println!(
        "{label}: n={} min={:.4} p25={:.4} median={:.4} p75={:.4} p90={:.4} max={:.4}",
        samples.len(),
        samples.min(),
        samples.percentile(25.0),
        samples.median(),
        samples.percentile(75.0),
        samples.percentile(90.0),
        samples.max(),
    );
    print!("  cdf:");
    for (v, f) in samples.points(points) {
        print!(" ({v:.4},{f:.2})");
    }
    println!();
}

/// Prints a Fig. 8-style stacked-percentile row.
pub fn stacked(label: &str, samples: &mut Cdf) {
    if samples.is_empty() {
        println!("{label:<26} (no samples)");
        return;
    }
    let [p5, p25, p50, p75, p90] = samples.stacked_percentiles();
    println!(
        "{label:<26} p5={p5:>10.2} p25={p25:>10.2} p50={p50:>10.2} p75={p75:>10.2} p90={p90:>10.2}"
    );
}

/// Prints a labelled row of numeric columns.
pub fn row(label: &str, values: &[(&str, f64)]) {
    print!("{label:<26}");
    for (name, v) in values {
        print!(" {name}={v:>10.3}");
    }
    println!();
}
