//! Experiment harness for the WHISPER reproduction.
//!
//! One binary per table/figure of the paper's evaluation (§V):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig5_biased_pss` | Fig. 5 — biased PSS: clustering + in-degree |
//! | `fig6_key_bandwidth` | Fig. 6 — key sampling bandwidth |
//! | `table1_churn_routes` | Table I — WCL route success under churn |
//! | `fig7_rtt_breakdown` | Fig. 7 — PPSS exchange RTT breakdown |
//! | `table2_cpu_costs` | Table II — AES/RSA CPU per PPSS cycle |
//! | `fig8_groups_bandwidth` | Fig. 8 — bandwidth vs. groups joined |
//! | `fig9_tchord` | Fig. 9 — private T-Chord routing delays |
//! | `ablation_path_length` | §III-A footnote — longer onion paths |
//! | `ablation_cb_size` | §III-A — connection backlog sizing |
//! | `all_experiments` | everything above, in sequence |
//!
//! Run them in release mode, e.g.
//! `cargo run --release -p whisper-bench --bin fig5_biased_pss`.
//!
//! This library holds the shared scaffolding: deterministic population
//! builders, group formation, bandwidth reporting and plot-style output.

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{NetBuilder, WhisperNet};
