//! Shared experiment scaffolding: deterministic population builders and
//! group formation.

use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};
use whisper_core::{GroupApp, GroupId, WhisperConfig, WhisperNode};
use whisper_crypto::rsa::{KeyPair, RsaKeySize};
use whisper_net::nat::{NatDistribution, NatType};
use whisper_net::sim::{Sim, SimConfig};
use whisper_net::NodeId;
use whisper_pss::{NylonConfig, NylonCore, NylonNode};

/// Generates `count` key pairs deterministically, in parallel across CPU
/// cores. Key `i` depends only on `(seed, i)`, so the result is identical
/// regardless of thread scheduling.
pub fn gen_keys_parallel(count: usize, size: RsaKeySize, seed: u64) -> Vec<KeyPair> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(count.max(1));
    let mut out: Vec<Option<KeyPair>> = vec![None; count];
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, s) in slot.iter_mut().enumerate() {
                    let idx = t * chunk + i;
                    let mut rng = StdRng::for_stream(seed, idx as u64);
                    *s = Some(KeyPair::generate(size, &mut rng));
                }
            });
        }
    });
    out.into_iter().map(|k| k.expect("filled")).collect()
}

/// Declarative description of a simulated population.
#[derive(Clone, Debug)]
pub struct NetBuilder {
    /// Number of nodes (including bootstraps).
    pub nodes: usize,
    /// Number of public bootstrap nodes (at least 1).
    pub bootstraps: usize,
    /// Fraction of public nodes among non-bootstrap nodes.
    pub public_ratio: f64,
    /// Engine + environment configuration.
    pub sim: SimConfig,
    /// Protocol stack configuration.
    pub whisper: WhisperConfig,
    /// Seed for key generation (distinct from the engine seed).
    pub key_seed: u64,
    /// Generate at most this many distinct key pairs and cycle them
    /// across the population (`None` = one key per node). Scale-out
    /// sweeps set this: RSA keygen is O(nodes) and would dominate a
    /// 10k-node build, while throughput runs only need *plausible* keys,
    /// not unique ones.
    pub key_cycle: Option<usize>,
}

impl NetBuilder {
    /// The paper's defaults on a cluster profile.
    pub fn cluster(nodes: usize, seed: u64) -> Self {
        NetBuilder {
            nodes,
            bootstraps: 2,
            public_ratio: 0.30,
            sim: SimConfig::cluster(seed),
            whisper: WhisperConfig::default(),
            key_seed: seed ^ 0x4B45_5953, // "KEYS"
            key_cycle: None,
        }
    }

    /// Generates the population's key material, honouring
    /// [`NetBuilder::key_cycle`].
    fn population_keys(&self, size: RsaKeySize) -> Vec<KeyPair> {
        let distinct = self.key_cycle.unwrap_or(self.nodes).min(self.nodes).max(1);
        let keys = gen_keys_parallel(distinct, size, self.key_seed);
        (0..self.nodes).map(|i| keys[i % distinct].clone()).collect()
    }

    /// The paper's defaults on the PlanetLab profile.
    pub fn planetlab(nodes: usize, seed: u64) -> Self {
        NetBuilder { sim: SimConfig::planetlab(seed), ..NetBuilder::cluster(nodes, seed) }
    }

    /// Builds a network of plain PSS nodes ([`NylonNode`]) — used by the
    /// Fig. 5 / Fig. 6 experiments that evaluate the PSS layer alone.
    pub fn build_pss(&self, nylon_cfg: &NylonConfig) -> PssNet {
        let keys = self.population_keys(nylon_cfg.rsa);
        // The builder knows the population size, so the engine can
        // pre-reserve per-shard arenas and scheduler buckets up front.
        let mut sim = Sim::new(self.sim.clone().with_expected_nodes(self.nodes));
        let dist = NatDistribution::with_public_ratio(self.public_ratio);
        let mut ids = Vec::with_capacity(self.nodes);
        for (i, key) in keys.into_iter().enumerate() {
            let mut core = NylonCore::new(nylon_cfg.clone(), key);
            let nat = if i < self.bootstraps {
                NatType::Public
            } else {
                dist.sample(sim.rng())
            };
            if i >= self.bootstraps {
                core.set_bootstrap((0..self.bootstraps as u64).map(NodeId).collect());
            } else {
                core.set_bootstrap(
                    (0..self.bootstraps as u64)
                        .map(NodeId)
                        .filter(|n| n.0 != i as u64)
                        .collect(),
                );
            }
            ids.push(sim.add_node(Box::new(NylonNode::new(core)), nat));
        }
        PssNet { sim, ids }
    }

    /// Builds a network of full WHISPER stacks, with an app plugin per
    /// node supplied by `make_app`.
    pub fn build_whisper(
        &self,
        make_app: impl Fn(usize) -> Box<dyn GroupApp>,
    ) -> WhisperNet {
        let keys = self.population_keys(self.whisper.nylon.rsa);
        let mut sim = Sim::new(self.sim.clone().with_expected_nodes(self.nodes));
        let dist = NatDistribution::with_public_ratio(self.public_ratio);
        let mut ids = Vec::with_capacity(self.nodes);
        for (i, key) in keys.into_iter().enumerate() {
            let mut node = WhisperNode::with_app(self.whisper.clone(), key, make_app(i));
            let nat = if i < self.bootstraps {
                NatType::Public
            } else {
                dist.sample(sim.rng())
            };
            if i >= self.bootstraps {
                node.nylon_mut()
                    .set_bootstrap((0..self.bootstraps as u64).map(NodeId).collect());
            } else {
                node.nylon_mut().set_bootstrap(
                    (0..self.bootstraps as u64)
                        .map(NodeId)
                        .filter(|n| n.0 != i as u64)
                        .collect(),
                );
            }
            ids.push(sim.add_node(Box::new(node), nat));
        }
        WhisperNet { sim, ids, builder: self.clone() }
    }
}

/// A running PSS-only population.
pub struct PssNet {
    /// The simulator.
    pub sim: Sim,
    /// All node ids in creation order (bootstraps first).
    pub ids: Vec<NodeId>,
}

impl PssNet {
    /// Ids of live public nodes.
    pub fn publics(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| self.sim.nat_type(*id).is_some_and(|t| t.is_public()))
            .collect()
    }

    /// Ids of live NATted nodes.
    pub fn natted(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| self.sim.nat_type(*id).is_some_and(|t| !t.is_public()))
            .collect()
    }
}

/// A running full-stack population.
pub struct WhisperNet {
    /// The simulator.
    pub sim: Sim,
    /// All node ids in creation order (bootstraps first).
    pub ids: Vec<NodeId>,
    /// The builder that produced this network (for spawning replacements
    /// under churn).
    pub builder: NetBuilder,
}

impl WhisperNet {
    /// Ids of live public nodes.
    pub fn publics(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| self.sim.nat_type(*id).is_some_and(|t| t.is_public()))
            .collect()
    }

    /// Ids of live NATted nodes.
    pub fn natted(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| self.sim.nat_type(*id).is_some_and(|t| !t.is_public()))
            .collect()
    }

    /// Live node ids.
    pub fn live(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| self.sim.contains(*id))
            .collect()
    }

    /// Creates one group per leader (leaders must be live members of the
    /// network) and returns the group ids.
    pub fn create_groups(&mut self, leaders: &[NodeId], prefix: &str) -> Vec<GroupId> {
        let mut groups = Vec::with_capacity(leaders.len());
        for (i, &leader) in leaders.iter().enumerate() {
            let name = format!("{prefix}-{i}");
            let mut gid = GroupId::from_name(&name);
            self.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
                gid = node.create_group(ctx, &name);
            });
            groups.push(gid);
        }
        groups
    }

    /// Makes `member` join `group` using an invitation from `leader`.
    /// Returns `false` when the leader is gone or not a leader.
    pub fn join(&mut self, leader: NodeId, group: GroupId, member: NodeId) -> bool {
        let Some(node) = self.sim.node::<WhisperNode>(leader) else {
            return false;
        };
        let Some(invitation) = node.invite(group, member) else {
            return false;
        };
        self.sim.with_node_ctx::<WhisperNode>(member, |node, ctx| {
            node.join_group(ctx, invitation);
        })
    }

    /// Number of live members of `group`.
    pub fn member_count(&self, group: GroupId) -> usize {
        self.live()
            .into_iter()
            .filter(|id| {
                self.sim
                    .node::<WhisperNode>(*id)
                    .is_some_and(|n| n.ppss().group(group).is_some())
            })
            .count()
    }

    /// Spawns a fresh node (used as a churn replacement), optionally
    /// joining `join_spec = (leader, group)` once started.
    pub fn spawn_node(
        &mut self,
        key_rng: &mut StdRng,
        join_spec: Option<(NodeId, GroupId)>,
    ) -> NodeId {
        let cfg = &self.builder.whisper;
        let key = KeyPair::generate(cfg.nylon.rsa, key_rng);
        let mut node = WhisperNode::new(cfg.clone(), key);
        node.nylon_mut()
            .set_bootstrap((0..self.builder.bootstraps as u64).map(NodeId).collect());
        let dist = NatDistribution::with_public_ratio(self.builder.public_ratio);
        let nat = dist.sample(self.sim.rng());
        let id = self.sim.add_node(Box::new(node), nat);
        self.ids.push(id);
        if let Some((leader, group)) = join_spec {
            self.join(leader, group, id);
        }
        id
    }

    /// Distributes the non-bootstrap population over `groups`: node `i`
    /// joins `per_node` groups chosen deterministically. Returns the
    /// membership map (group index → members).
    pub fn subscribe_members(
        &mut self,
        leaders: &[NodeId],
        groups: &[GroupId],
        per_node: usize,
        seed: u64,
    ) -> Vec<Vec<NodeId>> {
        let mut membership = vec![Vec::new(); groups.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let candidates: Vec<NodeId> = self
            .live()
            .into_iter()
            .filter(|id| id.0 >= self.builder.bootstraps as u64 && !leaders.contains(id))
            .collect();
        for member in candidates {
            let mut picks: Vec<usize> = (0..groups.len()).collect();
            for k in 0..per_node.min(groups.len()) {
                let j = rng.gen_range(k..picks.len());
                picks.swap(k, j);
                let gi = picks[k];
                if self.join(leaders[gi], groups[gi], member) {
                    membership[gi].push(member);
                }
            }
        }
        membership
    }
}
