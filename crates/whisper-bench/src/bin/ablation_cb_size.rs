//! Binary wrapper; see `whisper_bench::experiments::ablation_cb_size`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, ablation_cb_size};

fn main() {
    let params = if experiments::quick_flag() { ablation_cb_size::Params::quick() } else { ablation_cb_size::Params::paper() };
    ablation_cb_size::run(&params);
}
