//! Binary wrapper; see `whisper_bench::experiments::fig5`.
//! Flags:
//! * `--quick` — smoke-test scale;
//! * `--no-oldest-p-discard` — ablation: protect P-node slots by
//!   seniority instead of freshness;
//! * `--nodes N` / `--shards S` — override the population size and the
//!   engine shard count (DESIGN.md §12); with `--scale` they restrict
//!   the sweep to the single `(N, S)` cell;
//! * `--scale` — run the scale-out sweep (PSS-only nodes-per-second
//!   curve, 384→1M nodes × 1/2/4/8 shards) instead of Fig. 5;
//! * `--sched heap|wheel` — with `--scale`, pick the event scheduler
//!   (reference binary heap vs calendar wheel; DESIGN.md §14) for a
//!   trace-invariant throughput A/B;
//! * `--reps N` — with `--scale`, time each cell N times and keep the
//!   best run (suppresses shared-host noise);
//! * `--prof` — with `--scale`, run one extra untimed repetition of
//!   each cell with the scoped hot-path profiler on (DESIGN.md §16)
//!   and record the per-bucket breakdown as `prof/...` rows;
//! * `--max-allocs-per-send X` — with `--scale`, exit non-zero if any
//!   cell's allocs-per-send exceeds X (the verify.sh regression gate);
//! * `--allocs` — run the payload-pool A/B (heap allocations per send,
//!   pooling on vs off; DESIGN.md §13) instead of Fig. 5.

use whisper_bench::experiments::{self, fig5, scaling};
use whisper_net::sched::Scheduler;

fn main() {
    let quick = experiments::quick_flag();
    let scale = std::env::args().any(|a| a == "--scale");
    let allocs = std::env::args().any(|a| a == "--allocs");
    if scale || allocs {
        let mut params = if quick { scaling::Params::quick() } else { scaling::Params::paper() };
        if let Some(nodes) = experiments::arg_value("--nodes") {
            params.nodes = vec![nodes];
        }
        if let Some(shards) = experiments::arg_value("--shards") {
            params.shards = vec![shards];
        }
        if let Some(s) = experiments::arg_str("--sched") {
            params.sched = Scheduler::parse(&s).expect("--sched takes `heap` or `wheel`");
        }
        if let Some(reps) = experiments::arg_value("--reps") {
            params.reps = reps;
        }
        params.prof = std::env::args().any(|a| a == "--prof");
        if let Some(max) = experiments::arg_str("--max-allocs-per-send") {
            params.max_allocs_per_send =
                Some(max.parse().expect("--max-allocs-per-send takes a number"));
        }
        if allocs {
            scaling::run_allocs(&params);
        } else {
            scaling::run(scaling::Stack::Pss, &params);
        }
        return;
    }
    let mut params = if quick { fig5::Params::quick() } else { fig5::Params::paper() };
    if std::env::args().any(|a| a == "--no-oldest-p-discard") {
        params.oldest_p_discard = false;
    }
    if let Some(nodes) = experiments::arg_value("--nodes") {
        params.nodes = nodes;
    }
    if let Some(shards) = experiments::arg_value("--shards") {
        params.shards = shards;
    }
    fig5::run(&params);
}
