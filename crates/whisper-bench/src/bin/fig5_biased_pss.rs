//! Binary wrapper; see `whisper_bench::experiments::fig5`.
//! Flags: `--quick` (smoke-test scale), `--no-oldest-p-discard`
//! (ablation: protect P-node slots by seniority instead of freshness).

use whisper_bench::experiments::{self, fig5};

fn main() {
    let mut params =
        if experiments::quick_flag() { fig5::Params::quick() } else { fig5::Params::paper() };
    if std::env::args().any(|a| a == "--no-oldest-p-discard") {
        params.oldest_p_discard = false;
    }
    fig5::run(&params);
}
