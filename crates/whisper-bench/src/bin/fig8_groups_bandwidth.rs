//! Binary wrapper; see `whisper_bench::experiments::fig8`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, fig8};

fn main() {
    let params = if experiments::quick_flag() { fig8::Params::quick() } else { fig8::Params::paper() };
    fig8::run(&params);
}
