//! Binary wrapper; see `whisper_bench::experiments::table2`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, table2};

fn main() {
    let params = if experiments::quick_flag() { table2::Params::quick() } else { table2::Params::paper() };
    table2::run(&params);
}
