//! Binary wrapper; see `whisper_bench::experiments::lifecycle`.
//! Flags:
//! * `--quick` — 96-node smoke population instead of the 1000-node /
//!   4-shard acceptance population;
//! * `--seed N` — override the scenario seed (default 7, the first
//!   entry of the verify.sh acceptance matrix).
//!
//! Metrics land in the `WHISPER_BENCH_JSON` merge file (when set) under
//! `lifecycle/...` ids.

use whisper_bench::experiments::{self, lifecycle};

fn main() {
    let quick = experiments::quick_flag();
    let seed = experiments::arg_value("--seed").map(|s| s as u64).unwrap_or(7);
    lifecycle::run(quick, seed);
}
