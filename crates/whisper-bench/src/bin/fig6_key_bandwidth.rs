//! Binary wrapper; see `whisper_bench::experiments::fig6`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, fig6};

fn main() {
    let params = if experiments::quick_flag() { fig6::Params::quick() } else { fig6::Params::paper() };
    fig6::run(&params);
}
