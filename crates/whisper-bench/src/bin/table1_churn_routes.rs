//! Binary wrapper; see `whisper_bench::experiments::table1`.
//! Flags:
//! * `--quick` — fast smoke-test configuration;
//! * `--faults` — run only the fault-plan extension (burst loss /
//!   partition, adaptive vs. fixed RTO; medians land in
//!   `WHISPER_BENCH_JSON` when set);
//! * `--nodes N` / `--shards S` — override the population size and the
//!   engine shard count (DESIGN.md §12); with `--scale` they restrict
//!   the sweep to the single `(N, S)` cell;
//! * `--scale` — run the scale-out sweep (full-stack nodes-per-second
//!   curve, 384→1M nodes × 1/2/4/8 shards) instead of Table I;
//! * `--sched heap|wheel` — with `--scale`, pick the event scheduler
//!   (reference binary heap vs calendar wheel; DESIGN.md §14) for a
//!   trace-invariant throughput A/B;
//! * `--reps N` — with `--scale`, time each cell N times and keep the
//!   best run (suppresses shared-host noise);
//! * `--prof` — with `--scale`, add one untimed profiled repetition
//!   per cell recording the `prof/...` bucket rows (DESIGN.md §16);
//! * `--max-allocs-per-send X` — with `--scale`, exit non-zero if any
//!   cell exceeds X allocs/send.

use whisper_bench::experiments::{self, scaling, table1};
use whisper_net::sched::Scheduler;

fn main() {
    let quick = experiments::quick_flag();
    if std::env::args().any(|a| a == "--scale") {
        let mut params = if quick { scaling::Params::quick() } else { scaling::Params::paper() };
        if let Some(nodes) = experiments::arg_value("--nodes") {
            params.nodes = vec![nodes];
        }
        if let Some(shards) = experiments::arg_value("--shards") {
            params.shards = vec![shards];
        }
        if let Some(s) = experiments::arg_str("--sched") {
            params.sched = Scheduler::parse(&s).expect("--sched takes `heap` or `wheel`");
        }
        if let Some(reps) = experiments::arg_value("--reps") {
            params.reps = reps;
        }
        params.prof = std::env::args().any(|a| a == "--prof");
        if let Some(max) = experiments::arg_str("--max-allocs-per-send") {
            params.max_allocs_per_send =
                Some(max.parse().expect("--max-allocs-per-send takes a number"));
        }
        scaling::run(scaling::Stack::Whisper, &params);
        return;
    }
    let faults_only = std::env::args().any(|a| a == "--faults");
    if !faults_only {
        let mut params = if quick { table1::Params::quick() } else { table1::Params::paper() };
        if let Some(nodes) = experiments::arg_value("--nodes") {
            params.nodes = nodes;
        }
        if let Some(shards) = experiments::arg_value("--shards") {
            params.shards = shards;
        }
        table1::run(&params);
    }
    table1::run_fault_scenarios(quick, 7);
}
