//! Binary wrapper; see `whisper_bench::experiments::table1`.
//! Pass `--quick` for a fast smoke-test configuration, `--faults` to run
//! only the fault-plan extension (burst loss / partition, adaptive vs.
//! fixed RTO; medians land in `WHISPER_BENCH_JSON` when set).

use whisper_bench::experiments::{self, table1};

fn main() {
    let quick = experiments::quick_flag();
    let faults_only = std::env::args().any(|a| a == "--faults");
    if !faults_only {
        let params = if quick { table1::Params::quick() } else { table1::Params::paper() };
        table1::run(&params);
    }
    table1::run_fault_scenarios(quick, 7);
}
