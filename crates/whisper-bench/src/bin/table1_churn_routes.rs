//! Binary wrapper; see `whisper_bench::experiments::table1`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, table1};

fn main() {
    let params = if experiments::quick_flag() { table1::Params::quick() } else { table1::Params::paper() };
    table1::run(&params);
}
