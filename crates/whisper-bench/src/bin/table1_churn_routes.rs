//! Binary wrapper; see `whisper_bench::experiments::table1`.
//! Flags:
//! * `--quick` — fast smoke-test configuration;
//! * `--faults` — run only the fault-plan extension (burst loss /
//!   partition, adaptive vs. fixed RTO; medians land in
//!   `WHISPER_BENCH_JSON` when set);
//! * `--nodes N` / `--shards S` — override the population size and the
//!   engine shard count (DESIGN.md §12); with `--scale` they restrict
//!   the sweep to the single `(N, S)` cell;
//! * `--scale` — run the scale-out sweep (full-stack nodes-per-second
//!   curve, 384→100k nodes × 1/2/4/8 shards) instead of Table I.

use whisper_bench::experiments::{self, scaling, table1};

fn main() {
    let quick = experiments::quick_flag();
    if std::env::args().any(|a| a == "--scale") {
        let mut params = if quick { scaling::Params::quick() } else { scaling::Params::paper() };
        if let Some(nodes) = experiments::arg_value("--nodes") {
            params.nodes = vec![nodes];
        }
        if let Some(shards) = experiments::arg_value("--shards") {
            params.shards = vec![shards];
        }
        scaling::run(scaling::Stack::Whisper, &params);
        return;
    }
    let faults_only = std::env::args().any(|a| a == "--faults");
    if !faults_only {
        let mut params = if quick { table1::Params::quick() } else { table1::Params::paper() };
        if let Some(nodes) = experiments::arg_value("--nodes") {
            params.nodes = nodes;
        }
        if let Some(shards) = experiments::arg_value("--shards") {
            params.shards = shards;
        }
        table1::run(&params);
    }
    table1::run_fault_scenarios(quick, 7);
}
