//! Binary wrapper; see `whisper_bench::experiments::ablation_path_length`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, ablation_path_length};

fn main() {
    let params = if experiments::quick_flag() { ablation_path_length::Params::quick() } else { ablation_path_length::Params::paper() };
    ablation_path_length::run(&params);
}
