//! Runs every table/figure experiment in sequence, producing the full
//! output recorded in `EXPERIMENTS.md`. Pass `--quick` for the
//! smoke-test variants.

use whisper_bench::experiments::{self, *};

fn main() {
    let quick = experiments::quick_flag();
    macro_rules! go {
        ($m:ident) => {
            if quick {
                $m::run(&$m::Params::quick())
            } else {
                $m::run(&$m::Params::paper())
            }
        };
    }
    go!(fig5);
    go!(fig6);
    go!(table1);
    go!(fig7);
    go!(table2);
    go!(fig8);
    go!(fig9);
    go!(ablation_path_length);
    go!(ablation_cb_size);
}
