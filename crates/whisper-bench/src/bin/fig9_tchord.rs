//! Binary wrapper; see `whisper_bench::experiments::fig9`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, fig9};

fn main() {
    let params = if experiments::quick_flag() { fig9::Params::quick() } else { fig9::Params::paper() };
    fig9::run(&params);
}
