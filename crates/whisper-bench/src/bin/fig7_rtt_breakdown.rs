//! Binary wrapper; see `whisper_bench::experiments::fig7`.
//! Pass `--quick` for a fast smoke-test configuration.

use whisper_bench::experiments::{self, fig7};

fn main() {
    let params = if experiments::quick_flag() { fig7::Params::quick() } else { fig7::Params::paper() };
    fig7::run(&params);
}
