//! Fig. 5 — Biased PSS: impact of enforcing Π P-nodes on the clustering
//! coefficient and the in-degree distributions of N- and P-nodes.
//!
//! Paper setting: 1,000 nodes on the cluster, view size c = 10, 70%
//! NATted, Π ∈ {0 (unmodified PSS), 1, 2, 3}.

use crate::harness::NetBuilder;
use crate::report;
use whisper_net::stats::Cdf;
use whisper_pss::graph::OverlaySnapshot;
use whisper_pss::{NylonConfig, NylonNode};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Simulated seconds (the paper lets the PSS converge; 30+ cycles).
    pub secs: u64,
    /// Engine seed.
    pub seed: u64,
    /// Π values to sweep.
    pub pis: Vec<usize>,
    /// Whether to apply the oldest-P-discard bias (ablation: disable).
    pub oldest_p_discard: bool,
    /// Engine shard count (performance knob only; DESIGN.md §12).
    pub shards: usize,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            nodes: 1000,
            secs: 400,
            seed: 5,
            pis: vec![0, 1, 2, 3],
            oldest_p_discard: true,
            shards: 1,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 150, secs: 250, ..Params::paper() }
    }
}

/// Runs the experiment and prints Fig. 5-style output.
pub fn run(params: &Params) {
    report::banner(
        "Figure 5",
        "biased PSS: clustering coefficient and in-degree distributions",
    );
    println!(
        "nodes={} secs={} view=c=10 oldest_p_discard={}",
        params.nodes, params.secs, params.oldest_p_discard
    );
    for &pi in &params.pis {
        let mut cfg = NylonConfig::with_pi(pi);
        cfg.oldest_p_discard = params.oldest_p_discard;
        let mut builder = NetBuilder::cluster(params.nodes, params.seed);
        builder.sim = builder.sim.clone().with_shards(params.shards);
        let mut net = builder.build_pss(&cfg);
        net.sim.run_for_secs(params.secs);

        let snap = OverlaySnapshot::new(
            net.ids
                .iter()
                .filter(|id| net.sim.contains(**id))
                .map(|id| {
                    let n: &NylonNode = net.sim.node(*id).expect("live");
                    (*id, n.core().view().nodes().collect())
                })
                .collect(),
        );
        let publics = net.publics();
        let natted = net.natted();

        report::section(&format!("Π = {pi}"));
        let cc = snap.clustering_coefficients();
        let mut cc_all = Cdf::from_samples(cc.values().copied());
        report::cdf("local clustering coefficient (all nodes)", &mut cc_all, 11);

        let in_deg = snap.in_degrees();
        let mut deg_n = Cdf::from_samples(
            natted.iter().map(|id| *in_deg.get(id).unwrap_or(&0) as f64),
        );
        let mut deg_p = Cdf::from_samples(
            publics.iter().map(|id| *in_deg.get(id).unwrap_or(&0) as f64),
        );
        report::cdf("in-degree (N-nodes)", &mut deg_n, 11);
        report::cdf("in-degree (P-nodes)", &mut deg_p, 11);
        if std::env::var("FIG5_DEBUG").is_ok() {
            dump_counters(&net);
        }
        report::row(
            "summary",
            &[
                ("mean_cc", snap.mean_clustering()),
                ("mean_indeg_N", deg_n.mean()),
                ("mean_indeg_P", deg_p.mean()),
                (
                    "p_in_views_avg",
                    net.ids
                        .iter()
                        .filter_map(|id| net.sim.node::<NylonNode>(*id))
                        .map(|n| n.core().view().p_count() as f64)
                        .sum::<f64>()
                        / net.ids.len() as f64,
                ),
            ],
        );
    }
}

/// Diagnostic dump of class-tagged PSS counters (debugging aid).
pub fn dump_counters(net: &crate::harness::PssNet) {
    for name in ["pss.partner_public", "pss.partner_natted",
                 "pss.timeout_removed_public", "pss.timeout_removed_natted",
                 "pss.sendfail_removed_public", "pss.sendfail_removed_natted",
                 "pss.gossip_initiated", "pss.gossip_completed"] {
        println!("  {name} = {}", net.sim.metrics().counter(name));
    }
}
