//! Group-lifecycle robustness sweep (DESIGN.md §15): descriptor
//! propagation latency and journal recovery while groups are created,
//! joined, migrated and deleted under a partition and a staggered
//! crash/restart wave.
//!
//! Not a paper figure — this is reproduction-hardening evidence. The
//! cells land in the `WHISPER_BENCH_JSON` merge file under
//! `lifecycle/...` ids (verify.sh writes them to `BENCH_pr9.json`).

use crate::chaos::{run_group_lifecycle, ChaosParams};
use crate::report;
use whisper_rand::bench::Bench;

/// Runs the lifecycle sweep and records propagation-latency and
/// recovery-time metrics. `quick` uses the 96-node smoke population;
/// otherwise the 1000-node / 4-shard acceptance population from
/// `tests/chaos.rs`.
pub fn run(quick: bool, seed: u64) {
    report::banner(
        "Lifecycle",
        "group churn: descriptor propagation + journal recovery under faults",
    );
    let params = if quick {
        ChaosParams::smoke(seed)
    } else {
        ChaosParams {
            nodes: 1000,
            groups: 10,
            shards: 4,
            warmup: 250,
            settle: 90,
            ..ChaosParams::full(seed)
        }
    };
    println!(
        "nodes={} groups={} shards={} seed={}",
        params.nodes, params.groups, params.shards, params.seed
    );
    let out = run_group_lifecycle(&params);
    assert_eq!(out.echo.unattributed, 0, "lifecycle bench: unattributed drops");
    assert_eq!(out.resurrections, 0, "lifecycle bench: deleted group resurrected");
    println!(
        "{:<28} {:>12}",
        "metric", "value"
    );
    let rows: [(&str, f64); 9] = [
        ("delivery_pct", out.echo.delivery_ratio() * 100.0),
        ("desc_prop_p95_s", out.desc_prop_p95_s),
        ("desc_prop_samples", out.desc_prop_samples as f64),
        ("journal_replays", out.journal_replays as f64),
        ("journal_groups_restored", out.journal_restored as f64),
        ("journal_replay_wall_us", out.replay_wall_us_mean),
        ("deleted_groups", out.deleted.len() as f64),
        ("resurrections", out.resurrections as f64),
        ("late_members", out.late_members as f64),
    ];
    let mut bench = Bench::new();
    for (metric, value) in rows {
        println!("{metric:<28} {value:>12.2}");
        bench.record(format!("lifecycle/{metric}"), value);
    }
    bench.emit_json();
}
