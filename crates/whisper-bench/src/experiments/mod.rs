//! One module per paper table/figure; each exposes `run(params)` plus a
//! `Params` type with `paper()` (full scale) and `quick()` (smoke test)
//! constructors. The binaries in `src/bin/` are thin wrappers.

pub mod ablation_cb_size;
pub mod ablation_path_length;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lifecycle;
pub mod scaling;
pub mod table1;
pub mod table2;

/// Reads `--quick` from the process arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Reads a `--flag N` or `--flag=N` numeric argument from the process
/// arguments (e.g. `--nodes 4000`, `--shards=8`).
pub fn arg_value(flag: &str) -> Option<usize> {
    arg_str(flag)?.parse().ok()
}

/// Reads a `--flag VALUE` or `--flag=VALUE` string argument from the
/// process arguments (e.g. `--sched wheel`).
pub fn arg_str(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}
