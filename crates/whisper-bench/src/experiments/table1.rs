//! Table I — Availability of anonymizing routes under churn: the ratio of
//! WCL route constructions that succeed first-hand, succeed over an
//! alternative path, or find no alternative.
//!
//! Paper setting: ~1,000 nodes, 20 private groups (one random group per
//! node), Π = 3, churn rates X ∈ {0, 0.2, 1, 5, 10}% of the network per
//! minute with 100% replacement, following the SPLAY script printed under
//! the table.

use crate::harness::{NetBuilder, WhisperNet};
use crate::report;
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Number of private groups.
    pub groups: usize,
    /// Churn rates in %/minute.
    pub churn_rates: Vec<f64>,
    /// Warm-up before group formation (PSS convergence), seconds.
    pub warmup: u64,
    /// Settling time between group formation and churn start, seconds.
    pub settle: u64,
    /// Churn (and measurement) window, seconds.
    pub churn_window: u64,
    /// Engine seed.
    pub seed: u64,
    /// Engine shard count (performance knob only; DESIGN.md §12).
    pub shards: usize,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            nodes: 1000,
            groups: 20,
            churn_rates: vec![0.0, 0.2, 1.0, 5.0, 10.0],
            warmup: 250,
            settle: 250,
            churn_window: 900,
            seed: 7,
            shards: 1,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params {
            nodes: 200,
            groups: 5,
            churn_rates: vec![0.0, 1.0, 5.0],
            warmup: 250,
            settle: 200,
            churn_window: 300,
            ..Params::paper()
        }
    }
}

struct Ratios {
    success: f64,
    alt: f64,
    no_alt: f64,
    attempts: u64,
    dest_failures: u64,
}

fn run_one(params: &Params, x_percent: f64) -> Ratios {
    let mut builder = NetBuilder::cluster(params.nodes, params.seed);
    builder.sim = builder.sim.clone().with_shards(params.shards);
    let mut net = builder.build_whisper(|_| Box::new(whisper_core::node::NoApp));
    net.sim.run_for_secs(params.warmup);

    // One leader (P-node) per group, as in the paper where each group is
    // created by a P-node.
    let publics = net.publics();
    let leaders: Vec<NodeId> = publics.into_iter().take(params.groups).collect();
    assert!(leaders.len() == params.groups, "not enough P-nodes for leaders");
    let groups = net.create_groups(&leaders, "table1");
    net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x51);
    net.sim.run_for_secs(params.settle);

    // Measure only during the churn window.
    net.sim.metrics_mut().reset_counters_and_samples();

    let mut key_rng = StdRng::seed_from_u64(params.seed ^ 0xC0FFEE);
    let mut group_rng = StdRng::seed_from_u64(params.seed ^ 0x9);
    let leaves_per_min = (params.nodes as f64 * x_percent / 100.0).round() as usize;
    let minutes = params.churn_window / 60;
    let mut protected: Vec<NodeId> = leaders.clone();
    protected.extend((0..net.builder.bootstraps as u64).map(NodeId));
    for _minute in 0..minutes {
        net.sim.run_for_secs(60);
        if leaves_per_min == 0 {
            continue;
        }
        for _ in 0..leaves_per_min {
            let candidates: Vec<NodeId> = net
                .live()
                .into_iter()
                .filter(|id| !protected.contains(id))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let victim = candidates[net.sim.rng().gen_range(0..candidates.len())];
            net.sim.remove_node(victim);
        }
        for _ in 0..leaves_per_min {
            // 100% replacement ratio: each replacement joins one random
            // group once its PSS has warmed up (the PPSS join retries
            // until the leader answers).
            let gi = group_rng.gen_range(0..groups.len());
            net.spawn_node(&mut key_rng, Some((leaders[gi], groups[gi])));
        }
    }
    // Let in-flight retries resolve before reading the counters.
    net.sim.run_for_secs(30);

    extract_ratios(&net)
}

fn extract_ratios(net: &WhisperNet) -> Ratios {
    let m = net.sim.metrics();
    if std::env::var("WHISPER_DEBUG_COUNTERS").is_ok() {
        for name in m.counter_names() {
            println!("    {name} = {}", m.counter(name));
        }
    }
    let first = m.counter("wcl.route_first_success");
    let alt = m.counter("wcl.route_alt_success");
    // The paper's footnote 3 excludes destination failures from the route
    // statistics ("we do not consider that the failure of the destination
    // node is a WCL route failure"). Like the authors, we have ground
    // truth: a failure whose destination has left the network is a
    // destination failure; one whose destination is still alive is a
    // genuine routing failure. (Under 100%-replacement churn node ids are
    // never reused, so liveness-at-end equals liveness-at-failure for
    // departed nodes.)
    let mut no_alt_live = 0u64;
    let mut dest_failures = 0u64;
    for &dest in m.samples("wcl.failed_dest_noalt") {
        if net.sim.contains(whisper_net::NodeId(dest as u64)) {
            no_alt_live += 1;
        } else {
            dest_failures += 1;
        }
    }
    // Exhausted retries (alternatives existed, none answered): the same
    // classification applies.
    let mut exhausted_live = 0u64;
    for &dest in m.samples("wcl.failed_dest_exhausted") {
        if net.sim.contains(whisper_net::NodeId(dest as u64)) {
            exhausted_live += 1;
        } else {
            dest_failures += 1;
        }
    }
    // A live destination that never answered despite exhausting retries
    // counts against the route ("alternative existed but none worked" has
    // no column in the paper's table; we fold it into No alt.).
    let no_alt = no_alt_live + exhausted_live;
    let total = (first + alt + no_alt).max(1);
    Ratios {
        success: first as f64 / total as f64 * 100.0,
        alt: alt as f64 / total as f64 * 100.0,
        no_alt: no_alt as f64 / total as f64 * 100.0,
        attempts: first + alt + no_alt + dest_failures,
        dest_failures,
    }
}

/// Fault-plan extension (PR 4): route availability under scripted burst
/// loss and partitions, with the adaptive RTO against the paper's fixed
/// 2 s retry timer. Records delivery ratio (percent) and mean
/// route-repair latency (milliseconds) per `(scenario, timer)` cell into
/// the `WHISPER_BENCH_JSON` merge file under `chaos/...` ids.
pub fn run_fault_scenarios(quick: bool, seed: u64) {
    use crate::chaos::{run_scenario, ChaosParams, Scenario};
    use whisper_rand::bench::Bench;

    report::banner(
        "Table I ext.",
        "delivery + route repair under scripted faults (adaptive vs. fixed RTO)",
    );
    let base = if quick { ChaosParams::smoke(seed) } else { ChaosParams::full(seed) };
    println!(
        "nodes={} groups={} fault window={}s seed={}",
        base.nodes, base.groups, base.fault_len, base.seed
    );
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>10}",
        "scenario", "timer", "delivery", "repair (ms)", "repairs"
    );
    let mut bench = Bench::new();
    for scenario in [Scenario::BurstLoss, Scenario::Partition] {
        for adaptive in [true, false] {
            let params = ChaosParams { adaptive_rto: adaptive, ..base.clone() };
            let out = run_scenario(scenario, &params);
            assert_eq!(
                out.unattributed, 0,
                "{}: unattributed drops in bench run",
                scenario.name()
            );
            let timer = if adaptive { "adaptive" } else { "fixed" };
            println!(
                "{:<14} {:>10} {:>11.1}% {:>14.1} {:>10}",
                scenario.name(),
                timer,
                out.delivery_ratio() * 100.0,
                out.repair_mean_s() * 1e3,
                out.repair_s.len()
            );
            let id = |metric: &str| format!("chaos/{}_{}_{}", scenario.name(), timer, metric);
            bench.record(id("delivery_pct"), out.delivery_ratio() * 100.0);
            bench.record(id("repair_ms"), out.repair_mean_s() * 1e3);
            bench.record(id("repairs"), out.repair_s.len() as f64);
        }
    }
    bench.emit_json();
}

/// Runs the experiment and prints Table I.
pub fn run(params: &Params) {
    report::banner("Table I", "WCL route construction success under churn");
    println!(
        "nodes={} groups={} Π=3 churn window={}s (script: joins over warmup, set replacement 100%, const churn each 60s, stop)",
        params.nodes, params.groups, params.churn_window
    );
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "churn", "Success", "Alt.", "No alt.", "routes", "dest-fail"
    );
    for &x in &params.churn_rates {
        let label = if x == 0.0 {
            "No churn".to_string()
        } else {
            let per_15min = (params.nodes as f64 * x / 100.0 * 15.0).round();
            format!("X={x}%/min ({per_15min:.0} leave&join/15min)")
        };
        let r = run_one(params, x);
        println!(
            "{:<34} {:>9.2}% {:>9.2}% {:>9.2}% {:>12} {:>12}",
            label, r.success, r.alt, r.no_alt, r.attempts, r.dest_failures
        );
    }
}
