//! Ablation — onion path length. The paper (§III-A, footnote 2) notes
//! that using `f` mixes tolerates `f − 1` colluding mixes; this ablation
//! measures what longer paths cost in exchange latency, route success and
//! bandwidth.

use crate::harness::NetBuilder;
use crate::report;
use whisper_net::stats::Cdf;
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Number of private groups.
    pub groups: usize,
    /// Mix counts to sweep (2 = the paper's `S → A → B → D`).
    pub mixes: Vec<usize>,
    /// Warm-up seconds.
    pub warmup: u64,
    /// Measured seconds.
    pub measure: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// Default configuration.
    pub fn paper() -> Self {
        Params {
            nodes: 300,
            groups: 6,
            mixes: vec![2, 3, 4],
            warmup: 350,
            measure: 300,
            seed: 12,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 120, groups: 3, mixes: vec![2, 3], measure: 180, ..Params::paper() }
    }
}

/// Runs the ablation.
pub fn run(params: &Params) {
    report::banner(
        "Ablation: path length",
        "f mixes tolerate f−1 colluding mixes — at what cost?",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "mixes", "rtt p50 (s)", "rtt p90 (s)", "success %", "KB/exchange", "exchanges"
    );
    for &mixes in &params.mixes {
        let mut builder = NetBuilder::cluster(params.nodes, params.seed);
        builder.whisper.wcl.mixes = mixes;
        let mut net = builder.build_whisper(|_| Box::new(whisper_core::node::NoApp));
        net.sim.run_for_secs(params.warmup);
        let leaders: Vec<NodeId> = net.publics().into_iter().take(params.groups).collect();
        let groups = net.create_groups(&leaders, "ablpath");
        net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x12);
        net.sim.run_for_secs(params.warmup);
        let before = net.sim.metrics().traffic_snapshot();
        net.sim.metrics_mut().reset_counters_and_samples();
        net.sim.run_for_secs(params.measure);
        let after = net.sim.metrics().traffic_snapshot();

        let m = net.sim.metrics();
        let mut rtt = Cdf::from_samples(m.samples("wcl.rtt_s").iter().copied());
        let first = m.counter("wcl.route_first_success");
        let alt = m.counter("wcl.route_alt_success");
        let fails = m.counter("wcl.route_no_alt") + m.counter("wcl.route_exhausted");
        let total = (first + alt + fails).max(1);
        let success = (first + alt) as f64 / total as f64 * 100.0;
        let bytes: u64 = whisper_net::metrics::traffic_delta(&before, &after)
            .values()
            .map(|t| t.up_bytes)
            .sum();
        let exchanges = m.counter("ppss.exchanges_completed").max(1);
        let (p50, p90) = if rtt.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (rtt.median(), rtt.percentile(90.0))
        };
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>12.2} {:>14.2} {:>14}",
            mixes,
            p50,
            p90,
            success,
            bytes as f64 / exchanges as f64 / 1024.0,
            exchanges
        );
    }
    println!("(expected: latency and bandwidth grow with path length; success dips slightly)");
}
