//! Fig. 9 — Routing delays of a private T-Chord DHT: a 60-node group
//! inside a 400-node cluster bootstraps a Chord ring with T-Chord over
//! the PPSS; 350 random queries are routed over confidential WCL paths,
//! with replies returned over a single WCL path using contact info
//! shipped with the query.

use crate::harness::NetBuilder;
use crate::report;
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};
use whisper_apps::chord::{ChordKey, IdealRing};
use whisper_apps::tchord::{TChordApp, TChordConfig};
use whisper_core::{GroupId, WhisperNode};
use whisper_net::stats::Cdf;
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// DHT group size.
    pub group_size: usize,
    /// Number of random queries (the paper routes 350).
    pub queries: usize,
    /// Warm-up + convergence seconds.
    pub converge: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params { nodes: 400, group_size: 60, queries: 350, converge: 1100, seed: 11 }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 120, group_size: 20, queries: 80, converge: 900, ..Params::paper() }
    }
}

/// Runs the experiment and prints Fig. 9-style output.
pub fn run(params: &Params) {
    report::banner("Figure 9", "private T-Chord DHT routing delays (cluster)");
    println!(
        "nodes={} group={} queries={}",
        params.nodes, params.group_size, params.queries
    );
    let group = GroupId::from_name("fig9-0");
    let builder = NetBuilder::cluster(params.nodes, params.seed);
    let mut net = builder
        .build_whisper(move |_| Box::new(TChordApp::new(group, TChordConfig::default())));
    net.sim.run_for_secs(300);

    let leader = net.publics()[net.builder.bootstraps]; // skip bootstraps
    let groups = net.create_groups(&[leader], "fig9");
    let gid = groups[0];
    assert_eq!(gid, group, "group id derivation must be stable");
    let mut members: Vec<NodeId> = vec![leader];
    for &id in net.ids.clone().iter() {
        if members.len() >= params.group_size {
            break;
        }
        if id.0 >= net.builder.bootstraps as u64 && id != leader {
            net.join(leader, gid, id);
            members.push(id);
        }
    }
    net.sim.run_for_secs(params.converge);

    let joined: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| {
            net.sim
                .node::<WhisperNode>(*m)
                .is_some_and(|n| n.ppss().group(gid).is_some())
        })
        .collect();
    println!("members joined: {}/{}", joined.len(), params.group_size);
    let ring = IdealRing::new(&joined);

    // Ring quality before querying.
    let correct_succ = joined
        .iter()
        .filter(|m| {
            let node: &WhisperNode = net.sim.node(**m).unwrap();
            let app: &TChordApp = node.app().unwrap();
            app.neighbors().successors.first().copied() == ring.successor_of(**m)
        })
        .count();
    println!("correct successors: {correct_succ}/{} (T-Chord convergence)", joined.len());

    // Issue the queries from random members.
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x93);
    let mut issued = 0;
    for q in 0..params.queries {
        let from = joined[rng.gen_range(0..joined.len())];
        let key = ChordKey::of_data(&(q as u64).to_be_bytes());
        net.sim.with_node_ctx::<WhisperNode>(from, |node, ctx| {
            node.with_api(|api, app| {
                let app: &mut TChordApp = app.as_any_mut().downcast_mut().unwrap();
                if app.lookup(ctx, api, key).is_some() {
                    issued += 1;
                }
            });
        });
        // Pace the queries slightly so they do not all collide.
        net.sim.run_for(whisper_net::SimDuration::from_millis(500));
    }
    net.sim.run_for_secs(120);

    let mut delays = Cdf::new();
    let mut hops = Cdf::new();
    let mut correct_owner = 0usize;
    let mut completed = 0usize;
    for &m in &joined {
        let node: &WhisperNode = net.sim.node(m).unwrap();
        let app: &TChordApp = node.app().unwrap();
        for r in app.completed() {
            completed += 1;
            delays.push(r.delay.as_secs_f64());
            hops.push(r.hops as f64);
            if ring.owner(r.key).1 == r.owner {
                correct_owner += 1;
            }
        }
    }
    report::section("results");
    println!(
        "queries issued: {issued}, completed: {completed} ({:.1}%), correct owner: {correct_owner}/{completed}",
        completed as f64 / issued.max(1) as f64 * 100.0
    );
    report::cdf("routing delay (s)", &mut delays, 11);
    report::cdf("routing hops", &mut hops, 6);
    println!("(paper: delays range ~0.19 s to ~1.5 s depending on route length)");
}
