//! Fig. 6 — Public key sampling service: bandwidth cost per PSS cycle
//! for N- and P-nodes, across Π and P:N population ratios.
//!
//! Paper setting: 1,000 nodes on the cluster; configurations
//! `Unbiased` (Π = 0, no keys), `Unbiased + key sampling`, and
//! `Π ∈ {1,2,3} + key sampling`; ratios 80/20, 70/30, 50/50.

use crate::harness::NetBuilder;
use crate::report;
use whisper_net::metrics::traffic_delta;
use whisper_pss::NylonConfig;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Warm-up seconds before measuring.
    pub warmup: u64,
    /// Number of measured PSS cycles.
    pub cycles: u64,
    /// Engine seed.
    pub seed: u64,
    /// Public-node ratios to sweep (the paper's 20/30/50%).
    pub ratios: Vec<f64>,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params { nodes: 1000, warmup: 200, cycles: 10, seed: 6, ratios: vec![0.20, 0.30, 0.50] }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 150, warmup: 150, cycles: 5, ..Params::paper() }
    }
}

/// Runs the experiment and prints Fig. 6-style output.
pub fn run(params: &Params) {
    report::banner("Figure 6", "public key sampling service: bandwidth per PSS cycle");
    println!("nodes={} warmup={}s measured_cycles={}", params.nodes, params.warmup, params.cycles);
    let configs: Vec<(&str, usize, bool)> = vec![
        ("Unbiased (no keys)", 0, false),
        ("Unbiased + KS", 0, true),
        ("Pi=1 + KS", 1, true),
        ("Pi=2 + KS", 2, true),
        ("Pi=3 + KS", 3, true),
    ];
    for &ratio in &params.ratios {
        report::section(&format!(
            "population N:{:.0}% - P:{:.0}%",
            (1.0 - ratio) * 100.0,
            ratio * 100.0
        ));
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            "config", "N up KB/cyc", "N down KB/cyc", "P up KB/cyc", "P down KB/cyc"
        );
        for (label, pi, ks) in &configs {
            let mut cfg = NylonConfig::with_pi(*pi);
            cfg.key_sampling = *ks;
            let mut builder = NetBuilder::cluster(params.nodes, params.seed);
            builder.public_ratio = ratio;
            let mut net = builder.build_pss(&cfg);
            net.sim.run_for_secs(params.warmup);
            let before = net.sim.metrics().traffic_snapshot();
            net.sim
                .run_for_secs(params.cycles * cfg.cycle.as_secs());
            let after = net.sim.metrics().traffic_snapshot();
            let delta = traffic_delta(&before, &after);

            let publics = net.publics();
            let natted = net.natted();
            let kb_per_cycle = |ids: &[whisper_net::NodeId], up: bool| -> f64 {
                if ids.is_empty() {
                    return 0.0;
                }
                let total: u64 = ids
                    .iter()
                    .filter_map(|id| delta.get(id))
                    .map(|t| if up { t.up_bytes } else { t.down_bytes })
                    .sum();
                total as f64 / ids.len() as f64 / params.cycles as f64 / 1024.0
            };
            println!(
                "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                label,
                kb_per_cycle(&natted, true),
                kb_per_cycle(&natted, false),
                kb_per_cycle(&publics, true),
                kb_per_cycle(&publics, false),
            );
        }
    }
}
