//! Table II — Average CPU time per PPSS cycle spent in AES and RSA, for
//! N-nodes vs P-nodes.
//!
//! Paper setting: 1,000 nodes on the cluster, 1-minute PPSS cycle,
//! Π = 3, 5 entries per exchanged view, realistic key sizes. The paper's
//! headline observations, which this experiment checks: RSA dominates AES
//! by orders of magnitude, P-nodes spend ~2× the CPU of N-nodes (they
//! act as mixes far more often), and the total remains a tiny fraction of
//! the one-minute cycle.

use crate::harness::NetBuilder;
use crate::report;
use whisper_crypto::rsa::RsaKeySize;
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Number of private groups.
    pub groups: usize,
    /// Warm-up seconds.
    pub warmup: u64,
    /// Number of measured PPSS cycles.
    pub cycles: u64,
    /// RSA modulus size (the paper uses 1 KB keys; `Std1024` is the
    /// realistic choice, `Sim384` the fast one).
    pub rsa: RsaKeySize,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration (1024-bit keys).
    pub fn paper() -> Self {
        Params {
            nodes: 1000,
            groups: 20,
            warmup: 400,
            cycles: 5,
            rsa: RsaKeySize::Std1024,
            seed: 9,
        }
    }

    /// A fast smoke-test configuration (sim-grade keys).
    pub fn quick() -> Self {
        Params { nodes: 150, groups: 4, cycles: 3, rsa: RsaKeySize::Sim384, ..Params::paper() }
    }
}

/// Runs the experiment and prints Table II.
pub fn run(params: &Params) {
    report::banner("Table II", "CPU time per PPSS cycle for AES and RSA (N- vs P-nodes)");
    println!(
        "nodes={} groups={} rsa={:?} measured_cycles={} (cycle = 60 s)",
        params.nodes, params.groups, params.rsa, params.cycles
    );
    let mut builder = NetBuilder::cluster(params.nodes, params.seed);
    builder.whisper.nylon.rsa = params.rsa;
    let mut net = builder.build_whisper(|_| Box::new(whisper_core::node::NoApp));
    net.sim.run_for_secs(params.warmup);
    let publics = net.publics();
    let leaders: Vec<NodeId> = publics.into_iter().take(params.groups).collect();
    let groups = net.create_groups(&leaders, "table2");
    net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x72);
    net.sim.run_for_secs(params.warmup);
    net.sim.metrics_mut().reset_counters_and_samples();
    net.sim.run_for_secs(params.cycles * 60);

    let m = net.sim.metrics();
    let n_count = net.natted().len().max(1) as f64;
    let p_count = net.publics().len().max(1) as f64;
    let per_cycle = |name: &str, class_count: f64| -> f64 {
        m.samples(name).iter().sum::<f64>() / class_count / params.cycles as f64
    };
    let aes_n = per_cycle("crypto.aes_us.nnode", n_count);
    let aes_p = per_cycle("crypto.aes_us.pnode", p_count);
    let rsa_n = per_cycle("crypto.rsa_us.nnode", n_count);
    let rsa_p = per_cycle("crypto.rsa_us.pnode", p_count);
    let cycle_us = 60.0 * 1e6;

    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "class", "AES (µs/cyc)", "RSA (µs/cyc)", "total (µs)", "% of cycle"
    );
    for (class, aes, rsa) in [("N-node", aes_n, rsa_n), ("P-node", aes_p, rsa_p)] {
        let total = aes + rsa;
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>14.1} {:>11.4}%",
            class,
            aes,
            rsa,
            total,
            total / cycle_us * 100.0
        );
    }
    println!();
    let ratio_pn = (aes_p + rsa_p) / (aes_n + rsa_n).max(1e-9);
    let ratio_rsa_aes = (rsa_n + rsa_p) / (aes_n + aes_p).max(1e-9);
    report::row(
        "shape checks",
        &[
            ("P/N total ratio", ratio_pn),
            ("RSA/AES ratio", ratio_rsa_aes),
            (
                "mix peels per P-node/cyc",
                m.samples("wcl.peel_us").len() as f64 / p_count / params.cycles as f64,
            ),
        ],
    );
    println!(
        "(paper: P/N ≈ 2.13×, RSA ≫ AES, totals < 0.65% of the one-minute cycle)"
    );
}
