//! Scale-out sweep — engine throughput against population size and
//! shard count (DESIGN.md §12).
//!
//! For each `(nodes, shards)` cell the sweep builds a population, runs a
//! fixed simulated gossip window and reports **nodes-per-second**: how
//! many node-seconds of simulated time the engine sustains per
//! wall-clock second (`nodes × simulated seconds ÷ wall seconds`). The
//! curve 384 → 1k → 4k → 10k nodes at 1/2/4/8 shards is the PR's
//! scaling evidence; cells land in the `WHISPER_BENCH_JSON` merge file
//! under `scaling/...` ids.
//!
//! Two stack flavours share the sweep: the PSS-only population (the
//! Fig. 5 build, gossip only) and the full WHISPER stack (the Table I
//! build: PSS + Nylon + WCL timers). Key material is cycled through at
//! most 256 distinct RSA pairs ([`NetBuilder::key_cycle`]) so keygen
//! stays O(1) in population size and the timed window measures the
//! engine, not `KeyPair::generate`.
//!
//! Honesty note: wall-clock timing is host-dependent by design — this is
//! the *one* experiment whose numbers may differ across machines. The
//! simulated traces remain byte-identical for every cell (the
//! determinism contract); only the wall seconds vary. On a single-core
//! host the threaded path cannot beat sequential, so the shard curve is
//! flat there; see EXPERIMENTS.md § "Scaling".

use std::time::Instant;

use crate::harness::NetBuilder;
use crate::report;
use whisper_core::node::NoApp;
use whisper_pss::NylonConfig;
use whisper_rand::bench::Bench;

/// Which protocol stack the sweep populates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    /// PSS-only nodes (the Fig. 5 population): pure gossip load.
    Pss,
    /// Full WHISPER stacks (the Table I population): gossip + Nylon +
    /// WCL timers.
    Whisper,
}

impl Stack {
    fn name(self) -> &'static str {
        match self {
            Stack::Pss => "pss",
            Stack::Whisper => "whisper",
        }
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population sizes to sweep.
    pub nodes: Vec<usize>,
    /// Shard counts to sweep at every population size.
    pub shards: Vec<usize>,
    /// Simulated seconds per timed cell.
    pub secs: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The full scaling curve: 384 → 1k → 4k → 10k nodes at 1/2/4/8
    /// shards.
    pub fn paper() -> Self {
        Params {
            nodes: vec![384, 1000, 4000, 10_000],
            shards: vec![1, 2, 4, 8],
            secs: 60,
            seed: 7,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: vec![384, 1000], shards: vec![1, 4], secs: 20, ..Params::paper() }
    }
}

/// Builds one cell's population and returns the wall seconds the timed
/// simulation window took.
fn run_cell(stack: Stack, nodes: usize, shards: usize, params: &Params) -> f64 {
    let mut builder = NetBuilder::cluster(nodes, params.seed);
    builder.sim = builder.sim.clone().with_shards(shards);
    builder.key_cycle = Some(256);
    match stack {
        Stack::Pss => {
            let mut net = builder.build_pss(&NylonConfig::default());
            let start = Instant::now();
            net.sim.run_for_secs(params.secs);
            start.elapsed().as_secs_f64()
        }
        Stack::Whisper => {
            let mut net = builder.build_whisper(|_| Box::new(NoApp));
            let start = Instant::now();
            net.sim.run_for_secs(params.secs);
            start.elapsed().as_secs_f64()
        }
    }
}

/// Runs the sweep, prints the curve and records every cell into the
/// bench merge file. Also prints the one-line `scaling:` summary that
/// `scripts/verify.sh` surfaces.
pub fn run(stack: Stack, params: &Params) {
    report::banner(
        "Scaling",
        &format!("{}-stack nodes-per-second vs. population and shard count", stack.name()),
    );
    println!(
        "window={}s seed={} key_cycle=256 (wall-clock timing: host-dependent by design)",
        params.secs, params.seed
    );
    println!("{:<8} {:>7} {:>12} {:>16}", "nodes", "shards", "wall (s)", "nodes/sec");
    let mut bench = Bench::new();
    let mut best: Option<(usize, usize, f64)> = None;
    for &nodes in &params.nodes {
        for &shards in &params.shards {
            let wall = run_cell(stack, nodes, shards, params);
            let nodes_per_sec = nodes as f64 * params.secs as f64 / wall.max(1e-9);
            println!("{nodes:<8} {shards:>7} {wall:>12.2} {nodes_per_sec:>16.0}");
            bench.record(
                format!("scaling/{}_n{nodes}_s{shards}_nodes_per_sec", stack.name()),
                nodes_per_sec,
            );
            if best.is_none_or(|(_, _, b)| nodes_per_sec > b) {
                best = Some((nodes, shards, nodes_per_sec));
            }
        }
    }
    if let Some((nodes, shards, nps)) = best {
        println!(
            "scaling: {} stack peak {:.0} nodes/sec ({} nodes, {} shard(s))",
            stack.name(),
            nps,
            nodes,
            shards
        );
    }
    bench.emit_json();
}
