//! Scale-out sweep — engine throughput against population size and
//! shard count (DESIGN.md §12).
//!
//! For each `(nodes, shards)` cell the sweep builds a population, runs a
//! fixed simulated gossip window and reports **nodes-per-second**: how
//! many node-seconds of simulated time the engine sustains per
//! wall-clock second (`nodes × simulated seconds ÷ wall seconds`). The
//! curve 384 → 1k → 4k → 10k nodes at 1/2/4/8 shards is the PR's
//! scaling evidence; cells land in the `WHISPER_BENCH_JSON` merge file
//! under `scaling/...` ids.
//!
//! Two stack flavours share the sweep: the PSS-only population (the
//! Fig. 5 build, gossip only) and the full WHISPER stack (the Table I
//! build: PSS + Nylon + WCL timers). Key material is cycled through at
//! most 256 distinct RSA pairs ([`NetBuilder::key_cycle`]) so keygen
//! stays O(1) in population size and the timed window measures the
//! engine, not `KeyPair::generate`.
//!
//! Honesty note: wall-clock timing is host-dependent by design — this is
//! the *one* experiment whose numbers may differ across machines. The
//! simulated traces remain byte-identical for every cell (the
//! determinism contract); only the wall seconds vary. On a single-core
//! host the threaded path cannot beat sequential, so the shard curve is
//! flat there; see EXPERIMENTS.md § "Scaling".

use std::time::Instant;

use crate::harness::NetBuilder;
use crate::report;
use whisper_core::node::NoApp;
use whisper_net::sched::Scheduler;
use whisper_pss::NylonConfig;
use whisper_rand::bench::Bench;

/// Which protocol stack the sweep populates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    /// PSS-only nodes (the Fig. 5 population): pure gossip load.
    Pss,
    /// Full WHISPER stacks (the Table I population): gossip + Nylon +
    /// WCL timers.
    Whisper,
}

impl Stack {
    fn name(self) -> &'static str {
        match self {
            Stack::Pss => "pss",
            Stack::Whisper => "whisper",
        }
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population sizes to sweep.
    pub nodes: Vec<usize>,
    /// Shard counts to sweep at every population size.
    pub shards: Vec<usize>,
    /// Simulated seconds per timed cell.
    pub secs: u64,
    /// Engine seed.
    pub seed: u64,
    /// Event scheduler for every cell (heap vs calendar wheel A/B;
    /// trace-invariant, wall-clock-relevant).
    pub sched: Scheduler,
    /// Timed repetitions per cell; the best (minimum) wall and CPU
    /// times are reported. The trace is deterministic, so repetitions
    /// do identical work — the minimum is the run least disturbed by
    /// the host.
    pub reps: usize,
    /// When set, run one *extra, untimed* repetition of every cell with
    /// the scoped hot-path profiler enabled (DESIGN.md §16) and record
    /// the per-bucket wall-time breakdown as `prof/...` rows. The timed
    /// repetitions stay unprofiled so the two `Instant::now` calls per
    /// event cannot perturb the reported nodes-per-second.
    pub prof: bool,
    /// Allocation-regression gate: when set, any cell whose
    /// allocs-per-send exceeds this threshold terminates the process
    /// with a non-zero exit (used by `scripts/verify.sh`).
    pub max_allocs_per_send: Option<f64>,
}

impl Params {
    /// The full scaling curve: 384 → 1k → 4k → 10k → 100k → 1M nodes
    /// at 1/2/4/8 shards.
    pub fn paper() -> Self {
        Params {
            nodes: vec![384, 1000, 4000, 10_000, 100_000, 1_000_000],
            shards: vec![1, 2, 4, 8],
            secs: 60,
            seed: 7,
            sched: Scheduler::Wheel,
            reps: 1,
            prof: false,
            max_allocs_per_send: None,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: vec![384, 1000], shards: vec![1, 4], secs: 20, ..Params::paper() }
    }

    /// Simulated seconds for one cell. Populations of 50k+ get a
    /// shortened window (and 500k+ an even shorter one) so the big cells
    /// stay minutes-not-hours; the per-node event rate is steady after
    /// startup, so a shorter window measures the same thing.
    pub fn window_secs(&self, nodes: usize) -> u64 {
        if nodes >= 500_000 {
            self.secs.min(5)
        } else if nodes >= 50_000 {
            self.secs.min(20)
        } else {
            self.secs
        }
    }

    /// Bench-id infix naming the scheduler: the calendar wheel (the
    /// default) keeps the historical bare ids so curves stay comparable
    /// across PRs; heap cells get an explicit `_heap` marker.
    fn sched_infix(&self) -> &'static str {
        match self.sched {
            Scheduler::Wheel => "",
            Scheduler::Heap => "_heap",
        }
    }
}

/// One timed cell's raw results.
struct Cell {
    /// Wall seconds the simulated window took (best of `reps`).
    wall: f64,
    /// User-mode CPU seconds the window took (best of `reps`); `None`
    /// where the measurement is unavailable or too short to be
    /// meaningful. On hosts with noisy demand paging (shared microVMs)
    /// this is the stable throughput signal — kernel fault-service
    /// time is excluded.
    cpu: Option<f64>,
    /// Honest heap-allocation count for payload buffers:
    /// `net.allocs + net.pool_misses` (a disabled pool records nothing,
    /// so the sum is comparable across pooling modes; DESIGN.md §13).
    allocs: u64,
    /// Total sends — every send classifies its payload's provenance
    /// exactly once, so the three provenance counters sum to it.
    sends: u64,
}

/// User-mode CPU seconds consumed by this process so far, from
/// `/proc/self/stat` (whole process, all threads). `None` off-Linux or
/// on any parse surprise; callers fall back to wall time.
fn user_cpu_secs() -> Option<f64> {
    // USER_HZ is 100 on every Linux ABI this runs on (the value is
    // frozen for userspace compatibility).
    const TICKS_PER_SEC: f64 = 100.0;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // `comm` (field 2) may contain spaces; fields are reliable only
    // after the closing paren. utime is field 14 overall, i.e. the
    // 12th after the paren.
    let (_, rest) = stat.rsplit_once(')')?;
    let utime: f64 = rest.split_whitespace().nth(11)?.parse().ok()?;
    Some(utime / TICKS_PER_SEC)
}

/// CPU windows shorter than this are below the `/proc` tick resolution
/// and are not reported.
const MIN_CPU_WINDOW: f64 = 0.5;

/// Builds one cell's population and runs the timed simulation window,
/// `params.reps` times; keeps the best wall / CPU timings.
fn run_cell(stack: Stack, nodes: usize, shards: usize, pooling: bool, params: &Params) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..params.reps.max(1) {
        let mut builder = NetBuilder::cluster(nodes, params.seed);
        builder.sim = builder
            .sim
            .clone()
            .with_shards(shards)
            .with_pooling(pooling)
            .with_scheduler(params.sched);
        builder.key_cycle = Some(256);
        let mut sim = match stack {
            Stack::Pss => builder.build_pss(&NylonConfig::default()).sim,
            Stack::Whisper => builder.build_whisper(|_| Box::new(NoApp)).sim,
        };
        let cpu0 = user_cpu_secs();
        let start = Instant::now();
        sim.run_for_secs(params.window_secs(nodes));
        let wall = start.elapsed().as_secs_f64();
        let cpu = match (cpu0, user_cpu_secs()) {
            (Some(a), Some(b)) if b - a >= MIN_CPU_WINDOW => Some(b - a),
            _ => None,
        };
        let m = sim.metrics();
        let fresh = m.counter("net.allocs");
        let cell = Cell {
            wall,
            cpu,
            allocs: fresh + m.counter("net.pool_misses"),
            sends: fresh + m.counter("net.payload_cloned") + m.counter("net.payload_pooled"),
        };
        best = Some(match best.take() {
            None => cell,
            Some(b) => Cell {
                wall: b.wall.min(cell.wall),
                cpu: match (b.cpu, cell.cpu) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                },
                ..b
            },
        });
    }
    best.expect("reps >= 1")
}

/// The profiler buckets recorded per cell, in display order. `engine_ns`
/// is dispatch minus callback (derived in the engine at flush time);
/// `encode/decode/crypto_model` are sub-buckets *inside* `callback_ns`.
const PROF_BUCKETS: [&str; 7] = [
    "sched_ns",
    "engine_ns",
    "callback_ns",
    "encode_ns",
    "decode_ns",
    "crypto_model_ns",
    "events",
];

/// Runs one extra, untimed repetition of a cell with the hot-path
/// profiler on and returns the `prof.*` counter values in
/// [`PROF_BUCKETS`] order. The profiled trace is byte-identical to the
/// timed one (the determinism suite runs with profiling enabled), so
/// the breakdown attributes exactly the work the timed cell did.
fn run_prof_cell(stack: Stack, nodes: usize, shards: usize, params: &Params) -> [u64; 7] {
    let mut builder = NetBuilder::cluster(nodes, params.seed);
    builder.sim = builder
        .sim
        .clone()
        .with_shards(shards)
        .with_pooling(true)
        .with_scheduler(params.sched)
        .with_profiling(true);
    builder.key_cycle = Some(256);
    let mut sim = match stack {
        Stack::Pss => builder.build_pss(&NylonConfig::default()).sim,
        Stack::Whisper => builder.build_whisper(|_| Box::new(NoApp)).sim,
    };
    sim.run_for_secs(params.window_secs(nodes));
    let m = sim.metrics();
    let mut out = [0u64; 7];
    for (slot, bucket) in out.iter_mut().zip(PROF_BUCKETS) {
        *slot = m.counter(&format!("prof.{bucket}"));
    }
    out
}

/// Runs the sweep, prints the curve and records every cell into the
/// bench merge file. Also prints the one-line `scaling:` summary that
/// `scripts/verify.sh` surfaces.
pub fn run(stack: Stack, params: &Params) {
    report::banner(
        "Scaling",
        &format!("{}-stack nodes-per-second vs. population and shard count", stack.name()),
    );
    println!(
        "window={}s (20s at 50k+, 5s at 500k+) seed={} sched={:?} reps={} key_cycle=256 \
         (wall-clock timing: host-dependent by design; cpu = user-mode CPU time, \
         immune to demand-paging jitter)",
        params.secs,
        params.seed,
        params.sched,
        params.reps.max(1)
    );
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>16} {:>16} {:>14}",
        "nodes", "shards", "wall (s)", "cpu (s)", "nodes/sec", "nodes/sec-cpu", "allocs/send"
    );
    let mut bench = Bench::new();
    let mut best: Option<(usize, usize, f64)> = None;
    for &nodes in &params.nodes {
        for &shards in &params.shards {
            let cell = run_cell(stack, nodes, shards, true, params);
            let secs = params.window_secs(nodes);
            let node_secs = nodes as f64 * secs as f64;
            let nodes_per_sec = node_secs / cell.wall.max(1e-9);
            let cpu_rate = cell.cpu.map(|c| node_secs / c.max(1e-9));
            let allocs_per_send = cell.allocs as f64 / cell.sends.max(1) as f64;
            println!(
                "{nodes:<8} {shards:>7} {:>12.2} {:>12} {nodes_per_sec:>16.0} {:>16} \
                 {allocs_per_send:>14.3}",
                cell.wall,
                cell.cpu.map_or("-".into(), |c| format!("{c:.2}")),
                cpu_rate.map_or("-".into(), |r| format!("{r:.0}")),
            );
            let id = format!("{}{}_n{nodes}_s{shards}", stack.name(), params.sched_infix());
            bench.record(format!("scaling/{id}_nodes_per_sec"), nodes_per_sec);
            bench.record(format!("scaling/{id}_allocs_per_send"), allocs_per_send);
            if let Some(r) = cpu_rate {
                bench.record(format!("scaling/{id}_nodes_per_sec_cpu"), r);
            }
            if let Some(max) = params.max_allocs_per_send {
                if allocs_per_send > max {
                    eprintln!(
                        "scaling: ALLOC REGRESSION — {id}: {allocs_per_send:.4} \
                         allocs/send exceeds the --max-allocs-per-send gate of {max}"
                    );
                    std::process::exit(1);
                }
            }
            if params.prof {
                let buckets = run_prof_cell(stack, nodes, shards, params);
                let total: u64 = buckets[..3].iter().sum(); // sched + engine + callback
                print!("    prof {id}:");
                for (&v, name) in buckets.iter().zip(PROF_BUCKETS) {
                    bench.record(format!("prof/{id}_{name}"), v as f64);
                    if name == "events" {
                        println!(" | {v} events");
                    } else {
                        let pct = 100.0 * v as f64 / total.max(1) as f64;
                        let short = name.trim_end_matches("_ns");
                        print!(" {short} {:.1}ms ({pct:.1}%)", v as f64 / 1e6);
                    }
                }
            }
            if best.is_none_or(|(_, _, b)| nodes_per_sec > b) {
                best = Some((nodes, shards, nodes_per_sec));
            }
        }
    }
    if let Some((nodes, shards, nps)) = best {
        println!(
            "scaling: {} stack peak {:.0} nodes/sec ({} nodes, {} shard(s))",
            stack.name(),
            nps,
            nodes,
            shards
        );
    }
    bench.emit_json();
}

/// Payload-pool A/B: the same full-stack population and window with the
/// pool on and off. Pooling is invisible to the simulated trace (the
/// determinism suite proves byte-identical traces), so both runs do
/// identical protocol work and the allocation counts are directly
/// comparable. Records allocs-per-send for both modes plus the
/// reduction ratio — the PR 7 acceptance number.
pub fn run_allocs(params: &Params) {
    report::banner(
        "Allocations",
        "payload-pool A/B: heap allocations per send, pooling on vs off",
    );
    let nodes = params.nodes.first().copied().unwrap_or(1000);
    let secs = params.window_secs(nodes);
    println!("whisper stack, {nodes} nodes, 1 shard, window={secs}s seed={}", params.seed);
    let on = run_cell(Stack::Whisper, nodes, 1, true, params);
    let off = run_cell(Stack::Whisper, nodes, 1, false, params);
    assert_eq!(
        on.sends, off.sends,
        "pooling must not change how many messages the protocols send"
    );
    let per_on = on.allocs as f64 / on.sends.max(1) as f64;
    let per_off = off.allocs as f64 / off.sends.max(1) as f64;
    let reduction = per_off / per_on.max(1e-12);
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "pooling", "sends", "allocs", "allocs/send"
    );
    println!("{:<10} {:>12} {:>14} {:>14.4}", "on", on.sends, on.allocs, per_on);
    println!("{:<10} {:>12} {:>14} {:>14.4}", "off", off.sends, off.allocs, per_off);
    println!(
        "allocs: pooled {per_on:.4} vs unpooled {per_off:.4} allocs/send \
         ({reduction:.1}x reduction)"
    );
    let mut bench = Bench::new();
    bench.record("allocs/whisper_pooled_allocs_per_send", per_on);
    bench.record("allocs/whisper_unpooled_allocs_per_send", per_off);
    bench.record("allocs/reduction_x", reduction);
    bench.emit_json();
}
