//! Scale-out sweep — engine throughput against population size and
//! shard count (DESIGN.md §12).
//!
//! For each `(nodes, shards)` cell the sweep builds a population, runs a
//! fixed simulated gossip window and reports **nodes-per-second**: how
//! many node-seconds of simulated time the engine sustains per
//! wall-clock second (`nodes × simulated seconds ÷ wall seconds`). The
//! curve 384 → 1k → 4k → 10k nodes at 1/2/4/8 shards is the PR's
//! scaling evidence; cells land in the `WHISPER_BENCH_JSON` merge file
//! under `scaling/...` ids.
//!
//! Two stack flavours share the sweep: the PSS-only population (the
//! Fig. 5 build, gossip only) and the full WHISPER stack (the Table I
//! build: PSS + Nylon + WCL timers). Key material is cycled through at
//! most 256 distinct RSA pairs ([`NetBuilder::key_cycle`]) so keygen
//! stays O(1) in population size and the timed window measures the
//! engine, not `KeyPair::generate`.
//!
//! Honesty note: wall-clock timing is host-dependent by design — this is
//! the *one* experiment whose numbers may differ across machines. The
//! simulated traces remain byte-identical for every cell (the
//! determinism contract); only the wall seconds vary. On a single-core
//! host the threaded path cannot beat sequential, so the shard curve is
//! flat there; see EXPERIMENTS.md § "Scaling".

use std::time::Instant;

use crate::harness::NetBuilder;
use crate::report;
use whisper_core::node::NoApp;
use whisper_pss::NylonConfig;
use whisper_rand::bench::Bench;

/// Which protocol stack the sweep populates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    /// PSS-only nodes (the Fig. 5 population): pure gossip load.
    Pss,
    /// Full WHISPER stacks (the Table I population): gossip + Nylon +
    /// WCL timers.
    Whisper,
}

impl Stack {
    fn name(self) -> &'static str {
        match self {
            Stack::Pss => "pss",
            Stack::Whisper => "whisper",
        }
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population sizes to sweep.
    pub nodes: Vec<usize>,
    /// Shard counts to sweep at every population size.
    pub shards: Vec<usize>,
    /// Simulated seconds per timed cell.
    pub secs: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The full scaling curve: 384 → 1k → 4k → 10k → 100k nodes at
    /// 1/2/4/8 shards.
    pub fn paper() -> Self {
        Params {
            nodes: vec![384, 1000, 4000, 10_000, 100_000],
            shards: vec![1, 2, 4, 8],
            secs: 60,
            seed: 7,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: vec![384, 1000], shards: vec![1, 4], secs: 20, ..Params::paper() }
    }

    /// Simulated seconds for one cell. Populations of 50k+ get a
    /// shortened window so the 100k cells stay minutes-not-hours; the
    /// per-node event rate is steady after startup, so a shorter window
    /// measures the same thing.
    pub fn window_secs(&self, nodes: usize) -> u64 {
        if nodes >= 50_000 {
            self.secs.min(20)
        } else {
            self.secs
        }
    }
}

/// One timed cell's raw results.
struct Cell {
    /// Wall seconds the simulated window took.
    wall: f64,
    /// Honest heap-allocation count for payload buffers:
    /// `net.allocs + net.pool_misses` (a disabled pool records nothing,
    /// so the sum is comparable across pooling modes; DESIGN.md §13).
    allocs: u64,
    /// Total sends — every send classifies its payload's provenance
    /// exactly once, so the three provenance counters sum to it.
    sends: u64,
}

/// Builds one cell's population and runs the timed simulation window.
fn run_cell(stack: Stack, nodes: usize, shards: usize, pooling: bool, params: &Params) -> Cell {
    let mut builder = NetBuilder::cluster(nodes, params.seed);
    builder.sim = builder.sim.clone().with_shards(shards).with_pooling(pooling);
    builder.key_cycle = Some(256);
    let mut sim = match stack {
        Stack::Pss => builder.build_pss(&NylonConfig::default()).sim,
        Stack::Whisper => builder.build_whisper(|_| Box::new(NoApp)).sim,
    };
    let start = Instant::now();
    sim.run_for_secs(params.window_secs(nodes));
    let wall = start.elapsed().as_secs_f64();
    let m = sim.metrics();
    let fresh = m.counter("net.allocs");
    Cell {
        wall,
        allocs: fresh + m.counter("net.pool_misses"),
        sends: fresh + m.counter("net.payload_cloned") + m.counter("net.payload_pooled"),
    }
}

/// Runs the sweep, prints the curve and records every cell into the
/// bench merge file. Also prints the one-line `scaling:` summary that
/// `scripts/verify.sh` surfaces.
pub fn run(stack: Stack, params: &Params) {
    report::banner(
        "Scaling",
        &format!("{}-stack nodes-per-second vs. population and shard count", stack.name()),
    );
    println!(
        "window={}s (20s at 50k+) seed={} key_cycle=256 \
         (wall-clock timing: host-dependent by design)",
        params.secs, params.seed
    );
    println!(
        "{:<8} {:>7} {:>12} {:>16} {:>14}",
        "nodes", "shards", "wall (s)", "nodes/sec", "allocs/send"
    );
    let mut bench = Bench::new();
    let mut best: Option<(usize, usize, f64)> = None;
    for &nodes in &params.nodes {
        for &shards in &params.shards {
            let cell = run_cell(stack, nodes, shards, true, params);
            let secs = params.window_secs(nodes);
            let nodes_per_sec = nodes as f64 * secs as f64 / cell.wall.max(1e-9);
            let allocs_per_send = cell.allocs as f64 / cell.sends.max(1) as f64;
            println!(
                "{nodes:<8} {shards:>7} {:>12.2} {nodes_per_sec:>16.0} {allocs_per_send:>14.3}",
                cell.wall
            );
            bench.record(
                format!("scaling/{}_n{nodes}_s{shards}_nodes_per_sec", stack.name()),
                nodes_per_sec,
            );
            bench.record(
                format!("scaling/{}_n{nodes}_s{shards}_allocs_per_send", stack.name()),
                allocs_per_send,
            );
            if best.is_none_or(|(_, _, b)| nodes_per_sec > b) {
                best = Some((nodes, shards, nodes_per_sec));
            }
        }
    }
    if let Some((nodes, shards, nps)) = best {
        println!(
            "scaling: {} stack peak {:.0} nodes/sec ({} nodes, {} shard(s))",
            stack.name(),
            nps,
            nodes,
            shards
        );
    }
    bench.emit_json();
}

/// Payload-pool A/B: the same full-stack population and window with the
/// pool on and off. Pooling is invisible to the simulated trace (the
/// determinism suite proves byte-identical traces), so both runs do
/// identical protocol work and the allocation counts are directly
/// comparable. Records allocs-per-send for both modes plus the
/// reduction ratio — the PR 7 acceptance number.
pub fn run_allocs(params: &Params) {
    report::banner(
        "Allocations",
        "payload-pool A/B: heap allocations per send, pooling on vs off",
    );
    let nodes = params.nodes.first().copied().unwrap_or(1000);
    let secs = params.window_secs(nodes);
    println!("whisper stack, {nodes} nodes, 1 shard, window={secs}s seed={}", params.seed);
    let on = run_cell(Stack::Whisper, nodes, 1, true, params);
    let off = run_cell(Stack::Whisper, nodes, 1, false, params);
    assert_eq!(
        on.sends, off.sends,
        "pooling must not change how many messages the protocols send"
    );
    let per_on = on.allocs as f64 / on.sends.max(1) as f64;
    let per_off = off.allocs as f64 / off.sends.max(1) as f64;
    let reduction = per_off / per_on.max(1e-12);
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "pooling", "sends", "allocs", "allocs/send"
    );
    println!("{:<10} {:>12} {:>14} {:>14.4}", "on", on.sends, on.allocs, per_on);
    println!("{:<10} {:>12} {:>14} {:>14.4}", "off", off.sends, off.allocs, per_off);
    println!(
        "allocs: pooled {per_on:.4} vs unpooled {per_off:.4} allocs/send \
         ({reduction:.1}x reduction)"
    );
    let mut bench = Bench::new();
    bench.record("allocs/whisper_pooled_allocs_per_send", per_on);
    bench.record("allocs/whisper_unpooled_allocs_per_send", per_off);
    bench.record("allocs/reduction_x", reduction);
    bench.emit_json();
}
