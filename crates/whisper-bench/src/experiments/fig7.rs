//! Fig. 7 — Breakdown of PPSS private-view exchange round-trip times over
//! WCL channels, on the cluster (1,000 nodes) and PlanetLab (400 nodes)
//! profiles.
//!
//! Components reported, as in the paper: onion path construction time
//! (request+response sides are symmetric here), RSA decryption time at
//! the mixes/destination, and the total exchange RTT, which is dominated
//! by network delays.

use crate::harness::NetBuilder;
use crate::report;
use whisper_net::stats::Cdf;
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Cluster population.
    pub cluster_nodes: usize,
    /// PlanetLab population.
    pub planetlab_nodes: usize,
    /// Number of private groups.
    pub groups: usize,
    /// Warm-up seconds.
    pub warmup: u64,
    /// Measured seconds (PPSS cycle = 60 s → one exchange per member per
    /// minute).
    pub measure: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            cluster_nodes: 1000,
            planetlab_nodes: 400,
            groups: 20,
            warmup: 400,
            measure: 300,
            seed: 8,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params {
            cluster_nodes: 150,
            planetlab_nodes: 100,
            groups: 4,
            warmup: 350,
            measure: 180,
            ..Params::paper()
        }
    }
}

fn run_profile(params: &Params, label: &str, builder: NetBuilder) {
    let mut net = builder.build_whisper(|_| Box::new(whisper_core::node::NoApp));
    net.sim.run_for_secs(params.warmup);
    let publics = net.publics();
    let leaders: Vec<NodeId> = publics.into_iter().take(params.groups).collect();
    let groups = net.create_groups(&leaders, "fig7");
    net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x71);
    net.sim.run_for_secs(params.warmup);
    net.sim.metrics_mut().reset_counters_and_samples();
    net.sim.run_for_secs(params.measure);

    report::section(&format!("{label}: {} nodes, {} groups", net.ids.len(), params.groups));
    let m = net.sim.metrics();
    let mut rtt = Cdf::from_samples(m.samples("wcl.rtt_s").iter().copied());
    let mut build = Cdf::from_samples(m.samples("wcl.build_path_us").iter().map(|v| v / 1e6));
    let mut peel = Cdf::from_samples(m.samples("wcl.peel_us").iter().map(|v| v / 1e6));
    report::cdf("build WCL path (s, per onion)", &mut build, 11);
    report::cdf("RSA decrypts (s, per hop)", &mut peel, 11);
    report::cdf("total rtt (s, per exchange)", &mut rtt, 11);
    if !rtt.is_empty() && !build.is_empty() {
        let ratio = rtt.median() / build.median().max(1e-9);
        println!(
            "network-to-crypto ratio (median rtt / median path build): {ratio:.0}x  — {}",
            if ratio > 10.0 {
                "network delays dominate, as the paper reports"
            } else {
                "UNEXPECTED: crypto is not negligible"
            }
        );
        println!(
            "exchanges measured: {} (≤2s: {:.1}%, ≤0.5s: {:.1}%)",
            rtt.len(),
            rtt.fraction_below(2.0) * 100.0,
            rtt.fraction_below(0.5) * 100.0
        );
    }
}

/// Runs the experiment and prints Fig. 7-style output.
pub fn run(params: &Params) {
    report::banner("Figure 7", "RTT breakdown of PPSS view exchanges over WCL routes");
    run_profile(
        params,
        "cluster",
        NetBuilder::cluster(params.cluster_nodes, params.seed),
    );
    run_profile(
        params,
        "PlanetLab",
        NetBuilder::planetlab(params.planetlab_nodes, params.seed + 1),
    );
}
