//! Fig. 8 — Network bandwidth as a function of the number of private
//! groups each node subscribes to.
//!
//! Paper setting: 400 nodes on PlanetLab, 120 private groups (each P-node
//! creates and leads one), subscriptions per node swept over
//! {1, 2, 4, 8, 16, 32}; results shown as stacked percentiles
//! (5/25/50/75/90) of upload and download bandwidth, split by node class.

use crate::harness::NetBuilder;
use crate::report;
use whisper_net::metrics::traffic_delta;
use whisper_net::stats::Cdf;
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Groups-per-node values to sweep.
    pub subscriptions: Vec<usize>,
    /// Warm-up seconds.
    pub warmup: u64,
    /// Number of measured PPSS cycles.
    pub cycles: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            nodes: 400,
            subscriptions: vec![1, 2, 4, 8, 16, 32],
            warmup: 400,
            cycles: 5,
            seed: 10,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 120, subscriptions: vec![1, 4], cycles: 3, ..Params::paper() }
    }
}

/// Runs the experiment and prints Fig. 8-style output.
pub fn run(params: &Params) {
    report::banner(
        "Figure 8",
        "bandwidth vs. number of private groups subscribed per node (PlanetLab)",
    );
    for &per_node in &params.subscriptions {
        let mut net = NetBuilder::planetlab(params.nodes, params.seed)
            .build_whisper(|_| Box::new(whisper_core::node::NoApp));
        net.sim.run_for_secs(params.warmup);
        // Every P-node creates (and leads) one private group, as in the
        // paper's 120-groups-over-400-nodes setup.
        let leaders = net.publics();
        let groups = net.create_groups(&leaders, "fig8");
        net.subscribe_members(&leaders, &groups, per_node, params.seed ^ per_node as u64);
        net.sim.run_for_secs(params.warmup);

        let before = net.sim.metrics().traffic_snapshot();
        net.sim.run_for_secs(params.cycles * 60);
        let after = net.sim.metrics().traffic_snapshot();
        let delta = traffic_delta(&before, &after);
        let secs = (params.cycles * 60) as f64;

        let collect = |ids: &[NodeId], up: bool| -> Cdf {
            Cdf::from_samples(ids.iter().filter_map(|id| delta.get(id)).map(|t| {
                (if up { t.up_bytes } else { t.down_bytes }) as f64 / secs / 1024.0
            }))
        };
        report::section(&format!(
            "{per_node} group(s) per node — {} groups total, KB/s over {} cycles",
            groups.len(),
            params.cycles
        ));
        let publics = net.publics();
        let natted = net.natted();
        report::stacked("P-nodes up (KB/s)", &mut collect(&publics, true));
        report::stacked("P-nodes down (KB/s)", &mut collect(&publics, false));
        report::stacked("N-nodes up (KB/s)", &mut collect(&natted, true));
        report::stacked("N-nodes down (KB/s)", &mut collect(&natted, false));
    }
    println!();
    println!("(paper: costs grow linearly with subscriptions; P-nodes pay more, both within reasonable values)");
}
