//! Ablation — connection backlog sizing. The paper fixes the CB at 2 × c
//! entries, arguing entries then stay far younger than NAT association
//! leases. This ablation sweeps the factor under churn and measures route
//! success.

use crate::harness::NetBuilder;
use crate::report;
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};
use whisper_net::NodeId;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Population size.
    pub nodes: usize,
    /// Number of private groups.
    pub groups: usize,
    /// CB capacity factors to sweep (CB = factor × c; the paper uses 2).
    pub cb_factors: Vec<usize>,
    /// Churn rate in %/min during the measurement window.
    pub churn_percent: f64,
    /// Warm-up seconds.
    pub warmup: u64,
    /// Measured (churned) seconds.
    pub measure: u64,
    /// Engine seed.
    pub seed: u64,
}

impl Params {
    /// Default configuration.
    pub fn paper() -> Self {
        Params {
            nodes: 300,
            groups: 6,
            cb_factors: vec![1, 2, 4],
            churn_percent: 1.0,
            warmup: 350,
            measure: 480,
            seed: 13,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Params { nodes: 120, groups: 3, measure: 240, ..Params::paper() }
    }
}

/// Runs the ablation.
pub fn run(params: &Params) {
    report::banner(
        "Ablation: connection backlog size",
        "CB = factor × c under churn — route success sensitivity",
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12}",
        "cb_factor", "success %", "alt %", "no-alt %", "routes"
    );
    for &factor in &params.cb_factors {
        let mut builder = NetBuilder::cluster(params.nodes, params.seed);
        builder.whisper.nylon.cb_factor = factor;
        let mut net = builder.build_whisper(|_| Box::new(whisper_core::node::NoApp));
        net.sim.run_for_secs(params.warmup);
        let leaders: Vec<NodeId> = net.publics().into_iter().take(params.groups).collect();
        let groups = net.create_groups(&leaders, "ablcb");
        net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x13);
        net.sim.run_for_secs(params.warmup);
        net.sim.metrics_mut().reset_counters_and_samples();

        let mut key_rng = StdRng::seed_from_u64(params.seed ^ 0xCB);
        let mut group_rng = StdRng::seed_from_u64(params.seed ^ 0xCB1);
        let leaves_per_min =
            (params.nodes as f64 * params.churn_percent / 100.0).round() as usize;
        let mut protected: Vec<NodeId> = leaders.clone();
        protected.extend((0..net.builder.bootstraps as u64).map(NodeId));
        for _minute in 0..params.measure / 60 {
            net.sim.run_for_secs(60);
            for _ in 0..leaves_per_min {
                let candidates: Vec<NodeId> = net
                    .live()
                    .into_iter()
                    .filter(|id| !protected.contains(id))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let victim = candidates[net.sim.rng().gen_range(0..candidates.len())];
                net.sim.remove_node(victim);
            }
            for _ in 0..leaves_per_min {
                let gi = group_rng.gen_range(0..groups.len());
                net.spawn_node(&mut key_rng, Some((leaders[gi], groups[gi])));
            }
        }
        net.sim.run_for_secs(30);

        let m = net.sim.metrics();
        let first = m.counter("wcl.route_first_success");
        let alt = m.counter("wcl.route_alt_success");
        let no_alt = m.counter("wcl.route_no_alt");
        let total = (first + alt + no_alt).max(1);
        println!(
            "{:<10} {:>11.2}% {:>9.2}% {:>9.2}% {:>12}",
            factor,
            first as f64 / total as f64 * 100.0,
            alt as f64 / total as f64 * 100.0,
            no_alt as f64 / total as f64 * 100.0,
            total
        );
    }
    println!("(expected: small CBs limit first-mix choice and hurt success; 2×c is comfortable)");
}
