//! Deterministic chaos scenarios over the full WHISPER stack.
//!
//! Each scenario builds a population, converges it, installs a scripted
//! [`FaultPlan`] and drives a tracked request/response workload through
//! the private groups while the fault is active. The outcome reports
//! end-to-end delivery, route-repair latency and the sim-level drop
//! attribution, so tests can assert the recovery invariants of the fault
//! model (DESIGN.md §11):
//!
//! * every tracked request is either answered or accounted for by a
//!   named drop counter (`unattributed == 0` always);
//! * after the heal window, delivery stays above the floor the scenario
//!   promises;
//! * no live node is left with an empty Nylon view (overlay
//!   convergence survives the fault).
//!
//! Everything is driven by seeds: the same `(scenario, params)` pair
//! replays the exact same trace.

use std::collections::HashMap;

use crate::harness::{NetBuilder, WhisperNet};
use whisper_core::node::{GroupApp, WhisperApi, WhisperNode};
use whisper_core::{GroupId, PrivateEntry};
use whisper_net::fault::{FaultPlan, GilbertElliott};
use whisper_net::sim::Ctx;
use whisper_net::{NodeId, SimTime};
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};

/// Request/response application used by the chaos suite.
///
/// Requests are `'Q'` + an 8-byte nonce; the responder answers `'R'` +
/// nonce over the shipped reply entry. The requester resolves the
/// tracked WCL send when the answer returns, so `acked / sent` is the
/// end-to-end delivery ratio as the application experiences it.
#[derive(Debug, Default)]
pub struct EchoApp {
    inflight: HashMap<u64, u64>,
    /// Tracked requests this node issued.
    pub sent: u64,
    /// Requests whose answer came back.
    pub acked: u64,
    /// Requests this node answered.
    pub echoed: u64,
}

impl EchoApp {
    /// Issues one tracked request to `to` in `group`. Returns `false`
    /// when no route could be built.
    pub fn request(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        to: NodeId,
        nonce: u64,
    ) -> bool {
        let mut data = Vec::with_capacity(9);
        data.push(b'Q');
        data.extend_from_slice(&nonce.to_le_bytes());
        match api.send_private_tracked(ctx, group, to, data, true) {
            Some(msg_id) => {
                self.inflight.insert(nonce, msg_id);
                self.sent += 1;
                true
            }
            None => false,
        }
    }
}

impl GroupApp for EchoApp {
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        api: &mut WhisperApi<'_>,
        group: GroupId,
        _from: NodeId,
        data: &[u8],
        reply_entry: Option<PrivateEntry>,
    ) {
        match data.split_first() {
            Some((&b'Q', nonce)) => {
                // WCL retries re-deliver the same nonce; answering each
                // copy is harmless (the requester acks at most once).
                if let Some(entry) = reply_entry {
                    let mut resp = Vec::with_capacity(9);
                    resp.push(b'R');
                    resp.extend_from_slice(nonce);
                    if api.send_private_to_entry(ctx, group, &entry, resp, false) {
                        self.echoed += 1;
                    }
                }
            }
            Some((&b'R', rest)) if rest.len() == 8 => {
                let nonce = u64::from_le_bytes(rest.try_into().expect("8 bytes"));
                if let Some(msg_id) = self.inflight.remove(&nonce) {
                    api.wcl.notify_response(ctx, msg_id);
                    self.acked += 1;
                }
            }
            _ => {}
        }
    }

    fn on_crash_restart(&mut self, _ctx: &mut Ctx<'_>, _api: &mut WhisperApi<'_>) {
        // Requests in flight at the crash reference WCL message ids that
        // died with the process; an answer arriving after the restart
        // must not be counted as delivered (the app genuinely lost the
        // request context). `sent` stays — those requests are charged
        // against delivery, which is exactly the cost of crashing.
        self.inflight.clear();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The scripted fault each chaos scenario injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Bisect the network for the fault window; heal afterwards.
    Partition,
    /// Gilbert–Elliott burst loss on every link for the window.
    BurstLoss,
    /// Multiply all link delays for the window.
    LatencySpike,
    /// Crash a fraction of nodes with full state loss; restart them at
    /// the end of the window.
    CrashRestart,
    /// Rebind the NAT devices of a fraction of NATted nodes (public IP
    /// change: all their bindings vanish).
    NatRebind,
}

impl Scenario {
    /// All scenarios, for matrix runs.
    pub const ALL: [Scenario; 5] = [
        Scenario::Partition,
        Scenario::BurstLoss,
        Scenario::LatencySpike,
        Scenario::CrashRestart,
        Scenario::NatRebind,
    ];

    /// Stable lowercase name (metric / bench ids).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Partition => "partition",
            Scenario::BurstLoss => "burst_loss",
            Scenario::LatencySpike => "latency_spike",
            Scenario::CrashRestart => "crash_restart",
            Scenario::NatRebind => "nat_rebind",
        }
    }
}

/// Knobs of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosParams {
    /// Population size.
    pub nodes: usize,
    /// Number of private groups (one P-node leader each).
    pub groups: usize,
    /// PSS convergence time before group formation, seconds.
    pub warmup: u64,
    /// Settling time between group formation and the workload, seconds.
    pub settle: u64,
    /// Number of request rounds.
    pub rounds: u64,
    /// Seconds between rounds.
    pub round_period: u64,
    /// Requests issued per group per round.
    pub pairs_per_round: usize,
    /// The fault window opens after this many rounds...
    pub fault_after_round: u64,
    /// ...and lasts this many seconds.
    pub fault_len: u64,
    /// Drain time after the last round, seconds (lets retries resolve).
    pub heal_wait: u64,
    /// Engine seed.
    pub seed: u64,
    /// WCL adaptive-RTO switch (false = the paper's fixed 2 s timer).
    pub adaptive_rto: bool,
    /// Engine shard count (DESIGN.md §12). Purely a performance knob:
    /// the outcome is byte-identical for any value.
    pub shards: usize,
}

impl ChaosParams {
    /// Fast configuration for debug-mode smoke tests.
    pub fn smoke(seed: u64) -> Self {
        ChaosParams {
            nodes: 96,
            groups: 3,
            warmup: 150,
            settle: 60,
            rounds: 9,
            round_period: 10,
            pairs_per_round: 3,
            fault_after_round: 2,
            // Short enough that a request issued as the window opens can
            // still resolve on its last backed-off retry after the heal
            // (the RTO ladder reaches ~2+4+8 s past the send).
            fault_len: 20,
            heal_wait: 60,
            seed,
            adaptive_rto: true,
            shards: 1,
        }
    }

    /// The acceptance configuration: 384 nodes, default knobs.
    pub fn full(seed: u64) -> Self {
        ChaosParams {
            nodes: 384,
            groups: 8,
            rounds: 12,
            pairs_per_round: 4,
            ..ChaosParams::smoke(seed)
        }
    }
}

/// What one chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Tracked requests issued.
    pub sent: u64,
    /// Requests answered end-to-end.
    pub acked: u64,
    /// Requests answered by responders (before the answer travelled back).
    pub echoed: u64,
    /// Request slots skipped (source down, empty view, no route).
    pub skipped: u64,
    /// Route-repair latencies observed (`wcl.repair_s`), seconds.
    pub repair_s: Vec<f64>,
    /// `Σup − (Σdown + Σ drop counters + in-flight)`; non-zero means a
    /// message vanished without a named cause.
    pub unattributed: i64,
    /// Live nodes whose Nylon view is empty after the heal window.
    pub empty_views: usize,
    /// Live nodes at the end of the run.
    pub live_nodes: usize,
    /// Snapshot of all sim/WCL counters (debugging aid).
    pub counters: Vec<(String, u64)>,
}

impl ChaosOutcome {
    /// Answered fraction of tracked requests.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.acked as f64 / self.sent as f64
    }

    /// Mean route-repair latency in seconds (0.0 when no repair
    /// happened).
    pub fn repair_mean_s(&self) -> f64 {
        if self.repair_s.is_empty() {
            return 0.0;
        }
        self.repair_s.iter().sum::<f64>() / self.repair_s.len() as f64
    }
}

/// Runs one scenario end to end. Deterministic in `(scenario, params)`.
pub fn run_scenario(scenario: Scenario, params: &ChaosParams) -> ChaosOutcome {
    let mut builder = NetBuilder::cluster(params.nodes, params.seed);
    builder.sim = builder.sim.clone().with_shards(params.shards);
    builder.whisper.wcl.adaptive_rto = params.adaptive_rto;
    let mut net = builder.build_whisper(|_| Box::new(EchoApp::default()));
    net.sim.run_for_secs(params.warmup);

    let leaders: Vec<NodeId> = net.publics().into_iter().take(params.groups).collect();
    assert_eq!(leaders.len(), params.groups, "not enough P-nodes for leaders");
    let groups = net.create_groups(&leaders, "chaos");
    let membership = net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x51);
    net.sim.run_for_secs(params.settle);

    // The fault window is anchored to the request schedule: it opens
    // `fault_after_round` rounds into the workload, halfway between two
    // send instants — the preceding round's requests (answered within a
    // second on the cluster profile) are the pre-fault baseline, and the
    // requests issued *inside* the window exercise retry and repair.
    let t0 = net.sim.now().as_micros();
    let from = SimTime::from_micros(
        t0 + (params.fault_after_round * params.round_period + params.round_period / 2)
            * 1_000_000,
    );
    let to = SimTime::from_micros(from.as_micros() + params.fault_len * 1_000_000);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC4A0_5EED);
    let mut protected: Vec<NodeId> = leaders.clone();
    protected.extend((0..net.builder.bootstraps as u64).map(NodeId));
    let plan = build_plan(scenario, &net, &protected, from, to, &mut rng);
    net.sim.install_fault_plan(plan);

    let mut nonce = 0u64;
    let mut skipped = 0u64;
    for _round in 0..params.rounds {
        for (gi, members) in membership.iter().enumerate() {
            if members.len() < 2 {
                continue;
            }
            for _ in 0..params.pairs_per_round {
                let src = members[rng.gen_range(0..members.len())];
                nonce += 1;
                if !send_request(&mut net, groups[gi], src, nonce, &mut rng) {
                    skipped += 1;
                }
            }
        }
        net.sim.run_for_secs(params.round_period);
    }
    net.sim.run_for_secs(params.heal_wait);
    collect(&net, skipped)
}

/// Builds the scripted fault plan for `scenario` over `[from, to)`.
fn build_plan(
    scenario: Scenario,
    net: &WhisperNet,
    protected: &[NodeId],
    from: SimTime,
    to: SimTime,
    rng: &mut StdRng,
) -> FaultPlan {
    // Bootstraps and group leaders stay on the "mainland" / alive, so
    // every scenario has a live core to re-converge around.
    let mut victims: Vec<NodeId> = net
        .live()
        .into_iter()
        .filter(|id| !protected.contains(id))
        .collect();
    for i in (1..victims.len()).rev() {
        victims.swap(i, rng.gen_range(0..=i));
    }
    match scenario {
        Scenario::Partition => {
            let island: Vec<NodeId> = victims.iter().take(victims.len() / 4).copied().collect();
            FaultPlan::new().partition(island, from, to)
        }
        Scenario::BurstLoss => FaultPlan::new().burst_loss(from, to, GilbertElliott::heavy()),
        Scenario::LatencySpike => FaultPlan::new().latency_spike(from, to, 10),
        Scenario::CrashRestart => {
            let mut plan = FaultPlan::new();
            let crashed = victims.len() / 10;
            for (i, &node) in victims.iter().take(crashed).enumerate() {
                // Stagger crashes across the first half of the window so
                // failures are not synchronized.
                let span = to.as_micros() - from.as_micros();
                let at = SimTime::from_micros(
                    from.as_micros() + span / 2 * i as u64 / crashed.max(1) as u64,
                );
                plan = plan.crash_restart(node, at, to);
            }
            plan
        }
        Scenario::NatRebind => {
            // Recovery is bounded by the PPSS cycle (the member's fresh
            // entry propagates once per cycle, 1 min by default), so the
            // scenario rebinds an eighth of the population rather than a
            // quarter — still a mass address change, but one the view
            // refresh can absorb within the heal window.
            let natted = net.natted();
            let mut plan = FaultPlan::new();
            for &node in victims.iter().filter(|id| natted.contains(id)).take(victims.len() / 8) {
                plan = plan.nat_rebind(node, from);
            }
            plan
        }
    }
}

/// Issues one request from `src` to a random private-view member.
fn send_request(
    net: &mut WhisperNet,
    group: GroupId,
    src: NodeId,
    nonce: u64,
    rng: &mut StdRng,
) -> bool {
    if !net.sim.contains(src) || net.sim.is_down(src) {
        return false;
    }
    let mut sent = false;
    net.sim.with_node_ctx::<WhisperNode>(src, |node, ctx| {
        node.with_api(|api, app| {
            let me = api.id();
            let view: Vec<NodeId> = api
                .private_view(group)
                .iter()
                .map(|e| e.node)
                .filter(|n| *n != me)
                .collect();
            if view.is_empty() {
                return;
            }
            let dst = view[rng.gen_range(0..view.len())];
            let echo = app
                .as_any_mut()
                .downcast_mut::<EchoApp>()
                .expect("chaos nets run EchoApp");
            sent = echo.request(ctx, api, group, dst, nonce);
        });
    });
    sent
}

/// Drop counters that, together with deliveries and in-flight messages,
/// must account for every send (the attribution identity of DESIGN.md
/// §11).
pub const DROP_COUNTERS: [&str; 7] = [
    "net.lost",
    "net.lost_burst",
    "net.drop_partition",
    "net.drop_crashed",
    "net.drop_dead_target",
    "net.nat_blocked",
    "net.drop_sender_gone",
];

fn collect(net: &WhisperNet, skipped: u64) -> ChaosOutcome {
    let (mut sent, mut acked, mut echoed) = (0u64, 0u64, 0u64);
    let mut empty_views = 0usize;
    let mut live_nodes = 0usize;
    for &id in &net.ids {
        let Some(node) = net.sim.node::<WhisperNode>(id) else {
            continue;
        };
        live_nodes += 1;
        if let Some(app) = node.app::<EchoApp>() {
            sent += app.sent;
            acked += app.acked;
            echoed += app.echoed;
        }
        if node.nylon().view().is_empty() {
            empty_views += 1;
        }
    }
    let m = net.sim.metrics();
    let traffic = m.traffic_snapshot();
    let up: u64 = traffic.values().map(|t| t.up_msgs).sum();
    let down: u64 = traffic.values().map(|t| t.down_msgs).sum();
    let drops: u64 = DROP_COUNTERS.iter().map(|n| m.counter(n)).sum();
    let unattributed = up as i64 - (down + drops + net.sim.in_flight_msgs()) as i64;
    let counters = m
        .counter_names()
        .map(|n| (n.to_string(), m.counter(n)))
        .collect();
    ChaosOutcome {
        sent,
        acked,
        echoed,
        skipped,
        repair_s: m.samples("wcl.repair_s").to_vec(),
        unattributed,
        empty_views,
        live_nodes,
        counters,
    }
}

// ---------------------------------------------------------------------
// Group-lifecycle chaos: the durable-group acceptance scenario.
// ---------------------------------------------------------------------

/// What one group-lifecycle run produced (tentpole acceptance: groups
/// created, joined, migrated and deleted while partitions and staggered
/// crash/restarts are active).
#[derive(Clone, Debug)]
pub struct LifecycleOutcome {
    /// The tracked echo workload over the surviving groups.
    pub echo: ChaosOutcome,
    /// Groups deleted mid-run (their leaders published tombstones).
    pub deleted: Vec<GroupId>,
    /// Live nodes still holding a deleted group at the end. The
    /// tentpole invariant: **zero**, always.
    pub resurrections: usize,
    /// Number of descriptor-adoption latency samples observed.
    pub desc_prop_samples: usize,
    /// 95th percentile of descriptor propagation latency, seconds
    /// (publication → adoption by a member, across partitions and
    /// restarts).
    pub desc_prop_p95_s: f64,
    /// Live members of the group created *mid-run* (join-under-churn).
    pub late_members: usize,
    /// Whether the migrated member ended the run holding its new group.
    pub migrated_ok: bool,
    /// Journal records replayed across all crash-restarts.
    pub journal_replays: u64,
    /// Groups restored from journal replay across all crash-restarts.
    pub journal_restored: u64,
    /// Mean wall-clock journal recovery time per restart, microseconds
    /// (host-dependent; never part of the determinism trace).
    pub replay_wall_us_mean: f64,
    /// Serialized deterministic observables (counters minus the
    /// shard-local `net.pool_*` family, samples minus the host-dependent
    /// `*_wall_us` family, per-node traffic, final clock). Byte-identical
    /// across shard counts.
    pub trace: Vec<u8>,
}

fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Serializes every deterministic observable of a finished run, for the
/// shard-invariance comparison (same exemptions as the determinism
/// suite: `net.pool_*` counters are shard-local by construction and
/// `*_wall_us` samples are the sanctioned host-dependent output).
fn serialize_observables(net: &WhisperNet) -> Vec<u8> {
    let m = net.sim.metrics();
    let mut out = Vec::new();
    for name in m.counter_names().filter(|n| !n.starts_with("net.pool_")) {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&m.counter(name).to_le_bytes());
    }
    for name in m.sample_names().filter(|n| !n.ends_with("_wall_us")) {
        out.extend_from_slice(name.as_bytes());
        for v in m.samples(name) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    for (node, traffic) in m.traffic_snapshot() {
        out.extend_from_slice(&node.0.to_le_bytes());
        out.extend_from_slice(&traffic.up_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.down_msgs.to_le_bytes());
        out.extend_from_slice(&traffic.up_bytes.to_le_bytes());
        out.extend_from_slice(&traffic.down_bytes.to_le_bytes());
    }
    out.extend_from_slice(&net.sim.now().as_micros().to_le_bytes());
    out
}

/// Runs the full group-lifecycle scenario. Deterministic in `params`
/// (including `params.shards`: the trace is byte-identical at any shard
/// count).
///
/// Timeline, in workload rounds:
/// * round 1 — a **late group** is created and joined while the system
///   is already under load (create/join under churn);
/// * the scripted fault window (a partition island *plus* staggered
///   crash/restarts) opens after `fault_after_round` rounds;
/// * one round into the window, `max(1, groups/4)` groups are
///   **deleted** — tombstones must cross the partition and reach
///   crash-restarted members, and nothing may resurrect;
/// * the round after that, one member **migrates** from the first group
///   to the second (removal dot in one, fresh admission in the other).
pub fn run_group_lifecycle(params: &ChaosParams) -> LifecycleOutcome {
    let mut builder = NetBuilder::cluster(params.nodes, params.seed);
    builder.sim = builder.sim.clone().with_shards(params.shards);
    builder.whisper.wcl.adaptive_rto = params.adaptive_rto;
    let mut net = builder.build_whisper(|_| Box::new(EchoApp::default()));
    net.sim.run_for_secs(params.warmup);

    let leaders: Vec<NodeId> = net.publics().into_iter().take(params.groups).collect();
    assert_eq!(leaders.len(), params.groups, "not enough P-nodes for leaders");
    let groups = net.create_groups(&leaders, "life");
    let mut membership = net.subscribe_members(&leaders, &groups, 1, params.seed ^ 0x51);
    net.sim.run_for_secs(params.settle);

    // Fault plan: two sequential windows. A partition island first (the
    // deletions happen *inside* it, so tombstones must cross the healed
    // cut), then staggered crash/restarts two rounds after the heal (the
    // migration happens inside that one, and restarted members must
    // rebuild group state from their journals alone).
    let t0 = net.sim.now().as_micros();
    let from = SimTime::from_micros(
        t0 + (params.fault_after_round * params.round_period + params.round_period / 2)
            * 1_000_000,
    );
    let to = SimTime::from_micros(from.as_micros() + params.fault_len * 1_000_000);
    let crash_from =
        SimTime::from_micros(to.as_micros() + 2 * params.round_period * 1_000_000);
    let crash_to =
        SimTime::from_micros(crash_from.as_micros() + params.fault_len * 1_000_000);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x11FE_C7C1E);
    let mut protected: Vec<NodeId> = leaders.clone();
    protected.extend((0..net.builder.bootstraps as u64).map(NodeId));
    let mut victims: Vec<NodeId> = net
        .live()
        .into_iter()
        .filter(|id| !protected.contains(id))
        .collect();
    for i in (1..victims.len()).rev() {
        victims.swap(i, rng.gen_range(0..=i));
    }
    let island: Vec<NodeId> = victims.iter().take(victims.len() / 10).copied().collect();
    let mut plan = FaultPlan::new().partition(island, from, to);
    let crashed = (victims.len() / 16).max(1);
    for (i, &node) in victims.iter().skip(victims.len() / 10).take(crashed).enumerate() {
        let span = crash_to.as_micros() - crash_from.as_micros();
        let at = SimTime::from_micros(
            crash_from.as_micros() + span / 2 * i as u64 / crashed as u64,
        );
        plan = plan.crash_restart(node, at, crash_to);
    }
    net.sim.install_fault_plan(plan);

    // Lifecycle schedule: deletions inside the partition window,
    // migration inside the crash window.
    let late_round = 1u64;
    let delete_round = params.fault_after_round + 1;
    let migrate_round =
        params.fault_after_round + params.fault_len / params.round_period + 3;
    let delete_count = (groups.len() / 4).max(1).min(groups.len().saturating_sub(2));
    let doomed: Vec<usize> = (groups.len() - delete_count..groups.len()).collect();

    let mut active: Vec<bool> = vec![true; groups.len()];
    let mut deleted: Vec<GroupId> = Vec::new();
    let mut late: Option<(NodeId, GroupId, Vec<NodeId>)> = None;
    let mut migrant: Option<(NodeId, GroupId)> = None;
    let mut nonce = 0u64;
    let mut skipped = 0u64;
    for round in 0..params.rounds {
        if round == late_round {
            // Create + join a fresh group while the workload is running.
            let leader = leaders[0];
            let name = "life-late";
            let mut gid = GroupId::from_name(name);
            net.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
                gid = node.create_group(ctx, name);
            });
            let invitees: Vec<NodeId> = membership
                .get(1)
                .map(|m| m.iter().copied().take(6).collect())
                .unwrap_or_default();
            for &m in &invitees {
                net.join(leader, gid, m);
            }
            late = Some((leader, gid, invitees));
        }
        if round == delete_round {
            for &gi in &doomed {
                let leader = leaders[gi];
                let group = groups[gi];
                net.sim.with_node_ctx::<WhisperNode>(leader, |node, ctx| {
                    assert!(node.delete_group(ctx, group), "leader deletes its group");
                });
                active[gi] = false;
                deleted.push(group);
            }
        }
        if round == migrate_round {
            // Move one member from group 0 to group 1: a removal dot in
            // one OR-set, a fresh admission dot in the other.
            let candidate = membership.first().and_then(|m| {
                m.iter()
                    .copied()
                    .find(|id| net.sim.contains(*id) && !net.sim.is_down(*id))
            });
            if let (Some(x), true) = (candidate, groups.len() >= 2) {
                net.sim.with_node_ctx::<WhisperNode>(leaders[0], |node, _| {
                    node.remove_member(groups[0], x);
                });
                if net.join(leaders[1], groups[1], x) {
                    migrant = Some((x, groups[1]));
                }
                if let Some(m) = membership.first_mut() {
                    m.retain(|id| *id != x);
                }
            }
        }
        for (gi, members) in membership.iter().enumerate() {
            if !active[gi] || members.len() < 2 {
                continue;
            }
            for _ in 0..params.pairs_per_round {
                let src = members[rng.gen_range(0..members.len())];
                nonce += 1;
                if !send_request(&mut net, groups[gi], src, nonce, &mut rng) {
                    skipped += 1;
                }
            }
        }
        // The late group joins the workload once formed.
        if let Some((_, gid, invitees)) = &late {
            if invitees.len() >= 2 {
                for _ in 0..params.pairs_per_round.min(2) {
                    let src = invitees[rng.gen_range(0..invitees.len())];
                    nonce += 1;
                    if !send_request(&mut net, *gid, src, nonce, &mut rng) {
                        skipped += 1;
                    }
                }
            }
        }
        net.sim.run_for_secs(params.round_period);
    }
    net.sim.run_for_secs(params.heal_wait);

    let echo = collect(&net, skipped);
    let resurrections = net
        .live()
        .into_iter()
        .map(|id| {
            let node = net.sim.node::<WhisperNode>(id).expect("live");
            deleted
                .iter()
                .filter(|g| node.ppss().group(**g).is_some())
                .count()
        })
        .sum();
    let late_members = late
        .as_ref()
        .map(|(_, gid, _)| net.member_count(*gid))
        .unwrap_or(0);
    let migrated_ok = migrant
        .map(|(x, g)| {
            net.sim
                .node::<WhisperNode>(x)
                .is_some_and(|n| n.ppss().group(g).is_some())
        })
        .unwrap_or(false);
    let m = net.sim.metrics();
    let prop = m.samples("ppss.desc_prop_s");
    LifecycleOutcome {
        deleted,
        resurrections,
        desc_prop_samples: prop.len(),
        desc_prop_p95_s: percentile(prop, 0.95),
        late_members,
        migrated_ok,
        journal_replays: m.counter("ppss.journal_replayed"),
        journal_restored: m.counter("ppss.journal_groups_restored"),
        replay_wall_us_mean: {
            let s = m.samples("ppss.journal_replay_wall_us");
            if s.is_empty() { 0.0 } else { s.iter().sum::<f64>() / s.len() as f64 }
        },
        trace: serialize_observables(&net),
        echo,
    }
}
