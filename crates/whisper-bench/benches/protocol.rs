//! Micro-benchmarks of the protocol machinery: wire codec, view merge,
//! and raw simulator event throughput.
//!
//! Run with `cargo bench --offline --bench protocol`; pass a substring
//! after `--` to filter (e.g. `-- wire`).

use whisper_net::nat::NatType;
use whisper_net::sim::{Ctx, Protocol, Sim, SimConfig};
use whisper_net::wire::{WireDecode, WireEncode};
use whisper_net::{Endpoint, NodeId, SimDuration};
use whisper_pss::messages::NylonMsg;
use whisper_pss::view::{View, ViewEntry};
use whisper_rand::bench::{Bench, Throughput};
use whisper_rand::rngs::StdRng;
use whisper_rand::SeedableRng;

fn sample_entries(n: usize) -> Vec<ViewEntry> {
    (0..n as u64)
        .map(|i| ViewEntry {
            node: NodeId(i),
            age: (i % 17) as u16,
            public: i % 3 == 0,
            route: vec![NodeId(i + 100), NodeId(i + 200)],
        })
        .collect()
}

fn bench_wire(c: &mut Bench) {
    let mut group = c.group("wire");
    let msg = NylonMsg::GossipReq {
        sender: NodeId(1),
        sender_public: true,
        entries: sample_entries(5),
        key: Some(vec![0xAB; 52]),
        descs: vec![],
    };
    let bytes = msg.to_wire();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_gossip_req", |b| b.iter(|| msg.to_wire()));
    group.bench_function("decode_gossip_req", |b| {
        b.iter(|| NylonMsg::from_wire(&bytes).unwrap())
    });
    group.finish();
}

fn bench_view_merge(c: &mut Bench) {
    let mut group = c.group("view");
    for pi in [0usize, 3] {
        group.bench_function(format!("merge_pi{pi}"), |b| {
            b.iter(|| {
                let mut v = View::new();
                for e in sample_entries(10) {
                    v.insert(e);
                }
                v.merge(sample_entries(6), NodeId(999), 10, pi, true);
                v
            })
        });
    }
    group.finish();
}

/// A node that fires messages at a partner as fast as timers allow —
/// measures raw engine throughput (events/second of wall time).
struct Flooder {
    target: Option<Endpoint>,
    received: u64,
}

impl Protocol for Flooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 1);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _f: NodeId, _e: Endpoint, _d: &whisper_net::Payload) {
        self.received += 1;
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(t) = self.target {
            ctx.send_to(t, vec![0u8; 64]);
        }
        ctx.set_timer(SimDuration::from_millis(1), token);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_sim_engine(c: &mut Bench) {
    let mut group = c.group("sim");
    group.sample_size(10);
    group.bench_function("10_nodes_1s_storm", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::ideal(1));
            let sink = sim.add_node(
                Box::new(Flooder { target: None, received: 0 }),
                NatType::Public,
            );
            for _ in 0..9 {
                sim.add_node(
                    Box::new(Flooder { target: Some(Endpoint::public(sink)), received: 0 }),
                    NatType::Public,
                );
            }
            sim.run_for_secs(1); // ≈ 9,000 messages + 10,000 timers
            sim.metrics().traffic(sink).down_msgs
        })
    });
    group.finish();
}

fn bench_gossip_cycle(c: &mut Bench) {
    use whisper_crypto::rsa::KeyPair;
    use whisper_pss::{NylonConfig, NylonCore, NylonNode};
    let mut group = c.group("pss");
    group.sample_size(10);
    group.bench_function("50_nodes_10_cycles", |b| {
        let mut keyrng = StdRng::seed_from_u64(9);
        let cfg = NylonConfig::default();
        let keys: Vec<KeyPair> =
            (0..50).map(|_| KeyPair::generate(cfg.rsa, &mut keyrng)).collect();
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::cluster(9));
            for (i, key) in keys.iter().enumerate() {
                let mut core = NylonCore::new(cfg.clone(), key.clone());
                if i > 0 {
                    core.set_bootstrap(vec![NodeId(0)]);
                }
                let nat = if i == 0 { NatType::Public } else { NatType::RestrictedCone };
                sim.add_node(Box::new(NylonNode::new(core)), nat);
            }
            sim.run_for_secs(100);
            sim.metrics().counter("pss.gossip_completed")
        })
    });
    group.finish();
}

/// The PR's headline comparison: what one relay spends per forwarded
/// packet on the paper's RSA-per-packet path versus the circuit
/// steady-state path (Sim384 keys, as in the simulation).
///
/// * `rsa_per_packet/<n>B` — peel one hybrid onion layer: an RSA decrypt
///   of the sealed session secret plus CTR over the layer plaintext. The
///   body is forwarded untouched, so its size barely matters; the RSA
///   decrypt dominates.
/// * `circuit_steady/<n>B` — circuit-table lookup, one CTR pass over the
///   body, and the nonce-chain hash. No RSA anywhere.
///
/// The derived `speedup_<n>B` entries (ratio of the two medians) are
/// recorded into the JSON export; the ISSUE acceptance bar is ≥10× at
/// Sim384.
fn bench_wcl_forward(c: &mut Bench) {
    use whisper_crypto::circuit::{self, CircuitEntry, CircuitId, CircuitTable};
    use whisper_crypto::onion::{build_onion, peel};
    use whisper_crypto::rsa::{KeyPair, RsaKeySize};

    let mut rng = StdRng::seed_from_u64(11);
    let keys: Vec<KeyPair> =
        (0..3).map(|_| KeyPair::generate(RsaKeySize::Sim384, &mut rng)).collect();
    let path: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.public().clone(), vec![i as u8; 9]))
        .collect();
    let (source, setups) = circuit::establish(3, &mut rng);

    let sizes = [256usize, 1024];
    {
        let mut group = c.group("wcl_forward");
        for &size in &sizes {
            let payload = vec![0x5Au8; size];

            // RSA path: the relay peels its onion layer; the body is
            // forwarded verbatim (its decryption happens only at D).
            let packet = build_onion(&path, &payload, &mut rng).unwrap();
            group.bench_function(format!("rsa_per_packet/{size}B"), |b| {
                b.iter(|| peel(&keys[0], &packet.header).unwrap())
            });

            // Circuit path: table lookup + one CTR layer + nonce chain.
            let nonce0 = whisper_crypto::aes::CtrNonce::random(&mut rng);
            let sealed = circuit::seal_layers(&source.keys, &nonce0, &payload);
            let mut table = CircuitTable::new(1024, u64::MAX);
            table.insert(
                0,
                setups[0].cid_in,
                CircuitEntry::new(setups[0].key, vec![1u8; 9], setups[0].cid_out),
            );
            let cid = setups[0].cid_in;
            group.bench_function(format!("circuit_steady/{size}B"), |b| {
                b.iter(|| {
                    let entry = table.lookup(1, cid).expect("circuit cached");
                    let mut body = sealed.clone();
                    entry.peel_in_place(&nonce0, &mut body);
                    let next = circuit::next_nonce(&nonce0);
                    (CircuitId(next.0), body)
                })
            });
        }
        group.finish();
    }

    for &size in &sizes {
        let rsa = c.median_of(&format!("wcl_forward/rsa_per_packet/{size}B"));
        let steady = c.median_of(&format!("wcl_forward/circuit_steady/{size}B"));
        if let (Some(rsa), Some(steady)) = (rsa, steady) {
            let speedup = rsa / steady;
            println!(
                "wcl_forward/speedup_{size}B                 {speedup:.1}x \
                 (rsa {:.1} µs vs circuit {:.2} µs per relay hop)",
                rsa / 1e3,
                steady / 1e3,
            );
            c.record(format!("wcl_forward/speedup_{size}B"), speedup);
        }
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_wire(&mut bench);
    bench_view_merge(&mut bench);
    bench_sim_engine(&mut bench);
    bench_gossip_cycle(&mut bench);
    bench_wcl_forward(&mut bench);
    bench.emit_json();
}
