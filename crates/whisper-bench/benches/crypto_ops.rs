//! Micro-benchmarks of the cryptographic substrate: the primitives whose
//! costs drive Table II and the Fig. 7 breakdown.
//!
//! Run with `cargo bench --offline --bench crypto_ops`; pass a substring
//! after `--` to filter (e.g. `-- rsa`).

use whisper_crypto::aes::{Aes128, AesKey, CtrNonce};
use whisper_crypto::circuit;
use whisper_crypto::onion::{build_onion, peel, PeelResult};
use whisper_crypto::rsa::{KeyPair, RsaKeySize};
use whisper_crypto::sha256::Sha256;
use whisper_rand::bench::{BatchSize, Bench, Throughput};
use whisper_rand::rngs::StdRng;
use whisper_rand::{Rng, SeedableRng};

fn bench_rsa(c: &mut Bench) {
    let mut group = c.group("rsa");
    group.sample_size(10);
    for size in [RsaKeySize::Sim384, RsaKeySize::Std1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(size, &mut rng);
        let msg = vec![7u8; 24];
        let ct = kp.public().encrypt(&msg, &mut rng).unwrap();
        let sig = kp.sign(&msg);

        group.bench_function(format!("keygen/{}", size.bits()), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| KeyPair::generate(size, &mut rng))
        });
        group.bench_function(format!("encrypt/{}", size.bits()), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| kp.public().encrypt(&msg, &mut rng).unwrap())
        });
        group.bench_function(format!("decrypt/{}", size.bits()), |b| {
            b.iter(|| kp.decrypt(&ct).unwrap())
        });
        group.bench_function(format!("sign/{}", size.bits()), |b| b.iter(|| kp.sign(&msg)));
        group.bench_function(format!("verify/{}", size.bits()), |b| {
            b.iter(|| kp.public().verify(&msg, &sig).unwrap())
        });
    }
    group.finish();
}

fn bench_aes(c: &mut Bench) {
    let mut group = c.group("aes128_ctr");
    let mut rng = StdRng::seed_from_u64(4);
    let cipher = Aes128::new(&AesKey::random(&mut rng));
    let nonce = CtrNonce::random(&mut rng);
    for size in [64usize, 1024, 20 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| cipher.ctr_apply(&nonce, &data)));
    }
    group.finish();
}

fn bench_sha256(c: &mut Bench) {
    let mut group = c.group("sha256");
    for size in [64usize, 4096] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| Sha256::digest(&data)));
    }
    group.finish();
}

/// The WCL hot path: building a 4-node onion (S → A → B → D, i.e. 3
/// sealed layers) and peeling one layer at a mix.
fn bench_onion(c: &mut Bench) {
    let mut group = c.group("onion");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let keys: Vec<KeyPair> =
        (0..3).map(|_| KeyPair::generate(RsaKeySize::Sim384, &mut rng)).collect();
    let path: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.public().clone(), vec![i as u8; 9]))
        .collect();
    let payload = vec![0u8; 4096]; // a PPSS view exchange sized body

    group.bench_function("build_3_layers", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| build_onion(&path, &payload, &mut rng).unwrap())
    });
    group.bench_function("peel_one_layer", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter_batched(
            || build_onion(&path, &payload, &mut rng).unwrap(),
            |packet| {
                let PeelResult::Relay { .. } = peel(&keys[0], &packet.header).unwrap() else {
                    panic!("first hop relays")
                };
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The amortized steady-state path: three layered CTR passes at the
/// source, one stripped per hop. Compare with `onion/build_3_layers` and
/// `onion/peel_one_layer` to see what circuit caching removes.
fn bench_circuit(c: &mut Bench) {
    /// Queued packets per relay in the batched-peel cell — the shared
    /// key-schedule expansion amortizes across this many bodies.
    const BATCH: usize = 16;
    {
        let mut group = c.group("circuit");
        let mut rng = StdRng::seed_from_u64(9);
        let (source, setups) = circuit::establish(3, &mut rng);
        let nonce0 = CtrNonce::random(&mut rng);
        for size in [256usize, 1024, 4096] {
            let payload = vec![0xCDu8; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_function(format!("seal_3_layers/{size}B"), |b| {
                b.iter(|| circuit::seal_layers(&source.keys, &nonce0, &payload))
            });
            let sealed = circuit::seal_layers(&source.keys, &nonce0, &payload);
            group.bench_function(format!("peel_one_layer/{size}B"), |b| {
                b.iter(|| circuit::peel_layer(&setups[0].key, &nonce0, &sealed))
            });
            // Batched peels: one key-schedule expansion shared across a
            // relay's whole queue. CTR is an involution, so re-peeling the
            // same buffers each iteration times identical work.
            let mut batch: Vec<(CtrNonce, Vec<u8>)> = (0..BATCH)
                .map(|_| (CtrNonce::random(&mut rng), sealed.clone()))
                .collect();
            group.throughput(Throughput::Bytes((size * BATCH) as u64));
            group.bench_function(format!("peel_batch{BATCH}/{size}B"), |b| {
                b.iter(|| circuit::peel_batch_in_place(&setups[0].key, &mut batch))
            });
        }
        group.finish();
    }
    // Per-packet batched-vs-single ratio (>1 means batching wins): the
    // acceptance row for the cached-schedule circuit path.
    for size in [256usize, 1024, 4096] {
        let single = c.median_of(&format!("circuit/peel_one_layer/{size}B"));
        let batch = c.median_of(&format!("circuit/peel_batch{BATCH}/{size}B"));
        if let (Some(single), Some(batch)) = (single, batch) {
            let per_packet = batch / BATCH as f64;
            let speedup = single / per_packet;
            println!(
                "circuit/batch_peel_speedup_{size}B      {speedup:.2}x \
                 (single {:.2} µs vs batched {:.2} µs/pkt)",
                single / 1e3,
                per_packet / 1e3,
            );
            c.record(format!("circuit/batch_peel_speedup_{size}B"), speedup);
        }
    }
}

/// Cached vs rebuilt Montgomery contexts on the RSA private-op and
/// keygen paths. The cache (on by default; [`set_mont_cache`] is the A/B
/// toggle) spares one `R² mod m` division per `modpow`: CRT decrypt
/// reuses `p`/`q` forever and Miller–Rabin hammers one candidate with
/// many bases, so both paths hit almost always.
fn bench_mont_cache(c: &mut Bench) {
    use whisper_crypto::bignum::set_mont_cache;
    let size = RsaKeySize::Std1024;
    {
        let mut group = c.group("rsa_mont_ab");
        group.sample_size(14);
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(size, &mut rng);
        let msg = vec![7u8; 24];
        let ct = kp.public().encrypt(&msg, &mut rng).unwrap();
        // Cached and uncached runs of the same op back to back, so the
        // pair shares the host's thermal/paging state and the ratio is
        // not skewed by drift between distant points in the process
        // lifetime. The cached rows land under `rsa_cached/...`; the
        // canonical `rsa/...` rows (measured with the cache on, the
        // production default) stay the cross-PR trend lines.
        for uncached in [true, false] {
            set_mont_cache(!uncached);
            let prefix = if uncached { "uncached_keygen" } else { "cached_keygen" };
            group.bench_function(format!("{prefix}/{}", size.bits()), |b| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| KeyPair::generate(size, &mut rng))
            });
        }
        for uncached in [true, false] {
            set_mont_cache(!uncached);
            let prefix = if uncached { "uncached_decrypt" } else { "cached_decrypt" };
            group.bench_function(format!("{prefix}/{}", size.bits()), |b| {
                b.iter(|| kp.decrypt(&ct).unwrap())
            });
        }
        set_mont_cache(true);
        // The quantity the cache actually elides, measured directly: one
        // Montgomery context build (n0inv + R/R^2-mod-m divisions). This
        // is the stable number; the end-to-end keygen/decrypt A/B above
        // moves by at most this much per modpow (<1% of a 1024-bit
        // exponentiation) and is therefore noise-bound near 1.0x on a
        // shared host.
        {
            use whisper_crypto::bignum::{BigUint, Montgomery};
            let mut mrng = StdRng::seed_from_u64(3);
            let mut bytes: Vec<u8> = (0..128).map(|_| mrng.gen()).collect();
            bytes[0] |= 0x80; // full 1024 bits
            bytes[127] |= 1; // odd, as Montgomery requires
            let m = BigUint::from_bytes_be(&bytes);
            group.bench_function("mont_setup/1024", |b| b.iter(|| Montgomery::new(&m)));
        }
        group.finish();
    }
    for op in ["decrypt", "keygen"] {
        let cached = c.median_of(&format!("rsa_mont_ab/cached_{op}/{}", size.bits()));
        let uncached = c.median_of(&format!("rsa_mont_ab/uncached_{op}/{}", size.bits()));
        if let (Some(cached), Some(uncached)) = (cached, uncached) {
            let speedup = uncached / cached;
            println!(
                "rsa/mont_cache_speedup_{op}_{}      {speedup:.2}x \
                 (uncached {:.1} µs vs cached {:.1} µs)",
                size.bits(),
                uncached / 1e3,
                cached / 1e3,
            );
            c.record(format!("rsa/mont_cache_speedup_{op}_{}", size.bits()), speedup);
        }
    }
}

fn bench_bignum(c: &mut Bench) {
    use whisper_crypto::bignum::BigUint;
    let mut group = c.group("bignum");
    let mut rng = StdRng::seed_from_u64(8);
    for limbs in [8usize, 16, 32, 64] {
        let bytes_a: Vec<u8> = (0..limbs * 8).map(|_| rng.gen()).collect();
        let bytes_b: Vec<u8> = (0..limbs * 8).map(|_| rng.gen()).collect();
        let a = BigUint::from_bytes_be(&bytes_a);
        let b = BigUint::from_bytes_be(&bytes_b);
        // `mul` dispatches to Karatsuba above the 48-limb threshold.
        group.bench_function(format!("mul/{}bit", limbs * 64), |bench| {
            bench.iter(|| a.mul(&b))
        });
        group.bench_function(format!("div_rem/{}bit", limbs * 64), |bench| {
            let d = BigUint::from_bytes_be(&bytes_b[..limbs * 4]);
            bench.iter(|| a.div_rem(&d))
        });
    }
    group.finish();
}

/// Fixed-window vs binary Montgomery exponentiation — the PR 7 RSA
/// hot-path change. The 512-bit cell is one CRT half of a `Std1024`
/// decrypt/sign (the private-op core); the 1024-bit cell is the
/// non-CRT worst case. Derived `modpow_window_speedup_*` ratios land
/// in the JSON export; binary scans one bit per iteration while the
/// 4-bit window does 4 squarings plus at most one table multiply per
/// 4 bits, so the expected win is ~1.15–1.25× on random exponents.
fn bench_modpow(c: &mut Bench) {
    use whisper_crypto::bignum::{BigUint, Montgomery};
    let mut rng = StdRng::seed_from_u64(10);
    {
        let mut group = c.group("bignum");
        for bits in [512usize, 1024] {
            let limbs = bits / 64;
            let mut modulus_bytes: Vec<u8> = (0..limbs * 8).map(|_| rng.gen()).collect();
            modulus_bytes[0] |= 0x80; // full width
            *modulus_bytes.last_mut().unwrap() |= 1; // odd, as Montgomery requires
            let modulus = BigUint::from_bytes_be(&modulus_bytes);
            let base_bytes: Vec<u8> = (0..limbs * 8 - 1).map(|_| rng.gen()).collect();
            let exp_bytes: Vec<u8> = (0..limbs * 8).map(|_| rng.gen()).collect();
            let base = BigUint::from_bytes_be(&base_bytes);
            let exp = BigUint::from_bytes_be(&exp_bytes);
            let mont = Montgomery::new(&modulus);
            group.bench_function(format!("modpow_window/{bits}bit"), |b| {
                b.iter(|| mont.pow(&base, &exp))
            });
            group.bench_function(format!("modpow_binary/{bits}bit"), |b| {
                b.iter(|| mont.pow_binary(&base, &exp))
            });
        }
        group.finish();
    }
    for bits in [512usize, 1024] {
        let win = c.median_of(&format!("bignum/modpow_window/{bits}bit"));
        let bin = c.median_of(&format!("bignum/modpow_binary/{bits}bit"));
        if let (Some(win), Some(bin)) = (win, bin) {
            let speedup = bin / win;
            println!(
                "bignum/modpow_window_speedup_{bits}bit      {speedup:.2}x \
                 (binary {:.1} µs vs 4-bit window {:.1} µs)",
                bin / 1e3,
                win / 1e3,
            );
            c.record(format!("bignum/modpow_window_speedup_{bits}bit"), speedup);
        }
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_rsa(&mut bench);
    bench_mont_cache(&mut bench);
    bench_modpow(&mut bench);
    bench_aes(&mut bench);
    bench_sha256(&mut bench);
    bench_onion(&mut bench);
    bench_circuit(&mut bench);
    bench_bignum(&mut bench);
    bench.emit_json();
}
