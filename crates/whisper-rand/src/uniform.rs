//! Distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable "as themselves" via [`Rng::gen`](crate::Rng::gen):
/// uniform over the whole value domain for integers, uniform in `[0, 1)`
/// for floats, a fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's upper bits have the strongest
        // equidistribution guarantees.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits of randomness, uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits — the maximum a
/// `f64` can represent uniformly at this scale.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased draw from `[0, range)` by rejection sampling: accept `x` from
/// the largest prefix `[0, zone]` whose size is a multiple of `range`,
/// return `x % range`.
///
/// The accept zone deliberately starts at zero — `x = 0` always maps to
/// the minimal output — so that the all-zero replay tapes produced by
/// [`check`](crate::check)'s shrinker yield minimal values instead of
/// spinning in the reject loop.
#[inline]
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    // 2⁶⁴ mod range values at the top would bias the low residues; reject
    // them. zone = (largest multiple of range ≤ 2⁶⁴) − 1.
    let zone = u64::MAX - range.wrapping_neg() % range;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % range;
        }
    }
}

/// Unbiased draw from `[0, range)` for 128-bit widths; same zone-rejection
/// scheme as [`uniform_u64`].
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, range: u128) -> u128 {
    debug_assert!(range > 0);
    let zone = u128::MAX - range.wrapping_neg() % range;
    loop {
        let x = u128::sample(rng);
        if x <= zone {
            return x % range;
        }
    }
}

/// Element types that [`Rng::gen_range`](crate::Rng::gen_range) can sample
/// uniformly from a range of.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty => $via:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let width = (hi as $via).wrapping_sub(lo as $via);
                lo.wrapping_add(draw_uniform(rng, width) as $ty)
            }
            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let width = (hi as $via).wrapping_sub(lo as $via);
                match width.checked_add(1) {
                    Some(n) => lo.wrapping_add(draw_uniform(rng, n) as $ty),
                    // Full-domain range: every bit pattern is valid.
                    None => Standard::sample(rng),
                }
            }
        }
    )*};
}

/// Dispatch helper so the macro can widen small ints to `u64` and keep
/// `u128` on its own path.
trait DrawUniform: Copy {
    fn draw<R: RngCore + ?Sized>(rng: &mut R, range: Self) -> Self;
}
impl DrawUniform for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        uniform_u64(rng, range)
    }
}
impl DrawUniform for u128 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R, range: u128) -> u128 {
        uniform_u128(rng, range)
    }
}
#[inline]
fn draw_uniform<R: RngCore + ?Sized, W: DrawUniform>(rng: &mut R, range: W) -> W {
    W::draw(rng, range)
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128, i128 => u128
);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                loop {
                    let v = lo + (hi - lo) * (unit_f64(rng) as $ty);
                    // Rounding in the scale step can land exactly on `hi`;
                    // redraw to honor the half-open contract.
                    if v < hi {
                        return v;
                    }
                }
            }
            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                let v = lo + (hi - lo) * (unit as $ty);
                if v > hi { hi } else { v }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range expressions accepted by [`Rng::gen_range`](crate::Rng::gen_range):
/// `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Rng, RngCore, SeedableRng, StdRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u8);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&g));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not overflow or hang.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
