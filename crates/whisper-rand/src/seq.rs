//! Random slice operations: `shuffle` and `choose`, mirroring
//! `rand::seq::SliceRandom`.

use crate::uniform::uniform_u64;
use crate::RngCore;

/// Extension trait adding random operations to slices.
///
/// ```
/// use whisper_rand::seq::SliceRandom;
/// use whisper_rand::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut deck = [1, 2, 3, 4];
/// deck.shuffle(&mut rng);
/// let picked = deck.choose(&mut rng);
/// assert!(picked.is_some());
/// ```
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(uniform_u64(rng, self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! ≫ draws: identity is astronomically unlikely");
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap()] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
