#![deny(missing_docs)]
//! # whisper-rand — in-tree deterministic randomness
//!
//! Every random draw in the WHISPER reproduction flows through this crate.
//! It exists for two reasons:
//!
//! 1. **Hermetic builds.** The workspace must build and test offline
//!    (`cargo build --release --offline`) with an empty registry, so we
//!    cannot depend on `rand` / `proptest` / `criterion` from crates.io.
//! 2. **Determinism as a correctness requirement.** The paper's evaluation
//!    (§V) is reproduced by *replaying* seeded simulator runs; a gossip or
//!    onion-route trace must be byte-identical across runs, machines and
//!    thread schedules. That rules out OS entropy anywhere in the stack —
//!    all randomness derives from an explicit `u64` seed.
//!
//! ## What's inside
//!
//! * [`StdRng`] — the workspace generator: **xoshiro256++** state update
//!   seeded through **SplitMix64** ([`SplitMix64`] is also exported for
//!   cheap one-off mixing). The name `StdRng` is kept so call sites read
//!   exactly as they did when the workspace used the `rand` crate.
//! * [`Rng`] / [`RngCore`] / [`SeedableRng`] — trait surface mirroring the
//!   subset of `rand 0.8` the codebase uses: `seed_from_u64`, `gen`,
//!   `gen_range`, `gen_bool`, `fill_bytes`.
//! * [`seq::SliceRandom`] — `shuffle` / `choose` on slices.
//! * Stream splitting — [`StdRng::for_stream`] derives an independent
//!   per-node / per-purpose generator from `(seed, stream)`, and
//!   [`StdRng::split`] forks a child generator; both are the backbone of
//!   reproducible multi-node simulations (node *i* gets stream *i*).
//! * [`check`] — a seeded property-test helper (replaces `proptest`):
//!   random case generation with shrink-on-failure reporting.
//! * [`bench`](mod@bench) — a minimal wall-clock micro-benchmark harness (replaces
//!   `criterion`) used by the `whisper-bench` crate.
//!
//! ## Example
//!
//! ```
//! use whisper_rand::{Rng, SeedableRng, StdRng};
//! use whisper_rand::seq::SliceRandom;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let roll = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&roll));
//!
//! // Same seed ⇒ same sequence, always.
//! let a: u64 = StdRng::seed_from_u64(7).gen();
//! let b: u64 = StdRng::seed_from_u64(7).gen();
//! assert_eq!(a, b);
//!
//! // Independent per-node streams from one experiment seed.
//! let mut node3 = StdRng::for_stream(42, 3);
//! let mut deck = [1, 2, 3, 4, 5];
//! deck.shuffle(&mut node3);
//! ```

pub mod bench;
pub mod check;
mod splitmix;
mod uniform;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use uniform::{SampleRange, SampleUniform, Standard};
pub use xoshiro::StdRng;

/// Namespace alias so `use whisper_rand::rngs::StdRng;` reads like the
/// `rand::rngs::StdRng` it replaced.
pub mod rngs {
    pub use crate::xoshiro::StdRng;
}

/// Slice extension traits (`shuffle`, `choose`).
pub mod seq;

/// The raw generator interface: a source of uniformly distributed `u64`s.
///
/// Implementors only provide [`next_u64`](RngCore::next_u64); everything
/// else — including the whole [`Rng`] extension surface — is derived from
/// it, which keeps alternative generators (e.g. the replay tape inside
/// [`check`]) trivial to write.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    ///
    /// Uses the *upper* half of [`next_u64`](RngCore::next_u64): for
    /// xoshiro-family generators the high bits have the best equidistribution.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

/// Forwarding impl so a `&mut R` can itself be passed where an
/// `impl RngCore` / [`Rng`] is expected.
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods over [`RngCore`], mirroring the `rand 0.8`
/// methods the workspace uses.
///
/// Blanket-implemented for every [`RngCore`]; never implement it manually.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its [`Standard`] distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`lo..hi` half-open, or `lo..=hi`
    /// inclusive). Unbiased for integer types.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        Self: Sized,
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // `unit_f64` is uniform in [0, 1), so `< p` has probability exactly
        // p for representable p, including the endpoints.
        uniform::unit_f64(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`],
    /// re-exposed here so one `use whisper_rand::Rng;` covers it).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from an explicit seed.
///
/// There is deliberately **no** `from_entropy` / `thread_rng` equivalent:
/// WHISPER's reproducibility contract forbids OS entropy (see
/// `DESIGN.md` § "Determinism & randomness"). Every generator in the
/// workspace is rooted in a `u64` the caller chose.
pub trait SeedableRng: Sized {
    /// The raw seed type (full generator state).
    type Seed;

    /// Builds a generator from full state.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64`, expanded to full state via
    /// SplitMix64 — two seeds that differ in one bit yield unrelated
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}
