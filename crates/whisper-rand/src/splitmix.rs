//! SplitMix64: the seeding and mixing primitive.

use crate::{RngCore, SeedableRng};

/// Weyl-sequence increment (2⁶⁴ / φ, the golden-ratio constant).
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 (Steele, Lea & Flood, OOPSLA '14): a tiny, fast, full-period
/// generator over a 64-bit Weyl sequence.
///
/// Statistically too weak to drive simulations on its own, but ideal as a
/// *seed expander*: [`StdRng::seed_from_u64`](crate::StdRng::seed_from_u64)
/// runs one `SplitMix64` to fill the 256-bit xoshiro state, which is the
/// initialization the xoshiro authors recommend.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

/// The SplitMix64 output function: a bijective avalanche mix of `z`.
///
/// Exposed for one-shot hashing of small integers (stream derivation,
/// deterministic per-index seeds) where constructing a generator would be
/// noise.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = u64;

    fn from_seed(seed: u64) -> Self {
        SplitMix64::new(seed)
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SplitMix64 reference implementation
    /// (seed 1234567).
    #[test]
    fn reference_vector() {
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = (0..8).map(|_| SplitMix64::new(9).next_u64()).collect();
        assert!(a.iter().all(|v| *v == a[0]));
    }
}
