//! A minimal wall-clock micro-benchmark harness, replacing the workspace's
//! former `criterion` dependency.
//!
//! Deliberately small: calibrate an iteration count, take N timed samples,
//! report min / mean / max per-iteration time (plus throughput when
//! declared). No statistics engine, no HTML reports, no state on disk —
//! the numbers feed `EXPERIMENTS.md` tables and regressions are judged by
//! eye, which is all the paper comparison needs.
//!
//! ## Example
//!
//! ```no_run
//! use whisper_rand::bench::{Bench, Throughput};
//!
//! fn main() {
//!     let mut b = Bench::from_args();
//!     let mut g = b.group("hashing");
//!     g.throughput(Throughput::Bytes(4096));
//!     let data = vec![0u8; 4096];
//!     g.bench_function("sum", |b| b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>()));
//!     g.finish();
//! }
//! ```
//!
//! Run via `cargo bench --offline`; pass a substring after `--` to filter:
//! `cargo bench --offline -- rsa`.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimizer, used to keep benchmarked results alive.
pub use std::hint::black_box;

/// Minimum time a calibrated sample should take. Short enough that a
/// full bench suite stays in CI budgets, long enough to dominate timer
/// noise (~tens of ns) by five orders of magnitude.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Top-level harness: owns the CLI filter, prints one line per benchmark,
/// and records each benchmark's median for machine-readable export.
pub struct Bench {
    filter: Option<String>,
    /// `(full id, median ns/iter)` for every benchmark that ran.
    results: Vec<(String, f64)>,
}

impl Bench {
    /// Builds a harness from `std::env::args`.
    ///
    /// The first argument not starting with `-` is treated as a substring
    /// filter on `group/name` ids (flags that Cargo passes to bench
    /// binaries, like `--bench`, are ignored).
    pub fn from_args() -> Bench {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter, results: Vec::new() }
    }

    /// A harness that runs everything (no filter).
    pub fn new() -> Bench {
        Bench { filter: None, results: Vec::new() }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> BenchGroup<'_> {
        BenchGroup {
            bench: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Median ns/iter of an already-run benchmark, by exact full id
    /// (`group/name`). `None` if it did not run (e.g. filtered out).
    pub fn median_of(&self, full_id: &str) -> Option<f64> {
        self.results.iter().find(|(id, _)| id == full_id).map(|(_, m)| *m)
    }

    /// Records a derived value (e.g. a speedup ratio computed from two
    /// medians) so it lands in the [`Bench::emit_json`] output alongside
    /// the measured benchmarks.
    pub fn record(&mut self, full_id: impl Into<String>, value: f64) {
        self.results.push((full_id.into(), value));
    }

    /// Writes every recorded median to the JSON file named by the
    /// `WHISPER_BENCH_JSON` environment variable (no-op when unset).
    ///
    /// The format is a flat object, `{"group/name": median_ns, ...}`,
    /// sorted by key. An existing file is merged into (this run's ids
    /// win), so the two bench binaries — and filtered re-runs — can
    /// accumulate into one file.
    pub fn emit_json(&self) {
        let Ok(path) = std::env::var("WHISPER_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut merged: Vec<(String, f64)> = std::fs::read_to_string(&path)
            .map(|s| parse_flat_json(&s))
            .unwrap_or_default();
        for (id, median) in &self.results {
            match merged.iter_mut().find(|(k, _)| k == id) {
                Some(slot) => slot.1 = *median,
                None => merged.push((id.clone(), *median)),
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (id, median)) in merged.iter().enumerate() {
            let comma = if i + 1 < merged.len() { "," } else { "" };
            out.push_str(&format!("  \"{id}\": {median:.1}{comma}\n"));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("bench medians written to {path}");
        }
    }
}

/// Parses the flat `{"id": number, ...}` JSON this module writes. Only
/// has to understand its own output — string keys without escapes, plain
/// numbers — so a line scanner is enough; anything else is skipped.
fn parse_flat_json(s: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim();
        if key.len() < 2 || !key.starts_with('"') || !key.ends_with('"') {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key[1..key.len() - 1].to_string(), v));
        }
    }
    out
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmarked operation processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmarked operation processes this many items per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; kept for call-site compatibility
/// with the criterion API, currently ignored (setup always runs per
/// iteration, outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is small; per-iteration setup is fine.
    SmallInput,
    /// Setup output is large.
    LargeInput,
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(2);
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call one of
    /// its `iter` methods exactly once.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.bench.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Calibrate: grow the iteration count until one sample is long
        // enough to trust.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Jump straight toward the target, at least doubling.
            let scale = TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1);
            iters = (iters * 2).max((iters as u128 * scale.min(1 << 20)) as u64).min(1 << 30);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min = per_iter[0];
        let max = *per_iter.last().expect("samples >= 2");
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        self.bench.results.push((full.clone(), median));

        let thrpt = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {}/s", human_bytes(n as f64 / (mean * 1e-9)))
            }
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.2} Melem/s", n as f64 / (mean * 1e-9) / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{full:<40} time: [{} {} {}]{thrpt}  ({} samples × {iters} iters)",
            human_ns(min),
            human_ns(mean),
            human_ns(max),
            self.samples,
        );
    }

    /// Ends the group (kept for criterion-API symmetry; prints nothing).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` output per iteration; only the
    /// routine is inside the timed section.
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_bytes(bytes_per_s: f64) -> String {
    const KIB: f64 = 1024.0;
    if bytes_per_s < KIB * KIB {
        format!("{:.1} KiB", bytes_per_s / KIB)
    } else if bytes_per_s < KIB * KIB * KIB {
        format!("{:.2} MiB", bytes_per_s / (KIB * KIB))
    } else {
        format!("{:.2} GiB", bytes_per_s / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut bench = Bench::new();
        let mut g = bench.group("selftest");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        g.throughput(Throughput::Bytes(8));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut bench = Bench { filter: Some("nomatch".into()), results: Vec::new() };
        let mut g = bench.group("selftest");
        let mut ran = false;
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered benchmark must not run");
        assert!(bench.median_of("selftest/skipped").is_none());
    }

    #[test]
    fn medians_are_recorded() {
        let mut bench = Bench::new();
        let mut g = bench.group("selftest");
        g.sample_size(3);
        g.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
        let median = bench.median_of("selftest/spin").expect("benchmark ran");
        assert!(median > 0.0);
        assert!(bench.median_of("selftest/other").is_none());
    }

    #[test]
    fn flat_json_round_trips() {
        let parsed = parse_flat_json("{\n  \"a/b\": 12.5,\n  \"c/d\": 3.0\n}\n");
        assert_eq!(parsed, vec![("a/b".to_string(), 12.5), ("c/d".to_string(), 3.0)]);
        assert!(parse_flat_json("not json at all").is_empty());
    }
}
