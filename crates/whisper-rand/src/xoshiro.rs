//! xoshiro256++: the workspace's standard generator.

use crate::splitmix::{mix64, GOLDEN};
use crate::{RngCore, SeedableRng, SplitMix64};

/// The workspace generator: **xoshiro256++ 1.0** (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush, and runs a few ns
/// per draw — more than enough quality for simulation workloads, and fast
/// enough for the simulator's hot path (every message delay and loss
/// decision draws from one of these).
///
/// Named `StdRng` so the ~80 call sites that were written against
/// `rand::rngs::StdRng` read unchanged. Unlike `rand`'s `StdRng` the
/// algorithm here is **part of the contract**: traces recorded with one
/// build must replay bit-identically on every future build, so the
/// generator can only be changed together with every golden trace in the
/// repo.
///
/// This is not a cryptographic generator. Key material drawn from it is
/// secure *within the simulation's threat model only* (the adversary
/// observes protocol traffic, not host memory); see
/// `DESIGN.md` § "Determinism & randomness".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Derives the generator for logical stream `stream` under experiment
    /// seed `seed`.
    ///
    /// Streams are how the workspace gives each node (or each independent
    /// purpose: key generation, churn schedule, latency draws…) its own
    /// generator while staying reproducible: stream `i` is a pure function
    /// of `(seed, i)`, so results are independent of the order — or
    /// thread — in which nodes are created. The stream id is avalanched
    /// through the SplitMix64 finalizer before being combined with the
    /// seed, so streams `0, 1, 2, …` land far apart in seed space.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        StdRng::seed_from_u64(mix64(seed ^ mix64(stream.wrapping_add(GOLDEN))))
    }

    /// Derives the generator for lane `lane` of logical stream `stream`
    /// under experiment seed `seed`.
    ///
    /// Lanes subdivide a stream into independent purposes: the simulator
    /// gives node *i* lane 0 for protocol randomness and lane 1 for link
    /// randomness (delay / loss draws), so a protocol drawing more or
    /// fewer random numbers can never perturb the network schedule. Like
    /// [`for_stream`](StdRng::for_stream), the result is a pure function
    /// of `(seed, stream, lane)` — independent of creation order and of
    /// which thread asks.
    ///
    /// Lane 0 is **not** the same generator as `for_stream(seed, stream)`:
    /// the lane constant is folded in unconditionally so the two families
    /// never collide.
    pub fn for_stream_lane(seed: u64, stream: u64, lane: u64) -> Self {
        // An arbitrary odd constant (from wyhash) keeps lane space far from
        // the plain stream space even at lane 0.
        let lane_seed = mix64(seed ^ mix64(lane ^ 0xA076_1D64_78BD_642F));
        StdRng::for_stream(lane_seed, stream)
    }

    /// Forks an independent child generator, advancing `self` by one draw.
    ///
    /// Useful when a component needs to hand sub-components their own
    /// generators without threading stream ids around. The child is seeded
    /// from a single draw of the parent, so `parent.split()` is itself
    /// deterministic.
    pub fn split(&mut self) -> Self {
        StdRng::seed_from_u64(self.next_u64())
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    /// Full 256-bit state, little-endian.
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the xoshiro
            // update; remap it to a valid (still deterministic) state.
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        // The xoshiro authors' recommended initialization: expand the seed
        // through SplitMix64. Consecutive u64 seeds yield unrelated states,
        // and the expansion can never produce all-zero state.
        let mut sm = SplitMix64::new(state);
        StdRng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ reference implementation
    /// with state [1, 2, 3, 4].
    #[test]
    fn reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = StdRng::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(0xDEAD);
        let mut b = StdRng::seed_from_u64(0xDEAD);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_seed_is_remapped() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0, "must not be stuck at the fixed point");
        assert_eq!(rng, {
            let mut r = StdRng::seed_from_u64(0);
            r.next_u64();
            r
        });
    }

    #[test]
    fn streams_are_distinct_and_stable() {
        let mut s0 = StdRng::for_stream(42, 0);
        let mut s1 = StdRng::for_stream(42, 1);
        let mut s0_again = StdRng::for_stream(42, 0);
        let a = s0.next_u64();
        assert_ne!(a, s1.next_u64());
        assert_eq!(a, s0_again.next_u64());
    }

    #[test]
    fn lanes_are_distinct_and_stable() {
        let a = StdRng::for_stream_lane(42, 3, 0).next_u64();
        let b = StdRng::for_stream_lane(42, 3, 1).next_u64();
        let plain = StdRng::for_stream(42, 3).next_u64();
        assert_ne!(a, b, "lanes of one stream are independent");
        assert_ne!(a, plain, "lane 0 is not the plain stream");
        assert_eq!(a, StdRng::for_stream_lane(42, 3, 0).next_u64());
    }

    #[test]
    fn split_is_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(a.split(), b.split());
        assert_eq!(a, b, "split advances the parent identically");
    }
}
