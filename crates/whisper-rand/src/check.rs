//! A seeded property-test helper: random case generation with
//! shrink-on-failure, replacing the workspace's former `proptest`
//! dependency.
//!
//! ## Model
//!
//! A property is a closure over a [`Gen`]; it draws whatever inputs it
//! needs and asserts with the ordinary `assert!` family. [`check`] runs it
//! `cases` times, each case on an independent, deterministic random stream.
//!
//! On failure the harness **shrinks**: every value a [`Gen`] hands out is
//! derived from an underlying sequence of `u64` draws (the *tape*), so the
//! harness re-runs the property on simpler tapes (values zeroed, halved,
//! decremented; tape truncated) and reports the simplest tape that still
//! fails. Because generators map smaller tape words to smaller values
//! (shorter vectors, smaller ints), simpler tapes mean simpler test
//! cases — the same idea as Hypothesis-style "internal" shrinking, with no
//! per-type shrinker code.
//!
//! ## Example
//!
//! ```
//! use whisper_rand::check::check;
//! use whisper_rand::Rng;
//!
//! check(64, "addition_commutes", |g| {
//!     let a: u32 = g.gen_range(0..1000);
//!     let b: u32 = g.gen_range(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Reproducing a failure: the report prints the base seed and case number;
//! set `WHISPER_CHECK_SEED` to the printed seed to pin the whole run.

use crate::{Rng, RngCore, StdRng};
use std::panic::{self, AssertUnwindSafe};

/// Default base seed ("WHSPR" in hex-speak); override with the
/// `WHISPER_CHECK_SEED` environment variable.
const DEFAULT_SEED: u64 = 0x0057_4853_5052;

/// Cap on property re-executions spent shrinking one failure.
const SHRINK_BUDGET: usize = 2_000;

/// The source of randomness handed to a property.
///
/// In normal runs it records every `u64` drawn from a [`StdRng`]; during
/// shrinking it replays a mutated tape instead (reading past the end of
/// the tape yields zeros, which generators map to minimal values). All
/// [`Rng`] methods are available on it, plus conveniences for the shapes
/// the test suites use most.
pub struct Gen {
    tape: Vec<u64>,
    pos: usize,
    live: Option<StdRng>,
}

impl RngCore for Gen {
    fn next_u64(&mut self) -> u64 {
        let v = match &mut self.live {
            Some(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                v
            }
            None => self.tape.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        v
    }
}

impl Gen {
    fn recording(rng: StdRng) -> Gen {
        Gen { tape: Vec::new(), pos: 0, live: Some(rng) }
    }

    fn replaying(tape: Vec<u64>) -> Gen {
        Gen { tape, pos: 0, live: None }
    }

    /// A vector with length drawn from `0..=max_len` and elements drawn by
    /// `f`.
    pub fn vec<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.gen_range(0..=max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// A byte vector with length drawn from `0..=max_len`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        self.vec(max_len, |g| g.gen())
    }
}

/// Runs `property` against `cases` independently-seeded random cases,
/// shrinking and reporting the simplest failure found.
///
/// `name` labels the failure report (conventionally the test function's
/// name). Panics — i.e. fails the enclosing `#[test]` — iff the property
/// panics for some case, after shrinking.
pub fn check(cases: u32, name: &str, property: impl Fn(&mut Gen)) {
    let seed = std::env::var("WHISPER_CHECK_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .unwrap_or(DEFAULT_SEED);

    for case in 0..cases {
        let mut g = Gen::recording(StdRng::for_stream(seed, case as u64));
        if run_quietly(&property, &mut g).is_ok() {
            continue;
        }

        // Failure: shrink the recorded tape, then re-run the simplest
        // failing tape *outside* catch_unwind so the original assertion
        // message and backtrace surface through the test harness.
        let tape = shrink(std::mem::take(&mut g.tape), &property);
        eprintln!(
            "whisper-rand check '{name}': falsified (seed={seed:#x}, case={case}/{cases}); \
             shrunk to {} draws: {:?}\n\
             (re-run with WHISPER_CHECK_SEED={seed:#x} to reproduce)",
            tape.len(),
            tape
        );
        property(&mut Gen::replaying(tape));
        unreachable!("shrunk tape no longer fails; original case {case} did");
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Runs the property with the default panic hook suppressed, so shrink
/// candidates don't spam stderr with expected panics.
fn run_quietly(
    property: &impl Fn(&mut Gen),
    g: &mut Gen,
) -> Result<(), Box<dyn std::any::Any + Send>> {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| property(g)));
    panic::set_hook(prev);
    result.map(|_| ())
}

/// Greedily simplifies a failing tape: truncation first (shorter inputs),
/// then per-word zero / halve / decrement passes, repeated to fixpoint or
/// budget exhaustion. Returns a tape that still fails the property.
fn shrink(mut tape: Vec<u64>, property: &impl Fn(&mut Gen)) -> Vec<u64> {
    let fails = |candidate: &[u64]| -> bool {
        run_quietly(property, &mut Gen::replaying(candidate.to_vec())).is_err()
    };

    let mut budget = SHRINK_BUDGET;
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;

        // Pass 1: drop the tail (replay pads with zeros).
        while !tape.is_empty() && budget > 0 {
            let shorter = &tape[..tape.len() / 2];
            budget -= 1;
            if fails(shorter) {
                tape.truncate(tape.len() / 2);
                progress = true;
            } else {
                break;
            }
        }

        // Pass 2: simplify individual words.
        for i in 0..tape.len() {
            if budget == 0 {
                break;
            }
            let original = tape[i];
            for candidate in [0, original >> 1, original.saturating_sub(1)] {
                if candidate == original || budget == 0 {
                    continue;
                }
                tape[i] = candidate;
                budget -= 1;
                if fails(&tape) {
                    progress = true;
                    break; // keep the simplest working candidate
                }
                tape[i] = original;
            }
        }
    }

    // Trim trailing zeros: replay treats them identically to absence.
    while tape.last() == Some(&0) {
        tape.pop();
    }
    tape
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check(32, "tautology", |g| {
            let v = g.bytes(16);
            assert!(v.len() <= 16);
        });
    }

    #[test]
    fn failing_property_fails_and_shrinks() {
        let result = panic::catch_unwind(|| {
            check(64, "find_big", |g| {
                let n: u64 = g.gen_range(0..1000);
                assert!(n < 500, "found {n}");
            })
        });
        assert!(result.is_err(), "property with counterexamples must fail");
    }

    #[test]
    fn replay_of_empty_tape_yields_minimal_values() {
        let mut g = Gen::replaying(vec![]);
        assert_eq!(g.gen::<u64>(), 0);
        assert_eq!(g.gen_range(5..10u32), 5);
        assert!(g.bytes(8).is_empty());
    }

    #[test]
    fn gen_is_deterministic_per_case() {
        let mut a = Gen::recording(StdRng::for_stream(1, 0));
        let mut b = Gen::recording(StdRng::for_stream(1, 0));
        assert_eq!(a.bytes(32), b.bytes(32));
    }
}
