//! NAT device emulation.
//!
//! Reproduces the SPLAY NAT-emulation feature described in paper §V-A: the
//! four major device types (`full_cone`, `restricted_cone`,
//! `port_restricted_cone`, `sym`), per-connection filtering rules
//! following RFC 5382/4787 semantics, and association-rule lease times.
//!
//! Ports are allocated honestly — cone devices reuse one external port for
//! every destination while symmetric devices allocate a fresh port per
//! remote endpoint — so hole-punching outcomes *emerge* from the filter
//! rules rather than being table-driven. [`can_hole_punch`] states the
//! expected theoretical outcome and the test suite checks that emulation
//! and theory agree.

use crate::id::{Endpoint, NodeId};
use crate::time::{SimDuration, SimTime};
use whisper_rand::Rng;

/// The NAT behaviour of a simulated host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NatType {
    /// Directly reachable host (a "P-node" in the paper).
    Public,
    /// Full-cone NAT: once a mapping exists, any remote endpoint may send
    /// to it.
    FullCone,
    /// Restricted-cone NAT: inbound allowed only from hosts the internal
    /// node has contacted.
    RestrictedCone,
    /// Port-restricted-cone NAT: inbound allowed only from exact
    /// host:port endpoints the internal node has contacted.
    PortRestrictedCone,
    /// Symmetric NAT: a distinct external port per remote endpoint;
    /// inbound allowed only from that exact endpoint.
    Symmetric,
}

impl NatType {
    /// The four NATted types, in the paper's order.
    pub const NATTED: [NatType; 4] = [
        NatType::FullCone,
        NatType::RestrictedCone,
        NatType::PortRestrictedCone,
        NatType::Symmetric,
    ];

    /// Whether this host is directly reachable (a P-node).
    pub fn is_public(self) -> bool {
        matches!(self, NatType::Public)
    }
}

/// Whether RV-coordinated hole punching can establish a direct
/// bidirectional session between hosts behind NATs of types `a` and `b`.
///
/// Sessions involving a symmetric NAT fail against port-sensitive filters
/// (the other side cannot predict the fresh per-destination port); all
/// other combinations succeed. This mirrors the observation the paper
/// cites from NATCracker \[20\] and is verified against the packet-level
/// emulation by this crate's tests.
pub fn can_hole_punch(a: NatType, b: NatType) -> bool {
    use NatType::*;
    match (a, b) {
        (Public, _) | (_, Public) => true,
        (Symmetric, Symmetric) => false,
        (Symmetric, PortRestrictedCone) | (PortRestrictedCone, Symmetric) => false,
        _ => true,
    }
}

/// Distribution of NAT types over a node population.
#[derive(Clone, Copy, Debug)]
pub struct NatDistribution {
    /// Fraction of public nodes in `[0, 1]`.
    pub public_ratio: f64,
}

impl NatDistribution {
    /// The paper's default: 70% of nodes behind NAT devices, evenly split
    /// between the four types (§V-A, following Casado & Freedman \[4\]).
    pub fn paper_default() -> Self {
        NatDistribution { public_ratio: 0.30 }
    }

    /// A distribution with the given fraction of public nodes; NATted
    /// nodes are split evenly between the four device types.
    pub fn with_public_ratio(public_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&public_ratio));
        NatDistribution { public_ratio }
    }

    /// Samples a NAT type.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> NatType {
        if rng.gen_bool(self.public_ratio) {
            NatType::Public
        } else {
            NatType::NATTED[rng.gen_range(0..4)]
        }
    }
}

/// State of one emulated NAT device (one per simulated host).
#[derive(Debug, Clone)]
pub struct NatDevice {
    nat_type: NatType,
    mappings: Vec<Mapping>,
    next_port: u16,
}

#[derive(Debug, Clone)]
struct Mapping {
    external_port: u16,
    /// For symmetric devices, the single remote endpoint this mapping was
    /// created towards; `None` for cone devices (one mapping per host).
    symmetric_remote: Option<Endpoint>,
    /// Remote endpoints the internal host has sent to through this
    /// mapping, with association-rule expiry times.
    contacts: Vec<(Endpoint, SimTime)>,
}

impl Mapping {
    fn prune(&mut self, now: SimTime) {
        self.contacts.retain(|&(_, exp)| exp > now);
    }

    fn alive(&self, now: SimTime) -> bool {
        self.contacts.iter().any(|&(_, exp)| exp > now)
    }
}

impl NatDevice {
    /// Creates a device of the given type.
    pub fn new(nat_type: NatType) -> Self {
        NatDevice { nat_type, mappings: Vec::new(), next_port: 1 }
    }

    /// The device type.
    pub fn nat_type(&self) -> NatType {
        self.nat_type
    }

    /// Registers an outbound packet towards `dst` and returns the external
    /// source port the packet leaves with (0 for public hosts).
    ///
    /// Creates or refreshes the association rule, whose lease expires at
    /// `now + lease`.
    pub fn outbound(&mut self, dst: Endpoint, now: SimTime, lease: SimDuration) -> u16 {
        if self.nat_type.is_public() {
            return 0;
        }
        let expires = now + lease;
        let idx = match self.nat_type {
            NatType::Symmetric => self
                .mappings
                .iter()
                .position(|m| m.symmetric_remote == Some(dst) && m.alive(now)),
            _ => self.mappings.iter().position(|m| m.alive(now)),
        };
        let idx = match idx {
            Some(i) => i,
            None => {
                let port = self.alloc_port(now);
                self.mappings.push(Mapping {
                    external_port: port,
                    symmetric_remote: (self.nat_type == NatType::Symmetric).then_some(dst),
                    contacts: Vec::new(),
                });
                self.mappings.len() - 1
            }
        };
        let mapping = &mut self.mappings[idx];
        mapping.prune(now);
        match mapping.contacts.iter_mut().find(|(ep, _)| *ep == dst) {
            Some(entry) => entry.1 = expires,
            None => mapping.contacts.push((dst, expires)),
        }
        mapping.external_port
    }

    /// Filters an inbound packet addressed to external port `dst_port`
    /// arriving from `src`. Returns `true` if the device delivers it to
    /// the internal host.
    pub fn inbound(&mut self, dst_port: u16, src: Endpoint, now: SimTime) -> bool {
        if self.nat_type.is_public() {
            return true;
        }
        let Some(mapping) = self
            .mappings
            .iter_mut()
            .find(|m| m.external_port == dst_port)
        else {
            return false;
        };
        mapping.prune(now);
        if mapping.contacts.is_empty() {
            return false; // all association rules expired
        }
        match self.nat_type {
            NatType::Public => true,
            NatType::FullCone => true,
            NatType::RestrictedCone => {
                mapping.contacts.iter().any(|(ep, _)| ep.node == src.node)
            }
            NatType::PortRestrictedCone => mapping.contacts.iter().any(|(ep, _)| *ep == src),
            NatType::Symmetric => mapping.symmetric_remote == Some(src),
        }
    }

    /// The current external port the host would use towards `dst`, if an
    /// unexpired mapping exists.
    pub fn external_port_towards(&self, dst: Endpoint, now: SimTime) -> Option<u16> {
        match self.nat_type {
            NatType::Public => Some(0),
            NatType::Symmetric => self
                .mappings
                .iter()
                .find(|m| m.symmetric_remote == Some(dst) && m.alive(now))
                .map(|m| m.external_port),
            _ => self
                .mappings
                .iter()
                .find(|m| m.alive(now))
                .map(|m| m.external_port),
        }
    }

    /// Number of live mappings (diagnostics).
    pub fn live_mappings(&self, now: SimTime) -> usize {
        self.mappings.iter().filter(|m| m.alive(now)).count()
    }

    fn alloc_port(&mut self, now: SimTime) -> u16 {
        // Garbage-collect dead mappings occasionally so long simulations
        // with symmetric devices do not grow without bound.
        if self.mappings.len() > 512 {
            self.mappings.retain(|m| m.alive(now));
        }
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(1);
        port
    }
}

/// Convenience wrapper: the NAT state of every host in a simulation.
#[derive(Debug, Default)]
pub struct NatTable {
    devices: std::collections::HashMap<NodeId, NatDevice>,
}

impl NatTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NatTable::default()
    }

    /// Registers a host.
    pub fn insert(&mut self, node: NodeId, nat_type: NatType) {
        self.devices.insert(node, NatDevice::new(nat_type));
    }

    /// Removes a host (e.g. on churn departure), dropping all its
    /// association state.
    pub fn remove(&mut self, node: NodeId) {
        self.devices.remove(&node);
    }

    /// Replaces `node`'s device with a fresh one of the same type: every
    /// mapping and association rule vanishes, like a consumer NAT
    /// rebooting. Returns `false` if the node is unknown.
    pub fn rebind(&mut self, node: NodeId) -> bool {
        match self.devices.get_mut(&node) {
            Some(dev) => {
                *dev = NatDevice::new(dev.nat_type());
                true
            }
            None => false,
        }
    }

    /// The NAT type of `node`, if registered.
    pub fn nat_type(&self, node: NodeId) -> Option<NatType> {
        self.devices.get(&node).map(|d| d.nat_type())
    }

    /// Mutable access to a host's device.
    pub fn device_mut(&mut self, node: NodeId) -> Option<&mut NatDevice> {
        self.devices.get_mut(&node)
    }

    /// Shared access to a host's device.
    pub fn device(&self, node: NodeId) -> Option<&NatDevice> {
        self.devices.get(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(node: u64, port: u16) -> Endpoint {
        Endpoint { node: NodeId(node), port }
    }

    const LEASE: SimDuration = SimDuration::from_micros(300_000_000); // 300 s
    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn public_passes_everything() {
        let mut d = NatDevice::new(NatType::Public);
        assert_eq!(d.outbound(ep(2, 0), T0, LEASE), 0);
        assert!(d.inbound(0, ep(99, 7), T0));
    }

    #[test]
    fn cone_reuses_one_port() {
        for t in [NatType::FullCone, NatType::RestrictedCone, NatType::PortRestrictedCone] {
            let mut d = NatDevice::new(t);
            let p1 = d.outbound(ep(2, 0), T0, LEASE);
            let p2 = d.outbound(ep(3, 0), T0, LEASE);
            assert_eq!(p1, p2, "{t:?} must reuse its port");
        }
    }

    #[test]
    fn symmetric_allocates_per_destination() {
        let mut d = NatDevice::new(NatType::Symmetric);
        let p1 = d.outbound(ep(2, 0), T0, LEASE);
        let p2 = d.outbound(ep(3, 0), T0, LEASE);
        let p1_again = d.outbound(ep(2, 0), T0, LEASE);
        assert_ne!(p1, p2);
        assert_eq!(p1, p1_again);
    }

    #[test]
    fn full_cone_accepts_any_source_once_open() {
        let mut d = NatDevice::new(NatType::FullCone);
        let port = d.outbound(ep(2, 0), T0, LEASE);
        assert!(d.inbound(port, ep(99, 5), T0));
    }

    #[test]
    fn restricted_cone_filters_by_host() {
        let mut d = NatDevice::new(NatType::RestrictedCone);
        let port = d.outbound(ep(2, 9), T0, LEASE);
        assert!(d.inbound(port, ep(2, 1234), T0), "same host, other port: pass");
        assert!(!d.inbound(port, ep(3, 9), T0), "other host: blocked");
    }

    #[test]
    fn port_restricted_cone_filters_by_endpoint() {
        let mut d = NatDevice::new(NatType::PortRestrictedCone);
        let port = d.outbound(ep(2, 9), T0, LEASE);
        assert!(d.inbound(port, ep(2, 9), T0));
        assert!(!d.inbound(port, ep(2, 10), T0), "same host, wrong port: blocked");
        assert!(!d.inbound(port, ep(3, 9), T0));
    }

    #[test]
    fn symmetric_filters_by_exact_mapping() {
        let mut d = NatDevice::new(NatType::Symmetric);
        let p_to_2 = d.outbound(ep(2, 9), T0, LEASE);
        let p_to_3 = d.outbound(ep(3, 4), T0, LEASE);
        assert!(d.inbound(p_to_2, ep(2, 9), T0));
        assert!(!d.inbound(p_to_2, ep(3, 4), T0), "wrong mapping");
        assert!(d.inbound(p_to_3, ep(3, 4), T0));
        assert!(!d.inbound(p_to_2, ep(2, 10), T0), "same host, wrong source port");
    }

    #[test]
    fn unknown_port_blocked() {
        let mut d = NatDevice::new(NatType::FullCone);
        assert!(!d.inbound(42, ep(2, 0), T0));
    }

    #[test]
    fn lease_expiry_closes_the_hole() {
        let mut d = NatDevice::new(NatType::RestrictedCone);
        let port = d.outbound(ep(2, 0), T0, LEASE);
        let just_before = T0 + LEASE - SimDuration::from_micros(1);
        assert!(d.inbound(port, ep(2, 0), just_before));
        let after = T0 + LEASE + SimDuration::from_micros(1);
        assert!(!d.inbound(port, ep(2, 0), after), "association expired");
    }

    #[test]
    fn refreshing_extends_the_lease() {
        let mut d = NatDevice::new(NatType::RestrictedCone);
        let port = d.outbound(ep(2, 0), T0, LEASE);
        let mid = T0 + SimDuration::from_secs(200);
        assert_eq!(d.outbound(ep(2, 0), mid, LEASE), port);
        let late = T0 + SimDuration::from_secs(400); // past original lease
        assert!(d.inbound(port, ep(2, 0), late));
    }

    #[test]
    fn expired_symmetric_mapping_gets_fresh_port() {
        let mut d = NatDevice::new(NatType::Symmetric);
        let p1 = d.outbound(ep(2, 0), T0, LEASE);
        let later = T0 + LEASE + SimDuration::from_secs(1);
        let p2 = d.outbound(ep(2, 0), later, LEASE);
        assert_ne!(p1, p2, "new session, new port");
    }

    #[test]
    fn hole_punch_matrix() {
        use NatType::*;
        // Symmetric pairs with port-sensitive filters fail, all else works.
        assert!(!can_hole_punch(Symmetric, Symmetric));
        assert!(!can_hole_punch(Symmetric, PortRestrictedCone));
        assert!(!can_hole_punch(PortRestrictedCone, Symmetric));
        assert!(can_hole_punch(Symmetric, FullCone));
        assert!(can_hole_punch(Symmetric, RestrictedCone));
        assert!(can_hole_punch(FullCone, FullCone));
        assert!(can_hole_punch(RestrictedCone, PortRestrictedCone));
        for t in [FullCone, RestrictedCone, PortRestrictedCone, Symmetric] {
            assert!(can_hole_punch(Public, t));
            assert!(can_hole_punch(t, Public));
        }
    }

    #[test]
    fn distribution_respects_public_ratio() {
        use whisper_rand::SeedableRng;
        let mut rng = whisper_rand::rngs::StdRng::seed_from_u64(1);
        let dist = NatDistribution::paper_default();
        let n = 10_000;
        let mut public = 0;
        let mut by_type = std::collections::HashMap::new();
        for _ in 0..n {
            let t = dist.sample(&mut rng);
            if t.is_public() {
                public += 1;
            } else {
                *by_type.entry(t).or_insert(0usize) += 1;
            }
        }
        let ratio = public as f64 / n as f64;
        assert!((ratio - 0.30).abs() < 0.02, "got {ratio}");
        // NATted types evenly split.
        for (_, count) in by_type {
            let frac = count as f64 / n as f64;
            assert!((frac - 0.175).abs() < 0.02, "got {frac}");
        }
    }

    #[test]
    fn table_insert_remove() {
        let mut t = NatTable::new();
        t.insert(NodeId(1), NatType::Symmetric);
        assert_eq!(t.nat_type(NodeId(1)), Some(NatType::Symmetric));
        t.remove(NodeId(1));
        assert_eq!(t.nat_type(NodeId(1)), None);
    }
}
