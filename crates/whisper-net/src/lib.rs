#![deny(missing_docs)]
//! Deterministic discrete-event network simulator for the WHISPER
//! reproduction.
//!
//! This crate stands in for the paper's testbeds (a 22-machine cluster
//! running 1,000 nodes and a 400-node PlanetLab slice, both driven by the
//! SPLAY framework). It provides:
//!
//! * [`sim`] — a seeded, sharded, discrete-event engine. Protocols
//!   implement [`sim::Protocol`] and interact with the world through
//!   [`sim::Ctx`] (send packets, arm timers, record metrics). Nodes are
//!   partitioned across shards that may run on worker threads; the shard
//!   count and thread policy are pure performance knobs — the trace is
//!   byte-identical for any setting (the determinism contract,
//!   DESIGN.md §12).
//! * [`nat`] — per-node NAT device emulation with the four device types of
//!   paper §V-A (`full_cone`, `restricted_cone`, `port_restricted_cone`,
//!   `sym`), per-connection filtering rules and association-rule lease
//!   times. Hole-punching success and failure *emerge* from honest port
//!   allocation and filtering, they are not table-driven.
//! * [`latency`] — link latency/loss models calibrated to the paper's two
//!   environments (switched-cluster and PlanetLab profiles).
//! * [`churn`] — the SPLAY-style churn script interpreter used by Table I.
//! * [`wire`] — a small binary codec; every simulated message is really
//!   encoded, so byte counts (and therefore bandwidth results) come from
//!   actual serialized sizes.
//! * [`payload`] — reference-counted message buffers ([`Payload`]) and
//!   the per-shard recycling pools that make the event hot path
//!   allocation-lean (fan-out clones instead of copies, buffers reused
//!   across events).
//! * [`sched`] — the per-shard event schedulers: a reference binary
//!   heap and a hierarchical calendar queue (timing-wheel buckets over
//!   the sim clock plus an overflow tier), both popping in canonical
//!   `(at, src, seq)` order so the choice is invisible to traces
//!   (DESIGN.md §14).
//! * [`metrics`] — per-node bandwidth accounting and generic
//!   counters/samples shared by the experiment harness.
//! * [`stats`] — CDF / percentile helpers used to print the paper's plots.
//!
//! Two runs with the same seed and the same driver program produce
//! identical results — on one shard or eight, sequential or threaded.
//!
//! ```
//! use whisper_net::sim::{Sim, SimConfig};
//! use whisper_net::nat::NatType;
//!
//! let mut sim = Sim::new(SimConfig::cluster(42));
//! // ... add nodes, then run:
//! sim.run_for_secs(10);
//! assert_eq!(sim.now().as_secs(), 10);
//! ```

pub mod churn;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod nat;
pub mod payload;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod wire;

mod id;
mod time;

pub use id::{Endpoint, NodeId};
pub use payload::Payload;
pub use time::{SimDuration, SimTime};
